"""The serving layer's plan cache.

``Session.execute`` re-parses SQL and re-extracts fusion-operator
pipelines on every call.  For a serving workload — the same dashboard
or report queries arriving over and over — that front-end work is pure
overhead: the paper's whole argument is that compilation effort must be
amortized for the coprocessor to run at hardware speed (Sections 5-7).

The cache maps ``(normalized SQL, database fingerprint, strategy)`` to
the extracted :class:`~repro.plan.physical.PhysicalQuery`:

* **Normalized SQL** — whitespace collapsed and keywords lowercased
  *outside* string literals, so ``SELECT  x`` and ``select x`` share an
  entry while ``'ASIA'`` never collides with ``'asia'``.
* **Database fingerprint** — the catalog's serial number plus its
  mutation version (:meth:`repro.storage.database.Database.fingerprint`).
  Appending rows (``replace``), adding, or dropping a table bumps the
  version, so a mutated catalog can never be served a stale plan; two
  catalogs never share a serial, so identical SQL against different
  databases never collides.
* **Strategy** — a hashable token naming the caller's resolved
  execution strategy (engine/devices/partitioning/placement, or the
  adaptive optimizer's pinned dimensions).  An ``engine="auto"``
  session therefore never collides with an explicitly pinned
  configuration for the same SQL, and the optimizer's chosen
  :class:`~repro.optimizer.StrategyChoice` is recorded on the entry
  (:meth:`PlanCache.record_strategy`) so EXPLAIN and repeat executions
  can see what ran last time.

Cached plans are structurally immutable during execution (engines keep
all per-query state on the :class:`~repro.engines.runtime.QueryRuntime`),
so one cached :class:`PhysicalQuery` may be executed by many workers
concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..plan.logical import LogicalPlan
from ..plan.physical import PhysicalQuery
from ..plan.pipelines import extract_pipelines
from ..sql.translate import plan_sql
from ..storage.database import Database


def normalize_sql(text: str) -> str:
    """Canonicalize SQL text for cache keying.

    Outside single-quoted string literals, whitespace runs collapse to
    one space and characters are lowercased; literals are preserved
    byte-for-byte (including doubled-quote escapes).  A trailing
    semicolon is dropped.
    """
    out: list[str] = []
    in_string = False
    pending_space = False
    for ch in text.strip():
        if in_string:
            out.append(ch)
            if ch == "'":
                in_string = False
            continue
        if ch == "'":
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(ch)
            in_string = True
            continue
        if ch.isspace():
            pending_space = True
            continue
        if pending_space and out:
            out.append(" ")
        pending_space = False
        out.append(ch.lower())
    normalized = "".join(out)
    return normalized[:-1].rstrip() if normalized.endswith(";") else normalized


@dataclass
class PlanCacheStats:
    """A snapshot of one plan cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class CachedPlan:
    """One cache entry: the physical plan plus the execution strategy
    recorded for it (``None`` until the owner records one)."""

    physical: PhysicalQuery
    strategy: object | None = None


class PlanCache:
    """A bounded, thread-safe LRU of extracted physical query plans."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, CachedPlan] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _key(query: str, database: Database, strategy) -> tuple:
        return (normalize_sql(query), database.fingerprint(), strategy)

    def lookup(
        self,
        query: str | LogicalPlan,
        database: Database,
        strategy: object = None,
    ) -> tuple[PhysicalQuery, bool]:
        """Resolve ``query`` to a physical plan; returns ``(plan, hit)``.

        SQL strings are keyed by normalized text + database fingerprint
        + the caller's ``strategy`` token (any hashable naming the
        resolved execution configuration; sessions with different
        pinned strategies — or auto vs. pinned — never share entries).
        :class:`LogicalPlan` objects bypass the cache (they are already
        past the expensive front end) and count as misses.
        """
        if isinstance(query, LogicalPlan):
            with self._lock:
                self._misses += 1
            return extract_pipelines(query, database), False
        key = self._key(query, database, strategy)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return cached.physical, True
            self._misses += 1
        physical = extract_pipelines(plan_sql(query, database), database)
        with self._lock:
            self._entries[key] = CachedPlan(physical)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
        return physical, False

    # ------------------------------------------------------------------
    def record_strategy(
        self,
        query: str,
        database: Database,
        strategy: object,
        chosen: object,
    ) -> None:
        """Attach the optimizer's resolved choice to a cached entry
        (no-op if the entry was evicted meanwhile)."""
        key = self._key(query, database, strategy)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry.strategy = chosen

    def recorded_strategy(
        self, query: str, database: Database, strategy: object = None
    ) -> object | None:
        """The strategy recorded for a cached entry, else ``None``."""
        key = self._key(query, database, strategy)
        with self._lock:
            entry = self._entries.get(key)
            return entry.strategy if entry is not None else None

    # ------------------------------------------------------------------
    def stats(self) -> PlanCacheStats:
        with self._lock:
            return PlanCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
