"""Serving metrics: per-query and per-server counters."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..placement.stats import PlacementStats
from ..telemetry.metrics import HistogramSnapshot
from .plan_cache import PlanCacheStats


@dataclass
class ServingStats:
    """Per-query serving metrics, attached as ``ExecutionResult.serving``.

    ``plan_ms`` is the front-end cost actually paid (≈0 on a plan-cache
    hit); ``execute_ms`` is the wall-clock of the engine run;
    ``queue_wait_ms`` is the time spent in the admission queue (0 for
    direct :class:`~repro.api.Session` executions).

    **Containment:** ``compile_ms ⊂ execute_ms``.  Kernel compilation
    happens *inside* the engine run, so ``execute_ms`` already includes
    it; ``compile_ms`` is broken out only so cache warmup is visible.
    :attr:`total_ms` therefore sums queue wait + plan + execute and
    deliberately leaves ``compile_ms`` out — adding it would double
    count.  For the full phase-by-phase story use
    ``ExecutionResult.timeline()`` (the ordered span list) instead of
    re-deriving phase timings from these scalars.
    """

    #: True when the physical plan came from the plan cache.
    plan_cache_hit: bool
    #: Compiled-kernel cache hits/misses during this query's execution.
    compile_hits: int
    compile_misses: int
    #: Wall-clock milliseconds spent waiting in the admission queue.
    queue_wait_ms: float
    #: Wall-clock milliseconds of SQL parsing + pipeline extraction.
    plan_ms: float
    #: Wall-clock milliseconds spent compiling generated kernels (0 when
    #: every kernel came from the cache).
    compile_ms: float
    #: Wall-clock milliseconds of engine execution (incl. codegen).
    execute_ms: float
    #: Index of the worker that executed the query (-1 for sessions).
    worker: int = -1
    #: Base-column loads served from device-resident buffers (0 when
    #: residency management is off).
    placement_hits: int = 0
    placement_misses: int = 0
    #: PCIe bytes the placement hits avoided.
    placement_hit_bytes: int = 0
    #: True when the query ran on the out-of-core streaming path.
    out_of_core: bool = False

    @property
    def host_overhead_ms(self) -> float:
        """The serving overhead the caches amortize: plan + compile."""
        return self.plan_ms + self.compile_ms

    @property
    def total_ms(self) -> float:
        """Queue wait + planning + execution (host wall clock)."""
        return self.queue_wait_ms + self.plan_ms + self.execute_ms


@dataclass
class ServerStats:
    """A consistent snapshot of a :class:`~repro.serving.Server`."""

    workers: int
    queue_capacity: int
    queue_depth: int
    #: Queries accepted into the admission queue.
    submitted: int
    #: Queries whose futures resolved successfully.
    completed: int
    #: Queries whose futures resolved with an exception.
    failed: int
    #: Queries cancelled before a worker picked them up.
    cancelled: int
    #: Per-query plan-cache outcomes, as counted by this server.
    plan_hits: int
    plan_misses: int
    #: Compiled-kernel cache outcomes summed over this server's queries.
    compile_hits: int
    compile_misses: int
    #: Aggregate queue wait across completed + failed queries.
    queue_wait_ms_total: float
    #: Aggregate engine execution wall clock.
    execute_ms_total: float
    #: Completed-query counts per worker index.
    per_worker: list[int] = field(default_factory=list)
    #: Snapshot of the shared plan cache (may include other servers'
    #: traffic when the cache is shared).
    plan_cache: PlanCacheStats | None = None
    #: Aggregate residency counters over the per-worker buffer pools
    #: (``None`` when the server runs with ``residency=False``).
    placement: PlacementStats | None = None
    #: End-to-end latency distribution (queue wait + plan + execute)
    #: over *completed* queries, as a frozen histogram snapshot.
    latency: HistogramSnapshot | None = None
    #: Admission-queue wait distribution over completed queries.
    queue_wait: HistogramSnapshot | None = None

    @property
    def finished(self) -> int:
        return self.completed + self.failed

    @property
    def avg_queue_wait_ms(self) -> float:
        return self.queue_wait_ms_total / self.finished if self.finished else 0.0

    @property
    def plan_hit_rate(self) -> float:
        probes = self.plan_hits + self.plan_misses
        return self.plan_hits / probes if probes else 0.0

    def summary(self) -> str:
        text = (
            f"workers {self.workers}  submitted {self.submitted}  "
            f"completed {self.completed}  failed {self.failed}  "
            f"cancelled {self.cancelled}  "
            f"queue depth {self.queue_depth}/{self.queue_capacity}  "
            f"plan cache {self.plan_hits}/{self.plan_hits + self.plan_misses} hits  "
            f"kernel cache {self.compile_hits}/{self.compile_hits + self.compile_misses} hits  "
            f"avg queue wait {self.avg_queue_wait_ms:.3f} ms"
        )
        if self.latency is not None and self.latency.count:
            text += (
                f"\nlatency ms: p50 {self.latency.p50:.3f}  "
                f"p95 {self.latency.p95:.3f}  p99 {self.latency.p99:.3f}  "
                f"(bucket upper bounds over {self.latency.count} completed)"
            )
        if self.placement is not None:
            text += f"\nplacement: {self.placement.summary()}"
        return text
