"""A concurrent query server over the HorseQC engines.

The :class:`Server` is the serving runtime the ROADMAP's north star
asks for: it owns one shared (read-mostly) :class:`Database`, a pool of
worker threads each bound to its **own** :class:`VirtualCoprocessor`
(device profiler state is per-query, so in-flight queries must not
share a device), a shared :class:`PlanCache`, and a **bounded
admission queue** that applies back-pressure when the pool is saturated.

Request path::

    submit(sql) ──> admission queue ──> worker
                                          ├─ plan cache (hit: skip SQL
                                          │  parse + pipeline extraction)
                                          ├─ engine.execute (compound-
                                          │  kernel codegen hits the
                                          │  process-wide kernel cache)
                                          └─ future.set_result(result)

Every result carries a :class:`~repro.serving.stats.ServingStats` in
``result.serving``; :meth:`Server.stats` returns the aggregate
:class:`~repro.serving.stats.ServerStats` snapshot.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from concurrent.futures import Future

import contextlib

from ..engines import make_engine
from ..engines.base import Engine, ExecutionResult
from ..errors import AdmissionError, ServingError
from ..hardware.device import VirtualCoprocessor
from ..hardware.interconnect import PCIE3, Interconnect
from ..hardware.profiles import GTX970, DeviceProfile, get_profile
from ..kernels.codegen import (
    begin_thread_compile_stats,
    kernel_cache_stats,
    thread_compile_stats,
)
from ..placement import BufferPool, PlacementStats, execute_with_placement
from ..plan.logical import LogicalPlan
from ..storage.database import Database
from ..telemetry.events import (
    installed_log,
    new_query_id,
    query_scope,
    record_event,
)
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.trace import Tracer, tracing_enabled
from .plan_cache import PlanCache
from .stats import ServerStats, ServingStats

_SHUTDOWN = object()
#: Per-query ``engine="auto"`` marker (distinct from "server default").
_AUTO = object()


@dataclass
class _Request:
    query: object  # str | LogicalPlan
    engine: Engine | None
    seed: int
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)


class Server:
    """Thread-pool serving runtime with plan and kernel caching.

    Parameters
    ----------
    database:
        The shared catalog.  It may be mutated between queries through
        ``add``/``replace``/``drop``; the plan cache keys on the
        catalog fingerprint, so mutations invalidate cached plans
        automatically.
    device:
        Profile (or profile name) each worker instantiates privately.
    engine:
        Default engine alias or instance.  Instances are shared across
        workers — engines are re-entrant (all per-query state lives on
        the :class:`~repro.engines.runtime.QueryRuntime`).
        ``engine="auto"`` (and/or ``devices="auto"``) gives every
        worker an adaptive :class:`~repro.optimizer.AutoExecutor`
        sharing one statistics catalog and calibrator: each query runs
        on the cost-based optimizer's cheapest feasible strategy, the
        plan cache keys auto entries separately from pinned ones, and
        ``metrics_text`` grows the ``repro_optimizer_*`` family.
        Individual queries can still pin (``submit(..., engine=...)``)
        or opt in (``engine="auto"``) per request.
    workers:
        Worker-thread count; each worker owns one virtual device.
    queue_size:
        Admission-queue bound.  ``submit`` blocks (or raises
        :class:`~repro.errors.AdmissionError`, with ``block=False`` or
        on timeout) once this many queries are waiting.
    plan_cache:
        Share a cache between servers by passing one in; by default the
        server creates a private cache of ``plan_cache_capacity``.
    residency:
        Default ``True``: each worker's device gets a
        :class:`~repro.placement.BufferPool`, so repeated queries reuse
        device-resident base columns (no repeat PCIe charge) and
        oversized working sets fall back to the streaming out-of-core
        executor instead of failing.  ``False`` restores the stateless
        reset-per-query behaviour.
    devices:
        ``devices=N`` (N > 1) gives each worker a private scale-out
        fleet of N simulated devices (:mod:`repro.scaleout`): queries
        partition the fact table under ``partitioning`` and merge
        partials scatter-gather style; results carry
        ``result.scaleout``.  With residency on, the fleets' per-device
        pools replace the per-worker pools in :meth:`stats`.
    fault_plan / retry_policy:
        Per-worker fault policy: every worker's fleet arms the same
        deterministic :class:`~repro.faults.FaultPlan` (accepted as a
        plan object, dict, or JSON path) and shares the
        :class:`~repro.faults.RetryPolicy`.  Arming a plan creates the
        scale-out executors even at ``devices=1``;
        :meth:`metrics_text` then exposes the per-worker
        ``repro_faults_*`` counters and the
        ``repro_faults_live_devices`` health gauge.
    """

    def __init__(
        self,
        database: Database,
        device: DeviceProfile | str = GTX970,
        engine: Engine | str = "resolution",
        workers: int = 4,
        queue_size: int = 64,
        interconnect: Interconnect = PCIE3,
        plan_cache: PlanCache | None = None,
        plan_cache_capacity: int = 256,
        residency: bool = True,
        devices: int = 1,
        partitioning: str = "range",
        fault_plan=None,
        retry_policy=None,
        recorder=None,
        compression: str = "off",
    ):
        from ..api import _coerce_fault_plan
        from ..compression import resolve_compression
        from ..errors import ConfigurationError
        from ..scaleout import validate_devices

        auto_engine = isinstance(engine, str) and engine == "auto"
        auto_devices = isinstance(devices, str)
        if auto_devices and devices != "auto":
            raise ConfigurationError(
                f"devices must be an integer >= 1 or 'auto', got {devices!r}"
            )
        if not auto_devices:
            validate_devices(devices)
        fault_plan = _coerce_fault_plan(fault_plan)
        if (auto_engine or auto_devices) and fault_plan is not None:
            raise ConfigurationError(
                "fault injection needs a pinned configuration; use an "
                "explicit engine and devices=N instead of 'auto'"
            )
        if workers < 1:
            raise ServingError(f"need at least 1 worker, got {workers}")
        if queue_size < 1:
            raise ServingError(f"queue size must be >= 1, got {queue_size}")
        if isinstance(device, VirtualCoprocessor):
            raise ServingError(
                "pass a DeviceProfile or profile name; each worker owns a "
                "private VirtualCoprocessor (profiler state is per-query)"
            )
        self.database = database
        #: Optional :class:`~repro.telemetry.FlightRecorder` shared by
        #: all workers: every query lands a flight record, failures
        #: write post-mortem bundles (with the armed fault plan).
        self.recorder = recorder
        self._fault_plan = fault_plan
        self._retry_policy = retry_policy
        self._engine_alias = engine if isinstance(engine, str) else None
        self.profile = get_profile(device) if isinstance(device, str) else device
        self.interconnect = interconnect
        self.workers = workers
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache(
            plan_cache_capacity
        )
        self._default_engine = None
        if not auto_engine and not auto_devices:
            self._default_engine = (
                make_engine(engine) if isinstance(engine, str) else engine
            )
        elif not auto_engine:
            if not isinstance(engine, str):
                raise ConfigurationError(
                    "devices='auto' needs an engine alias (or 'auto'), "
                    "not an Engine instance"
                )
            make_engine(engine)  # validate the alias early
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._queue_capacity = queue_size
        self._closed = False
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._cancelled = 0
        self._plan_hits = 0
        self._plan_misses = 0
        self._compile_hits = 0
        self._compile_misses = 0
        self._queue_wait_ms = 0.0
        self._execute_ms = 0.0
        self._per_worker = [0] * workers
        #: Prometheus-style instruments; scraped via :meth:`metrics_text`.
        self.metrics = MetricsRegistry()
        self._latency_hist = self.metrics.histogram(
            "repro_query_latency_ms",
            "End-to-end query latency: queue wait + plan + execute (host ms)",
        )
        self._queue_wait_hist = self.metrics.histogram(
            "repro_queue_wait_ms", "Admission-queue wait (host ms)"
        )
        #: Shared wire-compression policy (``None`` = off).  One policy
        #: for all workers: its per-column encoding cache lives on the
        #: (immutable) columns, so sharing is safe and avoids
        #: re-sampling per worker.
        self.compression = resolve_compression(compression)
        self._devices = [
            VirtualCoprocessor(self.profile, interconnect=interconnect)
            for _ in range(workers)
        ]
        for worker_device in self._devices:
            worker_device.compression = self.compression
        self.residency = residency
        self.devices = devices
        self.partitioning = partitioning
        self._executors: list = []
        #: Per-worker adaptive executors (``engine="auto"`` /
        #: ``devices="auto"``).  Statistics and calibration are shared
        #: so every worker's observations tighten the same model.
        self._auto_executors: list = [None] * workers
        self._auto_lock = threading.Lock()
        self._auto_token = None
        if auto_engine or auto_devices:
            from ..optimizer import AutoExecutor, Calibrator, StatisticsCatalog

            statistics = StatisticsCatalog()
            calibrator = Calibrator()
            pinned_engine = None if auto_engine else engine
            pinned_devices = None if auto_devices else devices
            self._auto_executors = [
                AutoExecutor(
                    self.profile,
                    interconnect=interconnect,
                    engine=pinned_engine,
                    devices=pinned_devices,
                    partitioning=partitioning,
                    placement="pooled" if residency else None,
                    statistics=statistics,
                    calibrator=calibrator,
                    compression=self.compression,
                )
                for _ in range(workers)
            ]
            self._auto_token = (
                "auto", pinned_engine, pinned_devices, partitioning,
                "pooled" if residency else None,
            )
            self._pools = []
        elif devices > 1 or fault_plan is not None:
            from ..scaleout import ScaleOutExecutor

            self._executors = [
                ScaleOutExecutor(
                    devices,
                    profile=self.profile,
                    interconnect=interconnect,
                    partitioning=partitioning,
                    residency=residency,
                    fault_plan=fault_plan,
                    retry_policy=retry_policy,
                    compression=self.compression,
                )
                for _ in range(workers)
            ]
            # Residency lives in the fleets, not the (unused) per-worker
            # devices; expose the fleet pools so ``stats`` aggregates them.
            self._pools = [
                pool
                for executor in self._executors
                for pool in executor.fleet.pools
                if pool is not None
            ]
        else:
            self._pools = (
                [BufferPool(device) for device in self._devices] if residency else []
            )
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"repro-serve-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        query: str | LogicalPlan,
        engine: Engine | str | None = None,
        seed: int = 42,
        block: bool = True,
        timeout: float | None = None,
    ) -> Future:
        """Enqueue a query; returns a ``Future[ExecutionResult]``.

        Blocks while the admission queue is full (back-pressure); with
        ``block=False`` or an expired ``timeout`` the query is rejected
        with :class:`~repro.errors.AdmissionError` instead.
        """
        if self._closed:
            raise ServingError("server is closed")
        chosen = None
        if engine is not None:
            if isinstance(engine, str) and engine == "auto":
                chosen = _AUTO
            else:
                chosen = make_engine(engine) if isinstance(engine, str) else engine
        request = _Request(query=query, engine=chosen, seed=seed)
        try:
            self._queue.put(request, block=block, timeout=timeout)
        except queue.Full:
            raise AdmissionError(
                f"admission queue full ({self._queue_capacity} waiting); "
                "retry later or raise queue_size"
            ) from None
        with self._lock:
            self._submitted += 1
        record_event(
            "query.admitted",
            queue_depth=self._queue.qsize(),
            queue_capacity=self._queue_capacity,
        )
        return request.future

    def execute(
        self,
        query: str | LogicalPlan,
        engine: Engine | str | None = None,
        seed: int = 42,
    ) -> ExecutionResult:
        """Synchronous convenience: ``submit(...).result()``."""
        return self.submit(query, engine=engine, seed=seed).result()

    def execute_many(
        self,
        queries: list,
        workers: int | None = None,
        engine: Engine | str | None = None,
        seed: int = 42,
    ) -> list[ExecutionResult]:
        """Run ``queries`` through the pool; results in input order.

        ``workers`` caps the number of queries in flight (default: the
        pool size), which is how the throughput benchmark measures
        1/2/4/8-worker scaling against a single warm pool.
        """
        limit = self.workers if workers is None else workers
        if limit < 1:
            raise ServingError(f"workers must be >= 1, got {limit}")
        gate = threading.Semaphore(limit)
        futures = []
        for query in queries:
            gate.acquire()
            future = self.submit(query, engine=engine, seed=seed)
            future.add_done_callback(lambda _done: gate.release())
            futures.append(future)
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _auto_for(self, index: int):
        """This worker's adaptive executor (created lazily so pinned
        servers pay nothing until a query asks for ``engine="auto"``)."""
        with self._auto_lock:
            auto = self._auto_executors[index]
            if auto is None:
                from ..optimizer import AutoExecutor

                auto = AutoExecutor(
                    self.profile,
                    interconnect=self.interconnect,
                    partitioning=self.partitioning,
                    placement="pooled" if self.residency else None,
                    compression=self.compression,
                )
                self._auto_executors[index] = auto
            return auto

    def _worker_loop(self, index: int) -> None:
        device = self._devices[index]
        engine = self._default_engine
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._queue.task_done()
                return
            try:
                self._run_one(item, index, device, engine)
            finally:
                self._queue.task_done()

    def _run_one(
        self, item: _Request, index: int, device: VirtualCoprocessor, engine: Engine
    ) -> None:
        if not item.future.set_running_or_notify_cancel():
            with self._lock:
                self._cancelled += 1
            return
        queue_wait_ms = (time.perf_counter() - item.enqueued_at) * 1e3
        chosen = item.engine if item.engine is not None else engine
        auto = None
        if chosen is _AUTO or (chosen is None and self._auto_executors[index]):
            auto = self._auto_for(index)
            chosen = None
        if auto is not None:
            token = self._auto_token or (
                "auto", None, None, self.partitioning, None
            )
        else:
            # Pinned plans are engine-independent and shared (token None).
            token = None
        recorder = self.recorder
        flight = None
        if recorder is not None:
            flight = recorder.start(
                item.query,
                seed=item.seed,
                engine="auto" if auto is not None else self._engine_alias,
                device=self.profile.name,
                devices=self.devices,
                partitioning=self.partitioning,
                worker=index,
            )
            flight.note(seed=item.seed)
        query_id = flight.query_id if flight is not None else (
            new_query_id() if installed_log() is not None else None
        )
        tracer = None
        try:
            tracer = Tracer(worker=index) if tracing_enabled() else None
            if tracer is not None and query_id is not None:
                tracer.root.attrs["query_id"] = query_id
            activation = tracer.activate() if tracer else contextlib.nullcontext()
            scope = query_scope(query_id)
            with scope, activation:
                if tracer is not None:
                    tracer.event("queue_wait", "queue", wait_ms=queue_wait_ms)
                plan_start = time.perf_counter()
                if tracer is None:
                    physical, hit = self.plan_cache.lookup(
                        item.query, self.database, token
                    )
                else:
                    with tracer.span("plan", "plan") as span:
                        physical, hit = self.plan_cache.lookup(
                            item.query, self.database, token
                        )
                        span.attrs["cache_hit"] = hit
                plan_ms = (time.perf_counter() - plan_start) * 1e3
                record_event(
                    "query.planned", cache_hit=hit, plan_ms=round(plan_ms, 3)
                )
                if flight is not None:
                    from ..telemetry.recorder import plan_fingerprint

                    flight.note(
                        plan_fingerprint=plan_fingerprint(physical),
                        cache_hit=hit,
                    )
                begin_thread_compile_stats()
                execute_start = time.perf_counter()
                if auto is not None:
                    result = auto.execute(
                        physical, self.database, seed=item.seed
                    )
                elif self._executors:
                    result = self._executors[index].execute(
                        chosen, physical, self.database, seed=item.seed
                    )
                elif device.placement_pool is not None:
                    result = execute_with_placement(
                        chosen, physical, self.database, device, seed=item.seed
                    )
                else:
                    result = chosen.execute(
                        physical, self.database, device, seed=item.seed
                    )
                execute_ms = (time.perf_counter() - execute_start) * 1e3
                record_event(
                    "query.executed",
                    status="ok",
                    execute_ms=round(execute_ms, 3),
                    worker=index,
                )
                if (
                    result.optimizer is not None
                    and isinstance(item.query, str)
                ):
                    self.plan_cache.record_strategy(
                        item.query, self.database, token,
                        result.optimizer.chosen,
                    )
            if tracer is not None:
                result.trace = tracer.finish()
            compile_hits, compile_misses, compile_ms = thread_compile_stats()
            placement = result.placement
            result.serving = ServingStats(
                plan_cache_hit=hit,
                compile_hits=compile_hits,
                compile_misses=compile_misses,
                queue_wait_ms=queue_wait_ms,
                plan_ms=plan_ms,
                compile_ms=compile_ms,
                execute_ms=execute_ms,
                worker=index,
                placement_hits=placement.hits if placement else 0,
                placement_misses=placement.misses if placement else 0,
                placement_hit_bytes=placement.hit_bytes if placement else 0,
                out_of_core=bool(placement and placement.out_of_core),
            )
        except BaseException as error:
            with self._lock:
                self._failed += 1
                self._queue_wait_ms += queue_wait_ms
            if recorder is not None:
                recorder.fail(
                    flight,
                    error,
                    trace=tracer.finish() if tracer is not None else None,
                    fault_plan=self._fault_plan,
                    retry_policy=self._retry_policy,
                )
            item.future.set_exception(error)
            return
        if recorder is not None:
            recorder.complete(flight, result)
        with self._lock:
            self._completed += 1
            self._per_worker[index] += 1
            self._plan_hits += int(hit)
            self._plan_misses += int(not hit)
            self._compile_hits += compile_hits
            self._compile_misses += compile_misses
            self._queue_wait_ms += queue_wait_ms
            self._execute_ms += execute_ms
        self._latency_hist.observe(queue_wait_ms + plan_ms + execute_ms)
        self._queue_wait_hist.observe(queue_wait_ms)
        if result.compression is not None:
            from ..compression import observe_compression_metrics

            observe_compression_metrics(self.metrics, result.compression)
        item.future.set_result(result)

    # ------------------------------------------------------------------
    # lifecycle & stats
    # ------------------------------------------------------------------
    def stats(self) -> ServerStats:
        """A consistent snapshot of the server's counters."""
        with self._lock:
            return ServerStats(
                workers=self.workers,
                queue_capacity=self._queue_capacity,
                queue_depth=self._queue.qsize(),
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                cancelled=self._cancelled,
                plan_hits=self._plan_hits,
                plan_misses=self._plan_misses,
                compile_hits=self._compile_hits,
                compile_misses=self._compile_misses,
                queue_wait_ms_total=self._queue_wait_ms,
                execute_ms_total=self._execute_ms,
                per_worker=list(self._per_worker),
                plan_cache=self.plan_cache.stats(),
                placement=self._placement_snapshot(),
                latency=self._latency_hist.snapshot(),
                queue_wait=self._queue_wait_hist.snapshot(),
            )

    def _placement_snapshot(self):
        """Aggregate buffer-pool stats across worker pools, fleets, and
        adaptive executors (whichever this server actually uses)."""
        snapshots = [pool.stats() for pool in self._pools]
        for auto in self._auto_executors:
            if auto is not None:
                stats = auto.placement_stats()
                if stats is not None:
                    snapshots.append(stats)
        return PlacementStats.aggregate(snapshots) if snapshots else None

    def metrics_text(self) -> str:
        """Prometheus text exposition of the server's metrics.

        Live instruments (the latency histograms, observed per query)
        render alongside scrape-time exports of the counters the server
        and its caches/pools already track; the output parses with
        :func:`repro.telemetry.metrics.parse_prometheus_text`.
        """
        stats = self.stats()
        metrics = self.metrics
        metrics.gauge("repro_workers", "Worker threads").set(self.workers)
        metrics.gauge(
            "repro_queue_depth", "Queries waiting in the admission queue"
        ).set(stats.queue_depth)
        metrics.gauge(
            "repro_queue_capacity", "Admission-queue bound"
        ).set(stats.queue_capacity)
        for status, value in (
            ("completed", stats.completed),
            ("failed", stats.failed),
            ("cancelled", stats.cancelled),
        ):
            metrics.counter(
                "repro_queries_total", "Queries by final status", status=status
            ).set_total(value)
        metrics.counter(
            "repro_queries_submitted_total", "Queries admitted"
        ).set_total(stats.submitted)
        for outcome, value in (
            ("hit", stats.plan_hits), ("miss", stats.plan_misses)
        ):
            metrics.counter(
                "repro_plan_cache_lookups_total",
                "Plan-cache outcomes", outcome=outcome,
            ).set_total(value)
        for outcome, value in (
            ("hit", stats.compile_hits), ("miss", stats.compile_misses)
        ):
            metrics.counter(
                "repro_kernel_cache_lookups_total",
                "Compiled-kernel cache outcomes (this server's queries)",
                outcome=outcome,
            ).set_total(value)
        if stats.plan_cache is not None:
            metrics.gauge(
                "repro_plan_cache_size", "Cached physical plans"
            ).set(stats.plan_cache.size)
        kernel_cache = kernel_cache_stats()
        metrics.gauge(
            "repro_kernel_cache_size", "Compiled kernels resident (process-wide)"
        ).set(kernel_cache.size)
        if stats.placement is not None:
            placement = stats.placement
            metrics.gauge(
                "repro_placement_resident_bytes",
                "Device-resident base-column bytes (all worker pools)",
            ).set(placement.resident_bytes)
            metrics.gauge(
                "repro_placement_resident_columns", "Device-resident columns"
            ).set(placement.resident_columns)
            for outcome, value in (
                ("hit", placement.hits),
                ("miss", placement.misses),
                ("eviction", placement.evictions),
                ("invalidation", placement.invalidations),
                ("fallback", placement.fallbacks),
            ):
                metrics.counter(
                    "repro_placement_events_total",
                    "Buffer-pool events", outcome=outcome,
                ).set_total(value)
            metrics.counter(
                "repro_placement_saved_bytes_total",
                "PCIe bytes avoided by residency hits",
            ).set_total(placement.hit_bytes)
        for index, executor in enumerate(self._executors):
            executor.observe_metrics(metrics, worker=str(index))
        for index, auto in enumerate(self._auto_executors):
            if auto is not None:
                auto.observe_metrics(metrics, worker=str(index))
        if self.recorder is not None:
            self.recorder.observe_metrics(metrics)
        return metrics.render()

    def drain(self) -> None:
        """Block until every admitted query has finished."""
        self._queue.join()

    def close(self) -> None:
        """Stop accepting queries, finish the backlog, join the workers."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
