"""The serving runtime: concurrent query execution with caching.

::

    from repro.serving import Server
    from repro.workloads import generate_ssb

    with Server(generate_ssb(0.01), workers=4) as server:
        future = server.submit("select sum(lo_revenue) as r from lineorder")
        result = future.result()
        print(result.table.to_rows(), result.serving)

See ``docs/serving.md`` for the architecture, cache keys, and
invalidation rules.  The throughput benchmark lives in
:mod:`repro.serving.bench` (imported lazily — it pulls in workloads).
"""

from .plan_cache import CachedPlan, PlanCache, PlanCacheStats, normalize_sql
from .server import Server
from .stats import ServerStats, ServingStats

__all__ = [
    "CachedPlan",
    "PlanCache",
    "PlanCacheStats",
    "Server",
    "ServerStats",
    "ServingStats",
    "normalize_sql",
]
