"""Serving-throughput benchmark: cold vs. warm caches, 1..N workers.

Two phases over a mixed SSB workload (all 13 queries):

* **Latency** (single worker) — per-query *serving latency*, defined as
  the host-side front-end cost actually paid (SQL parse + pipeline
  extraction + kernel compilation, measured wall clock) plus the
  query's simulated device time (transfers + kernels, the repo's
  standard metric).  Cold = first execution with empty caches; warm =
  repeat executions with the plan and kernel caches hot.
* **Throughput** (1, 2, 4, 8 workers) — queries/second of a warm
  server.  Each worker owns a private virtual device, so the modeled
  makespan is the *maximum over workers* of their busy time (host
  overhead + simulated device ms of the queries they executed);
  one worker serializes the whole stream on one device.  Host
  wall-clock throughput is reported alongside, but on a single-core
  host it cannot scale — the serving metric models the multi-device
  deployment, consistent with every other benchmark in this repo
  (simulated time from measured traffic, see EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis import format_table
from ..kernels.codegen import clear_kernel_cache
from ..placement.stats import PlacementStats
from ..storage.database import Database
from ..workloads import SSB_QUERIES, generate_ssb
from .plan_cache import PlanCache
from .server import Server

#: Acceptance thresholds the report checks itself against.
WARM_SPEEDUP_TARGET = 2.0
SCALING_TARGET = 1.5


@dataclass
class LatencyRow:
    query: str
    cold_ms: float
    warm_ms: float

    @property
    def speedup(self) -> float:
        return self.cold_ms / self.warm_ms if self.warm_ms else float("inf")


@dataclass
class ThroughputRow:
    workers: int
    queries: int
    serving_qps: float
    wall_qps: float
    makespan_ms: float
    plan_hit_rate: float
    #: serving_qps relative to the 1-worker row.
    scaling: float = 1.0


@dataclass
class ServingBenchReport:
    scale_factor: float
    repeats: int
    latency: list[LatencyRow] = field(default_factory=list)
    throughput: list[ThroughputRow] = field(default_factory=list)
    #: Residency counters of the single-worker latency server
    #: (``None`` when the benchmark ran with ``residency=False``).
    placement: PlacementStats | None = None
    #: ``ServerStats.summary()`` of the single-worker latency server
    #: (queue depth, cancelled, p50/p95/p99 latency).
    server_summary: str | None = None
    #: Prometheus text exposition of the latency server, for
    #: ``repro serve-bench --metrics-out``.
    metrics_text: str | None = None

    # ------------------------------------------------------------------
    @property
    def warm_speedup(self) -> float:
        """Aggregate cold/warm serving-latency ratio over the workload."""
        cold = sum(row.cold_ms for row in self.latency)
        warm = sum(row.warm_ms for row in self.latency)
        return cold / warm if warm else float("inf")

    @property
    def best_scaling(self) -> float:
        """Best multi-worker serving throughput relative to 1 worker."""
        multi = [row.scaling for row in self.throughput if row.workers > 1]
        return max(multi) if multi else 0.0

    @property
    def passed(self) -> bool:
        return (
            self.warm_speedup >= WARM_SPEEDUP_TARGET
            and self.best_scaling >= SCALING_TARGET
        )

    # ------------------------------------------------------------------
    def text(self) -> str:
        latency_rows = [
            [row.query, round(row.cold_ms, 3), round(row.warm_ms, 3),
             f"{row.speedup:.2f}x"]
            for row in self.latency
        ]
        parts = [
            format_table(
                ["query", "cold (ms)", "warm (ms)", "speedup"],
                latency_rows,
                title=(
                    f"Serving latency, mixed SSB at SF {self.scale_factor} "
                    "(plan+compile wall + simulated device ms; 1 worker)"
                ),
                float_format="{:.3f}",
            )
        ]
        throughput_rows = [
            [row.workers, row.queries, round(row.serving_qps, 1),
             round(row.wall_qps, 1), f"{row.plan_hit_rate * 100:.0f}%",
             f"{row.scaling:.2f}x"]
            for row in self.throughput
        ]
        parts.append(
            format_table(
                ["workers", "queries", "serving q/s", "host wall q/s",
                 "plan hits", "scaling"],
                throughput_rows,
                title=(
                    "Warm-cache throughput (serving q/s = queries / modeled "
                    "makespan over per-worker devices)"
                ),
            )
        )
        if self.placement is not None:
            parts.append(
                "Placement (cross-query column residency, 1-worker server):\n"
                f"  resident bytes   {self.placement.resident_bytes}\n"
                f"  hit rate         {self.placement.hit_rate * 100:.0f}% "
                f"({self.placement.hits}/{self.placement.hits + self.placement.misses})\n"
                f"  PCIe saved       {self.placement.hit_bytes / 1e6:.2f} MB\n"
                f"  evictions        {self.placement.evictions}\n"
                f"  out-of-core      {self.placement.fallbacks}"
            )
        if self.server_summary is not None:
            parts.append("Latency server counters:\n" + self.server_summary)
        parts.append(
            f"warm-cache latency speedup: {self.warm_speedup:.2f}x "
            f"(target >= {WARM_SPEEDUP_TARGET:.1f}x)\n"
            f"multi-worker scaling:       {self.best_scaling:.2f}x "
            f"(target >= {SCALING_TARGET:.1f}x)\n"
            f"result: {'PASS' if self.passed else 'FAIL'}"
        )
        return "\n\n".join(parts)


def _serving_ms(result) -> float:
    """One query's serving latency: host front-end + simulated device.

    Scale-out results report the fleet *makespan* (devices run
    concurrently), not the serial sum in ``total_ms``."""
    stats = result.serving
    device_ms = result.total_ms
    if result.scaleout is not None:
        device_ms = result.scaleout.makespan_ms
    return stats.plan_ms + stats.compile_ms + device_ms


def run_serving_benchmark(
    scale_factor: float = 0.005,
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
    repeats: int = 3,
    passes: int = 4,
    device: str = "gtx970",
    engine: str = "resolution",
    database: Database | None = None,
    seed: int = 7,
    residency: bool = True,
    devices: int = 1,
    partitioning: str = "range",
    fault_plan=None,
    retry_policy=None,
    recorder=None,
) -> ServingBenchReport:
    """Run both phases; see the module docstring for the metrics.

    ``devices=N`` gives every server a per-worker scale-out fleet
    (:mod:`repro.scaleout`); latencies then use the fleet makespan.
    ``fault_plan``/``retry_policy`` arm deterministic fault injection
    on every worker's fleet (see ``docs/fault-tolerance.md``).
    ``recorder`` (a :class:`~repro.telemetry.FlightRecorder`) rides
    along in every server: per-query flight records, post-mortem
    bundles on failure, and recorder counters in ``metrics_text``."""
    if database is None:
        database = generate_ssb(scale_factor, seed=seed)
    names = sorted(SSB_QUERIES)
    queries = [SSB_QUERIES[name] for name in names]
    report = ServingBenchReport(scale_factor=scale_factor, repeats=repeats)

    # Phase 1: cold vs warm serving latency, single worker. ------------
    clear_kernel_cache()
    with Server(database, device=device, engine=engine, workers=1,
                queue_size=len(queries) + 1, residency=residency,
                devices=devices, partitioning=partitioning,
                fault_plan=fault_plan, retry_policy=retry_policy,
                recorder=recorder) as server:
        cold = server.execute_many(queries)
        warm_passes = [server.execute_many(queries) for _ in range(repeats)]
        latency_stats = server.stats()
        report.placement = latency_stats.placement
        report.server_summary = latency_stats.summary()
        report.metrics_text = server.metrics_text()
    for index, name in enumerate(names):
        warm = [_serving_ms(run[index]) for run in warm_passes]
        report.latency.append(
            LatencyRow(
                query=name,
                cold_ms=_serving_ms(cold[index]),
                warm_ms=sum(warm) / len(warm),
            )
        )

    # Phase 2: warm throughput at 1..N workers. ------------------------
    workload = queries * passes
    shared_cache = PlanCache(capacity=256)
    base_qps: float | None = None
    for workers in worker_counts:
        with Server(database, device=device, engine=engine, workers=workers,
                    queue_size=len(workload) + 1,
                    plan_cache=shared_cache, residency=residency,
                    devices=devices, partitioning=partitioning,
                    fault_plan=fault_plan, retry_policy=retry_policy,
                    recorder=recorder) as server:
            server.execute_many(queries)  # warm this server's devices/caches
            started = time.perf_counter()
            results = server.execute_many(workload)
            wall_s = time.perf_counter() - started
            stats = server.stats()
        busy = [0.0] * workers
        for result in results:
            busy[result.serving.worker] += _serving_ms(result)
        makespan_ms = max(busy)
        row = ThroughputRow(
            workers=workers,
            queries=len(workload),
            serving_qps=len(workload) / makespan_ms * 1e3,
            wall_qps=len(workload) / wall_s,
            makespan_ms=makespan_ms,
            plan_hit_rate=stats.plan_hit_rate,
        )
        if base_qps is None:
            base_qps = row.serving_qps
        row.scaling = row.serving_qps / base_qps if base_qps else 1.0
        report.throughput.append(row)
    return report
