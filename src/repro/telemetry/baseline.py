"""Perf-regression sentinel: baseline store + drift checking.

The simulator is deterministic: for a fixed workload recipe, device
profile, and engine, every benchmark query's cost-model outputs —
simulated time, PCIe and global-memory byte volumes, kernel-launch
count, peak device allocation — are exactly reproducible.  That makes
them a **perf fingerprint**: any code change that silently shifts the
cost model or the executor's data movement shows up as drift against a
committed baseline, long before a human notices a benchmark curve
moved.

Workflow (see ``docs/observability.md``)::

    repro baseline record          # write benchmarks/baselines/*.json
    repro baseline check           # compare a fresh run; exit 1 on drift

Byte/count metrics must match exactly; simulated-time metrics get a
small relative tolerance band (float arithmetic across numpy versions)
that ``--tolerance`` widens.  :func:`check_baselines` returns a
:class:`DriftReport` whose ``render()`` is the human-readable
per-metric drift table CI prints on failure.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

__all__ = [
    "BASELINE_QUERIES",
    "DEFAULT_BASELINE_PATH",
    "DriftEntry",
    "DriftReport",
    "check_baselines",
    "load_baselines",
    "measure_fingerprint",
    "record_baselines",
]

DEFAULT_BASELINE_PATH = os.path.join(
    "benchmarks", "baselines", "perf_baselines.json"
)

#: (workload, query) pairs fingerprinted by record/check.  The SSB four
#: cover the chaos suite's star-join shapes; the TPC-H two cover the
#: scan-heavy aggregate and the multi-aggregate group-by.
BASELINE_QUERIES: tuple = (
    ("ssb", "q1.1"),
    ("ssb", "q2.1"),
    ("ssb", "q3.2"),
    ("ssb", "q4.1"),
    ("tpch", "q1"),
    ("tpch", "q6"),
)

#: Relative tolerance per metric.  Bytes, launches, and rows are exact
#: integers of the deterministic simulation — zero drift allowed; the
#: simulated-time floats get a narrow band.
METRIC_TOLERANCES = {
    "sim_ms": 0.01,
    "kernel_ms": 0.01,
    "pcie_bytes": 0.0,
    "global_bytes": 0.0,
    "kernel_launches": 0.0,
    "peak_alloc_bytes": 0.0,
    "rows": 0.0,
}

_STORE_VERSION = 1


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
def measure_fingerprint(
    workload: str,
    name: str,
    database,
    profile,
    engine_name: str = "resolution",
    seed: int = 42,
    compression=None,
) -> dict:
    """One query's perf fingerprint on a fresh device.

    ``compression`` (a mode string or policy) fingerprints the
    compression-aware transfer path: ``pcie_bytes`` then counts wire
    (compressed) bytes and ``kernel_launches`` includes the decode
    kernels, so codec or chooser drift is caught exactly."""
    from ..compression import resolve_compression
    from ..engines import make_engine
    from ..hardware.device import VirtualCoprocessor
    from ..workloads import ssb_plan, tpch_plan

    plan = (
        tpch_plan(name, database) if workload == "tpch" else ssb_plan(name, database)
    )
    device = VirtualCoprocessor(profile)
    device.compression = resolve_compression(compression)
    result = make_engine(engine_name).execute(plan, database, device, seed=seed)
    return {
        "sim_ms": round(result.total_ms, 6),
        "kernel_ms": round(result.kernel_ms, 6),
        "pcie_bytes": int(result.input_bytes + result.output_bytes),
        "global_bytes": int(result.global_memory_bytes),
        "kernel_launches": len(result.profile.kernels),
        "peak_alloc_bytes": int(device.peak_allocated),
        "rows": int(result.table.num_rows),
    }


def _measure_all(config: dict) -> dict:
    from ..hardware.profiles import get_profile
    from ..workloads import generate_ssb, generate_tpch

    profile = get_profile(config["device"])
    databases = {}
    fingerprints = {}
    for workload, name in BASELINE_QUERIES:
        if workload not in databases:
            if workload == "tpch":
                databases[workload] = generate_tpch(
                    config["scale_factor"], seed=config["data_seed"]
                )
            else:
                databases[workload] = generate_ssb(
                    config["scale_factor"], seed=config["data_seed"]
                )
        fingerprints[f"{workload}:{name}"] = measure_fingerprint(
            workload,
            name,
            databases[workload],
            profile,
            engine_name=config["engine"],
            seed=config["seed"],
        )
        # Compressed-transfer twin: same query under compression="auto".
        # Wire bytes, decode-kernel counts, and ratios are exactly
        # deterministic, so codec/chooser drift fails the check too.
        fingerprints[f"{workload}:{name}:compressed"] = measure_fingerprint(
            workload,
            name,
            databases[workload],
            profile,
            engine_name=config["engine"],
            seed=config["seed"],
            compression="auto",
        )
        # Late-materialization twin: compression="lazy" fingerprints the
        # compressed-scan/gather-decode path — strategy or block-skip
        # drift shifts global bytes and launch counts exactly.
        fingerprints[f"{workload}:{name}:lazy"] = measure_fingerprint(
            workload,
            name,
            databases[workload],
            profile,
            engine_name=config["engine"],
            seed=config["seed"],
            compression="lazy",
        )
    return fingerprints


def record_baselines(
    path: str | None = None,
    scale_factor: float = 0.002,
    device: str = "gtx970",
    engine: str = "resolution",
    data_seed: int = 7,
    seed: int = 42,
) -> dict:
    """Measure every baseline query; write the store when ``path`` set."""
    config = {
        "scale_factor": scale_factor,
        "device": device,
        "engine": engine,
        "data_seed": data_seed,
        "seed": seed,
    }
    store = {
        "version": _STORE_VERSION,
        "config": config,
        "queries": _measure_all(config),
    }
    if path is not None:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(store, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return store


def load_baselines(path: str) -> dict:
    from ..errors import ConfigurationError

    try:
        with open(path, "r", encoding="utf-8") as handle:
            store = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(
            f"cannot read baseline store {path}: {error}"
        ) from None
    if not isinstance(store, dict) or "queries" not in store or "config" not in store:
        raise ConfigurationError(
            f"{path} is not a baseline store (missing 'config'/'queries')"
        )
    return store


# ----------------------------------------------------------------------
# drift checking
# ----------------------------------------------------------------------
@dataclass
class DriftEntry:
    query: str
    metric: str
    baseline: float
    current: float
    drift: float  # relative, abs
    tolerance: float
    ok: bool


@dataclass
class DriftReport:
    """Per-metric comparison of a fresh run against the baseline store."""

    entries: list = field(default_factory=list)
    missing: list = field(default_factory=list)  # in store, not measured
    unexpected: list = field(default_factory=list)  # measured, not in store

    @property
    def passed(self) -> bool:
        return (
            not self.missing
            and not self.unexpected
            and all(entry.ok for entry in self.entries)
        )

    @property
    def failures(self) -> list:
        return [entry for entry in self.entries if not entry.ok]

    def render(self) -> str:
        lines = []
        verdict = "PASS" if self.passed else "FAIL"
        checked = {entry.query for entry in self.entries}
        lines.append(
            f"baseline check: {verdict} "
            f"({len(checked)} queries, {len(self.entries)} metrics, "
            f"{len(self.failures)} drifted)"
        )
        for query in self.missing:
            lines.append(f"  MISSING  {query}: in baseline store, not measured")
        for query in self.unexpected:
            lines.append(f"  NEW      {query}: measured, not in baseline store")
        for entry in self.failures:
            lines.append(
                f"  DRIFT    {entry.query} {entry.metric}: "
                f"baseline {entry.baseline:g} -> current {entry.current:g} "
                f"({entry.drift * 100:+.2f}% vs ±{entry.tolerance * 100:.2f}%)"
            )
        if self.passed:
            for entry in self.entries:
                if entry.drift > 0:
                    lines.append(
                        f"  ok       {entry.query} {entry.metric}: "
                        f"{entry.drift * 100:+.3f}% within ±"
                        f"{entry.tolerance * 100:.2f}%"
                    )
        return "\n".join(lines)


def check_baselines(
    store: dict | str,
    tolerance_scale: float = 1.0,
    current: dict | None = None,
) -> DriftReport:
    """Compare a fresh measurement run against a baseline store.

    ``store`` is the dict from :func:`record_baselines`/
    :func:`load_baselines` or a path; ``tolerance_scale`` multiplies
    every metric's band (``--tolerance 2`` doubles them, 0 demands
    exact equality everywhere); ``current`` injects pre-measured
    fingerprints (tests use this to simulate drift)."""
    if isinstance(store, str):
        store = load_baselines(store)
    if current is None:
        current = _measure_all(store["config"])
    report = DriftReport()
    baseline_queries = store["queries"]
    report.missing = sorted(set(baseline_queries) - set(current))
    report.unexpected = sorted(set(current) - set(baseline_queries))
    for query in sorted(set(baseline_queries) & set(current)):
        recorded = baseline_queries[query]
        measured = current[query]
        for metric in sorted(set(recorded) | set(measured)):
            base = float(recorded.get(metric, 0.0))
            now = float(measured.get(metric, 0.0))
            if base == 0.0:
                drift = 0.0 if now == 0.0 else float("inf")
            else:
                drift = abs(now - base) / abs(base)
            tolerance = METRIC_TOLERANCES.get(metric, 0.0) * tolerance_scale
            report.entries.append(
                DriftEntry(
                    query=query,
                    metric=metric,
                    baseline=base,
                    current=now,
                    drift=drift,
                    tolerance=tolerance,
                    ok=drift <= tolerance,
                )
            )
    return report
