"""Prometheus-style metrics: counters, gauges, log-bucket histograms.

A :class:`MetricsRegistry` holds metric families keyed by name; each
family holds one instrument per label set.  The registry renders in
the Prometheus text exposition format (``render_prometheus``), and the
module ships a deliberately small :func:`parse_prometheus_text` so CI
and tests can check that what we expose actually parses.

Histograms use **fixed log-2 buckets** (sub-millisecond to tens of
seconds by default) so percentile queries are O(buckets) and two
histograms are always mergeable bucket-by-bucket.  ``percentile``
returns the upper bound of the bucket containing the requested rank —
the standard Prometheus ``histogram_quantile`` resolution.

All instruments are thread-safe (serving workers record concurrently).
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "parse_prometheus_text",
    "render_prometheus",
]

#: Default latency buckets in milliseconds: 2^-4 .. 2^15 (0.0625 ms to
#: ~32.8 s), 20 buckets.  Log-2 spacing keeps relative error bounded at
#: every magnitude a simulated or host-side query latency can take.
DEFAULT_LATENCY_BUCKETS_MS = tuple(2.0 ** exp for exp in range(-4, 16))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """A monotonically increasing count."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Sync to an externally tracked monotonic total (scrape-time
        export of counters the server already maintains elsewhere)."""
        with self._lock:
            self._value = max(self._value, float(value))

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


@dataclass(frozen=True)
class HistogramSnapshot:
    """An immutable copy of a histogram's state.

    ``counts`` holds per-bucket (non-cumulative) observation counts,
    with one extra overflow slot for observations above the last bound.
    """

    buckets: tuple
    counts: tuple
    count: int
    sum: float

    def percentile(self, q: float) -> float:
        """The upper bucket bound covering quantile ``q`` in (0, 1]."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = math.ceil(q * self.count)
        seen = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            seen += bucket_count
            if seen >= target:
                return bound
        # Overflow bucket: report the largest finite bound.
        return self.buckets[-1]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def summary(self, unit: str = "ms") -> str:
        return (
            f"n={self.count}  mean {self.mean:.3f} {unit}  "
            f"p50 {self.p50:.3g} {unit}  p95 {self.p95:.3g} {unit}  "
            f"p99 {self.p99:.3g} {unit}"
        )


class Histogram:
    """A fixed-bucket histogram with percentile accessors."""

    def __init__(self, buckets=None):
        bounds = tuple(sorted(buckets)) if buckets else DEFAULT_LATENCY_BUCKETS_MS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow slot
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    # -- accessors ------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(
                buckets=self.buckets,
                counts=tuple(self._counts),
                count=self._count,
                sum=self._sum,
            )

    def percentile(self, q: float) -> float:
        return self.snapshot().percentile(q)

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def merge(self, other: "Histogram | HistogramSnapshot") -> None:
        """Fold another histogram's observations into this one (the
        bucket layouts must match)."""
        snap = other.snapshot() if isinstance(other, Histogram) else other
        if snap.buckets != self.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        with self._lock:
            for index, bucket_count in enumerate(snap.counts):
                self._counts[index] += bucket_count
            self._count += snap.count
            self._sum += snap.sum


@dataclass
class _Family:
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    instances: dict  # label tuple -> instrument


class MetricsRegistry:
    """A named collection of metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call registers the family (name, help text, type), later calls with
    the same name and labels return the same instrument.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._instrument("counter", name, help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._instrument("gauge", name, help, labels, Gauge)

    def histogram(
        self, name: str, help: str = "", buckets=None, **labels
    ) -> Histogram:
        return self._instrument(
            "histogram", name, help, labels, lambda: Histogram(buckets)
        )

    def _instrument(self, kind, name, help, labels, factory):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(kind=kind, help=help, instances={})
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            instrument = family.instances.get(key)
            if instrument is None:
                instrument = factory()
                family.instances[key] = instrument
            return instrument

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Prometheus text exposition of every registered family."""
        return render_prometheus(self)

    def families(self) -> dict:
        with self._lock:
            return dict(self._families)


# ----------------------------------------------------------------------
# text exposition
# ----------------------------------------------------------------------
def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(pairs) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape(value)}"' for key, value in pairs)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape(value: str) -> str:
    """Inverse of :func:`_escape` (single left-to-right pass, so an
    escaped backslash never re-triggers on the next character)."""
    out: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def render_prometheus(registry: MetricsRegistry) -> str:
    lines: list[str] = []
    for name, family in sorted(registry.families().items()):
        if family.help:
            # HELP lines escape backslash and newline (Prometheus text
            # format); quotes stay literal outside label values.
            help_text = family.help.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {family.kind}")
        for key in sorted(family.instances):
            instrument = family.instances[key]
            pairs = list(key)
            if family.kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_format_labels(pairs)} "
                    f"{_format_value(instrument.value)}"
                )
            else:  # histogram
                snap = instrument.snapshot()
                cumulative = 0
                for bound, bucket_count in zip(snap.buckets, snap.counts):
                    cumulative += bucket_count
                    bucket_pairs = pairs + [("le", _format_value(bound))]
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_pairs)} {cumulative}"
                    )
                bucket_pairs = pairs + [("le", "+Inf")]
                lines.append(
                    f"{name}_bucket{_format_labels(bucket_pairs)} {snap.count}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(pairs)} {_format_value(snap.sum)}"
                )
                lines.append(f"{name}_count{_format_labels(pairs)} {snap.count}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# tiny parser (validation for CI and tests)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> dict:
    """Parse Prometheus text exposition into
    ``{metric_name: [(labels_dict, value), ...]}``.

    Raises :class:`ValueError` on any malformed line — this is the
    check CI runs against ``Server.metrics_text()`` output.
    """
    samples: dict[str, list] = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 2)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {number}: malformed comment {raw!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {number}: malformed sample {raw!r}")
        labels: dict[str, str] = {}
        body = match.group("labels")
        if body:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(body):
                labels[pair.group(1)] = _unescape(pair.group(2))
                consumed = pair.end()
            remainder = body[consumed:].strip().strip(",")
            if remainder:
                raise ValueError(f"line {number}: malformed labels {body!r}")
        value_text = match.group("value")
        value = float("inf") if value_text == "+Inf" else float(value_text)
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples
