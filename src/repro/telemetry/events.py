"""Structured query event log: a bounded ring of typed JSON events.

Every noteworthy runtime transition — query admitted/planned/executed,
plan-cache hit/miss, placement eviction, morsel retry/redistribution,
fault firings, optimizer decisions — is emitted as a typed
:class:`Event` into one process-wide :class:`EventLog` (a thread-safe
ring buffer, oldest events dropped past capacity).  Events carry a
**per-query correlation id** so the log can be filtered to one query
and joined against its spans (the id is stamped on the tracer root)
and flight record.

Emission goes through :func:`record_event`, which is a single
module-global ``None`` check when no log is installed — the same
disabled-fast-path discipline as :func:`repro.telemetry.trace.active_tracer`,
so an instrumented hot loop pays nothing until observability is
switched on.

Event kinds (see ``docs/observability.md`` for the full schema):

=====================  ==================================================
kind                   emitted by / meaning
=====================  ==================================================
``query.admitted``     ``Server.submit`` accepted the query
``query.planned``      plan ready; ``cache_hit`` says whether the plan
                       cache served it
``query.executed``     terminal state; ``status`` is ``ok``/``failed``
``placement.evicted``  buffer pool evicted a resident column
``morsel.retry``       same-device retry of a failed fact morsel
``morsel.redistributed``  failed morsels re-scheduled onto survivors
``fault.fired``        an armed :class:`~repro.faults.FaultPlan` fired
``device.lost``        a fleet device dropped out mid-query
``fallback.host``      every device lost; host out-of-core fallback
``optimizer.decision``  the adaptive optimizer chose a strategy
=====================  ==================================================
"""

from __future__ import annotations

import collections
import itertools
import json
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Event",
    "EventLog",
    "current_query",
    "install_log",
    "installed_log",
    "load_jsonl",
    "new_query_id",
    "query_scope",
    "record_event",
    "uninstall_log",
]

#: The process-wide event sink.  ``None`` (the default) is the fast
#: path: :func:`record_event` returns after this one global read.
_log: "EventLog | None" = None
_local = threading.local()
_query_counter = itertools.count(1)


@dataclass(frozen=True)
class Event:
    """One structured log entry.

    ``ts`` is Unix seconds (wall clock); ``seq`` is the log's monotonic
    sequence number (gaps mean the ring dropped older events); ``query``
    is the correlation id (``None`` for events outside any query scope).
    """

    seq: int
    ts: float
    kind: str
    query: str | None
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ts": round(self.ts, 6),
            "kind": self.kind,
            "query": self.query,
            "attrs": {key: _jsonable(value) for key, value in self.attrs.items()},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        return cls(
            seq=int(data.get("seq", 0)),
            ts=float(data.get("ts", 0.0)),
            kind=str(data["kind"]),
            query=data.get("query"),
            attrs=dict(data.get("attrs", {})),
        )


class EventLog:
    """Bounded, thread-safe ring buffer of :class:`Event` objects.

    Appends are O(1); past ``capacity`` the oldest event is dropped and
    counted in :attr:`dropped` (sequence numbers keep climbing, so a
    reader can tell how much history the ring no longer holds).
    Cumulative per-kind counts survive ring eviction — they feed the
    ``repro_events_total`` metric family.
    """

    def __init__(self, capacity: int = 2048):
        if isinstance(capacity, bool) or not isinstance(capacity, int) or capacity < 1:
            from ..errors import ConfigurationError

            raise ConfigurationError(
                f"event-log capacity must be an integer >= 1, got {capacity!r}"
            )
        self.capacity = capacity
        self._ring: collections.deque = collections.deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._dropped = 0
        self._counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def emit(self, kind: str, query: str | None = None, **attrs) -> Event:
        """Append one event; ``query`` defaults to the thread's scope."""
        if query is None:
            query = current_query()
        with self._lock:
            self._seq += 1
            if len(self._ring) == self.capacity:
                self._dropped += 1
            event = Event(
                seq=self._seq, ts=time.time(), kind=kind, query=query, attrs=attrs
            )
            self._ring.append(event)
            self._counts[kind] = self._counts.get(kind, 0) + 1
        return event

    # ------------------------------------------------------------------
    def events(
        self,
        kind: str | None = None,
        query: str | None = None,
        limit: int | None = None,
    ) -> list[Event]:
        """Snapshot of buffered events, oldest first, optionally
        filtered by kind and/or correlation id; ``limit`` keeps the
        newest N after filtering."""
        with self._lock:
            snapshot = list(self._ring)
        if kind is not None:
            snapshot = [event for event in snapshot if event.kind == kind]
        if query is not None:
            snapshot = [event for event in snapshot if event.query == query]
        if limit is not None and limit >= 0:
            snapshot = snapshot[len(snapshot) - limit:]
        return snapshot

    def tail(self, n: int = 20) -> list[Event]:
        return self.events(limit=n)

    def counts(self) -> dict[str, int]:
        """Cumulative events per kind (not capped by the ring)."""
        with self._lock:
            return dict(self._counts)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    # ------------------------------------------------------------------
    def jsonl(
        self, kind: str | None = None, query: str | None = None
    ) -> str:
        """The buffered events as JSONL, one event per line."""
        lines = [event.to_json() for event in self.events(kind=kind, query=query)]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> int:
        """Dump the buffer to ``path``; returns the event count."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(event.to_json() + "\n")
        return len(events)

    def observe_metrics(self, metrics, **labels) -> None:
        """Export ``repro_events_total{kind=...}`` (+ drop counter)."""
        for kind, count in sorted(self.counts().items()):
            metrics.counter(
                "repro_events_total",
                "Structured log events emitted, by kind",
                kind=kind,
                **labels,
            ).set_total(count)
        metrics.counter(
            "repro_events_dropped_total",
            "Events evicted from the bounded event-log ring",
            **labels,
        ).set_total(self.dropped)


# ----------------------------------------------------------------------
# process-wide installation + the instrumentation-point entry
# ----------------------------------------------------------------------
def install_log(log: EventLog) -> None:
    """Make ``log`` the process-wide sink for :func:`record_event`."""
    global _log
    _log = log


def uninstall_log(log: EventLog | None = None) -> None:
    """Remove the installed sink (if ``log`` is given, only when it is
    the currently-installed one — lets owners uninstall idempotently)."""
    global _log
    if log is None or _log is log:
        _log = None


def installed_log() -> EventLog | None:
    return _log


def record_event(kind: str, query: str | None = None, **attrs) -> None:
    """Emit an event into the installed log, if any.

    This is the call the instrumentation points make; when no log is
    installed it is a single module-global read — the only cost the
    event layer adds to an unobserved run.
    """
    log = _log
    if log is None:
        return
    log.emit(kind, query=query, **attrs)


# ----------------------------------------------------------------------
# per-query correlation
# ----------------------------------------------------------------------
def new_query_id() -> str:
    """A process-unique query correlation id (``q-000001``, ...)."""
    return f"q-{next(_query_counter):06d}"


def current_query() -> str | None:
    """The correlation id bound to the current thread, or ``None``."""
    return getattr(_local, "query", None)


class query_scope:
    """Bind a correlation id to the current thread for a ``with`` block.

    Events emitted on this thread without an explicit ``query=`` pick
    the id up automatically (cross-thread emitters — the scale-out
    device workers — are handed the id explicitly instead)."""

    def __init__(self, query_id: str | None):
        self.query_id = query_id
        self._previous: str | None = None

    def __enter__(self) -> str | None:
        self._previous = getattr(_local, "query", None)
        _local.query = self.query_id
        return self.query_id

    def __exit__(self, *_exc) -> None:
        _local.query = self._previous


# ----------------------------------------------------------------------
# JSONL loading (the ``repro log`` tail command)
# ----------------------------------------------------------------------
def load_jsonl(path: str) -> list[Event]:
    """Parse an event-log JSONL file (as written by
    :meth:`EventLog.write_jsonl` or found in a post-mortem bundle).

    Raises :class:`ValueError` naming the offending line on malformed
    input, so callers can turn it into a clean CLI error."""
    events: list[Event] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                if not isinstance(data, dict) or "kind" not in data:
                    raise ValueError("not an event object")
                events.append(Event.from_dict(data))
            except (ValueError, KeyError, TypeError) as error:
                raise ValueError(
                    f"{path}:{number}: malformed event line ({error})"
                ) from None
    return events


def _jsonable(value):
    """Coerce attribute values (possibly numpy scalars) to JSON types."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return str(value)
