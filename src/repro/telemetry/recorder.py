"""Always-on flight recorder: per-query records + post-mortem bundles.

A :class:`FlightRecorder` keeps a bounded ring of compact
:class:`FlightRecord` objects — one per query, holding the plan
fingerprint, the resolved execution strategy, the traffic/recovery
numbers, the result checksum, and the tail of the structured event log
(:mod:`repro.telemetry.events`).  The ring is cheap enough to leave on
in production serving: no span trees, no tables, just a few hundred
bytes per query.

On a query **failure** (or an explicit :meth:`FlightRecorder.capture`,
which the chaos suite uses for byte-identity misses) the recorder
writes a self-contained **post-mortem bundle** directory::

    postmortems/<stamp>-<query_id>/
        manifest.json     flight record + error + expected outcome
        events.jsonl      the event-log tail for the query
        trace.json        Chrome trace (when tracing was enabled)
        fault_plan.json   the armed FaultPlan (when any)
        optimizer.txt     the optimizer decision render (when any)

``manifest.json`` embeds a **replay recipe** — workload generator
parameters (or a data dir), device profile, engine, fleet shape, fault
plan, retry policy, and seed — so :func:`replay_bundle` (the
``repro replay`` CLI) can re-execute the query deterministically and
verify the outcome byte-for-byte against the recorded column checksums
(or reproduce the recorded failure).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .events import Event, EventLog, install_log, uninstall_log

__all__ = [
    "BUNDLE_MANIFEST",
    "Flight",
    "FlightRecord",
    "FlightRecorder",
    "ReplayReport",
    "replay_bundle",
    "table_checksum",
    "write_postmortem_bundle",
]

BUNDLE_MANIFEST = "manifest.json"
_BUNDLE_VERSION = 1


# ----------------------------------------------------------------------
# checksums (the byte-identity currency of bundles and replay)
# ----------------------------------------------------------------------
def table_checksum(table) -> dict:
    """Per-column sha256 over dtype + raw values of a result table.

    Two tables with equal checksums are byte-identical in the chaos
    suite's sense: same columns, same dtypes, same values, same order.
    """
    out = {}
    for name in table.column_names:
        values = np.ascontiguousarray(table.column(name).values)
        digest = hashlib.sha256()
        digest.update(str(values.dtype).encode())
        digest.update(values.tobytes())
        out[name] = digest.hexdigest()
    return out


def plan_fingerprint(physical) -> str:
    """Stable digest of a physical plan's pipeline decomposition."""
    return hashlib.sha256(physical.describe().encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------
@dataclass
class FlightRecord:
    """One query's compact forensic summary."""

    query_id: str
    sql: str | None
    status: str  # "ok" | "failed"
    started_at: float
    host_ms: float = 0.0
    error_type: str | None = None
    error_message: str | None = None
    #: Resolved strategy + plan identity (engine, devices, fingerprint...).
    strategy: dict = field(default_factory=dict)
    #: Simulated traffic/recovery numbers (sim_ms, pcie_bytes, ...).
    metrics: dict = field(default_factory=dict)
    #: Expected outcome for replay (status, checksums, error type).
    expected: dict = field(default_factory=dict)
    #: Event-log tail for this query (as dicts, oldest first).
    events: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "query_id": self.query_id,
            "sql": self.sql,
            "status": self.status,
            "started_at": round(self.started_at, 6),
            "host_ms": round(self.host_ms, 3),
            "error_type": self.error_type,
            "error_message": self.error_message,
            "strategy": dict(self.strategy),
            "metrics": dict(self.metrics),
            "expected": dict(self.expected),
            "events": list(self.events),
        }


@dataclass
class Flight:
    """In-flight handle returned by :meth:`FlightRecorder.start`."""

    query_id: str
    sql: str | None
    started: float  # perf_counter origin for host_ms
    started_at: float  # wall clock
    strategy: dict = field(default_factory=dict)
    seed: int = 42

    def note(self, **attrs) -> None:
        """Merge strategy/plan facts learned after takeoff (plan
        fingerprint, cache hit, chosen optimizer strategy, ...)."""
        self.strategy.update(attrs)


class FlightRecorder:
    """Bounded per-query flight-record ring + post-mortem bundle writer.

    Parameters
    ----------
    capacity:
        Flight records retained (ring; oldest dropped).
    event_capacity / event_tail:
        Size of the owned :class:`~repro.telemetry.events.EventLog` and
        how many of a query's events each record keeps.
    postmortem_dir:
        Where failure bundles land (created on first write).
    database_recipe:
        Optional replay recipe for the database, e.g.
        ``{"workload": "ssb", "scale_factor": 0.002, "seed": 7}`` or
        ``{"data_dir": "/path"}`` — embedded in bundles so
        :func:`replay_bundle` can rebuild the exact input.
    install:
        Install the owned event log as the process-wide sink
        (:func:`repro.telemetry.events.record_event`); default True.
    """

    def __init__(
        self,
        capacity: int = 256,
        event_capacity: int = 2048,
        event_tail: int = 64,
        postmortem_dir: str = "postmortems",
        database_recipe: dict | None = None,
        install: bool = True,
    ):
        from ..errors import ConfigurationError

        if isinstance(capacity, bool) or not isinstance(capacity, int) or capacity < 1:
            raise ConfigurationError(
                f"flight-record capacity must be an integer >= 1, got {capacity!r}"
            )
        self.events = EventLog(event_capacity)
        self.event_tail = event_tail
        self.postmortem_dir = postmortem_dir
        self.database_recipe = dict(database_recipe) if database_recipe else None
        self._records: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._postmortems = 0
        self._flights = 0
        if install:
            install_log(self.events)

    # ------------------------------------------------------------------
    def uninstall(self) -> None:
        """Detach the owned event log from the process-wide sink."""
        uninstall_log(self.events)

    def __enter__(self) -> "FlightRecorder":
        install_log(self.events)
        return self

    def __exit__(self, *_exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # the per-query lifecycle
    # ------------------------------------------------------------------
    def start(self, query, seed: int = 42, **strategy) -> Flight:
        """Open a flight; ``query`` may be SQL text or a plan object."""
        from .events import new_query_id

        with self._lock:
            self._flights += 1
        return Flight(
            query_id=new_query_id(),
            sql=query if isinstance(query, str) else None,
            started=time.perf_counter(),
            started_at=time.time(),
            strategy=dict(strategy),
            seed=seed,
        )

    def complete(self, flight: Flight, result) -> FlightRecord:
        """Land a successful query: record strategy, traffic, checksum."""
        record = self._base_record(flight, status="ok")
        record.strategy.setdefault("engine", result.engine)
        record.strategy.setdefault("device", result.device_name)
        if result.optimizer is not None:
            record.strategy["optimizer"] = result.optimizer.chosen.describe()
        record.metrics = _result_metrics(result)
        record.expected = {
            "status": "ok",
            "row_count": result.table.num_rows,
            "checksum": table_checksum(result.table),
        }
        self._append(record)
        return record

    def fail(
        self,
        flight: Flight,
        error: BaseException,
        trace=None,
        fault_plan=None,
        retry_policy=None,
        write_bundle: bool = True,
    ) -> FlightRecord:
        """Land a failed query; writes a post-mortem bundle by default.

        Returns the record; the bundle path (when written) is in
        ``record.strategy["bundle"]``."""
        self.events.emit(
            "query.executed",
            query=flight.query_id,
            status="failed",
            error=type(error).__name__,
        )
        record = self._base_record(flight, status="failed")
        record.error_type = type(error).__name__
        record.error_message = str(error)
        record.expected = {"status": "failed", "error_type": record.error_type}
        self._append(record)
        if write_bundle:
            path = self.write_bundle(
                record, trace=trace, fault_plan=fault_plan,
                retry_policy=retry_policy,
            )
            record.strategy["bundle"] = path
        return record

    def _base_record(self, flight: Flight, status: str) -> FlightRecord:
        tail = self.events.events(query=flight.query_id, limit=self.event_tail)
        return FlightRecord(
            query_id=flight.query_id,
            sql=flight.sql,
            status=status,
            started_at=flight.started_at,
            host_ms=(time.perf_counter() - flight.started) * 1e3,
            strategy=dict(flight.strategy),
            events=[event.to_dict() for event in tail],
        )

    def _append(self, record: FlightRecord) -> None:
        with self._lock:
            self._records.append(record)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def records(self, status: str | None = None) -> list[FlightRecord]:
        with self._lock:
            snapshot = list(self._records)
        if status is not None:
            snapshot = [record for record in snapshot if record.status == status]
        return snapshot

    def last(self) -> FlightRecord | None:
        with self._lock:
            return self._records[-1] if self._records else None

    def jsonl(self) -> str:
        lines = [json.dumps(record.to_dict()) for record in self.records()]
        return "\n".join(lines) + ("\n" if lines else "")

    @property
    def postmortems(self) -> int:
        with self._lock:
            return self._postmortems

    def observe_metrics(self, metrics, **labels) -> None:
        """Export flight/event counters into a
        :class:`~repro.telemetry.metrics.MetricsRegistry`."""
        with self._lock:
            flights = self._flights
            postmortems = self._postmortems
            buffered = len(self._records)
        metrics.counter(
            "repro_flights_total", "Queries tracked by the flight recorder",
            **labels,
        ).set_total(flights)
        metrics.counter(
            "repro_postmortems_total", "Post-mortem bundles written",
            **labels,
        ).set_total(postmortems)
        metrics.gauge(
            "repro_flight_records", "Flight records currently buffered",
            **labels,
        ).set(buffered)
        self.events.observe_metrics(metrics, **labels)

    # ------------------------------------------------------------------
    # bundles
    # ------------------------------------------------------------------
    def capture(
        self, record: FlightRecord, name: str | None = None, **extra
    ) -> str:
        """Force a bundle for any record (e.g. a chaos byte-identity
        miss on a query that technically 'succeeded')."""
        return self.write_bundle(record, name=name, **extra)

    def write_bundle(
        self,
        record: FlightRecord,
        trace=None,
        fault_plan=None,
        retry_policy=None,
        name: str | None = None,
        manifest_extra: dict | None = None,
    ) -> str:
        replay = self._replay_recipe(record, retry_policy=retry_policy)
        path = write_postmortem_bundle(
            self.postmortem_dir,
            record=record,
            replay=replay,
            events=self.events.events(query=record.query_id),
            trace=trace,
            fault_plan=fault_plan,
            name=name,
            manifest_extra=manifest_extra,
        )
        with self._lock:
            self._postmortems += 1
        return path

    def _replay_recipe(self, record: FlightRecord, retry_policy=None) -> dict:
        recipe: dict = {"sql": record.sql, "seed": record.strategy.get("seed", 42)}
        if self.database_recipe:
            recipe["database"] = dict(self.database_recipe)
        for key in ("engine", "device", "devices", "partitioning"):
            if key in record.strategy:
                recipe[key] = record.strategy[key]
        if retry_policy is not None:
            recipe["retry_policy"] = {
                "max_retries": retry_policy.max_retries,
                "backoff_base_ms": retry_policy.backoff_base_ms,
                "backoff_cap_ms": retry_policy.backoff_cap_ms,
                "morsel_timeout_ms": retry_policy.morsel_timeout_ms,
            }
        return recipe


def _result_metrics(result) -> dict:
    metrics = {
        "sim_ms": round(result.total_ms, 6),
        "kernel_ms": round(result.kernel_ms, 6),
        "pcie_bytes": int(result.input_bytes + result.output_bytes),
        "global_bytes": int(result.global_memory_bytes),
        "kernel_launches": len(result.profile.kernels),
        "rows": int(result.table.num_rows),
    }
    if result.serving is not None:
        metrics["plan_cache_hit"] = bool(result.serving.plan_cache_hit)
    if result.scaleout is not None:
        metrics["makespan_ms"] = round(result.scaleout.makespan_ms, 6)
        recovery = result.scaleout.recovery
        if recovery is not None and recovery.faulted:
            metrics["recovery"] = {
                "injected": dict(recovery.injected),
                "retries": recovery.retries,
                "redistributed_morsels": recovery.redistributed_morsels,
                "degraded_devices": list(recovery.degraded_devices),
                "waves": recovery.waves,
                "timeouts": recovery.timeouts,
                "host_fallback": recovery.host_fallback,
            }
    return metrics


# ----------------------------------------------------------------------
# the bundle writer (module-level so the chaos suite can call it
# without owning a recorder)
# ----------------------------------------------------------------------
def write_postmortem_bundle(
    directory: str,
    record: FlightRecord,
    replay: dict | None = None,
    events: list | None = None,
    trace=None,
    fault_plan=None,
    name: str | None = None,
    manifest_extra: dict | None = None,
) -> str:
    """Write one self-contained bundle directory; returns its path.

    ``events`` may be :class:`~repro.telemetry.events.Event` objects or
    plain dicts; ``trace`` a :class:`~repro.telemetry.trace.QueryTrace`
    or a pre-built Chrome trace dict; ``fault_plan`` a
    :class:`~repro.faults.FaultPlan` or a plan dict.
    """
    slug = name or f"{time.strftime('%Y%m%dT%H%M%S')}-{record.query_id}"
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", slug)
    path = os.path.join(directory, slug)
    os.makedirs(path, exist_ok=True)
    manifest = {
        "bundle_version": _BUNDLE_VERSION,
        "written_at": round(time.time(), 3),
        "record": record.to_dict(),
        "expected": dict(record.expected),
        "replay": dict(replay) if replay else {},
    }
    if manifest_extra:
        manifest.update(manifest_extra)
    contents = ["manifest.json"]
    if events is not None:
        with open(os.path.join(path, "events.jsonl"), "w", encoding="utf-8") as out:
            for event in events:
                data = event.to_dict() if isinstance(event, Event) else dict(event)
                out.write(json.dumps(data) + "\n")
        contents.append("events.jsonl")
    if trace is not None:
        chrome = trace if isinstance(trace, dict) else trace.chrome_trace()
        with open(os.path.join(path, "trace.json"), "w", encoding="utf-8") as out:
            json.dump(chrome, out)
        contents.append("trace.json")
    if fault_plan is not None:
        text = (
            json.dumps(fault_plan, indent=2)
            if isinstance(fault_plan, dict)
            else fault_plan.to_json()
        )
        with open(os.path.join(path, "fault_plan.json"), "w", encoding="utf-8") as out:
            out.write(text)
        contents.append("fault_plan.json")
    optimizer = record.strategy.get("optimizer_render")
    if optimizer:
        with open(os.path.join(path, "optimizer.txt"), "w", encoding="utf-8") as out:
            out.write(optimizer)
        contents.append("optimizer.txt")
    manifest["contents"] = sorted(set(contents))
    with open(os.path.join(path, BUNDLE_MANIFEST), "w", encoding="utf-8") as out:
        json.dump(manifest, out, indent=2, sort_keys=True)
    return path


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
@dataclass
class ReplayReport:
    """Outcome of re-executing a bundle's query."""

    bundle: str
    matched: bool
    expected_status: str
    observed_status: str
    details: list = field(default_factory=list)

    def render(self) -> str:
        verdict = "MATCH" if self.matched else "MISMATCH"
        lines = [
            f"replay of {self.bundle}: {verdict}",
            f"  expected: {self.expected_status}",
            f"  observed: {self.observed_status}",
        ]
        for detail in self.details:
            lines.append(f"  {detail}")
        return "\n".join(lines)


def replay_bundle(
    bundle: str,
    data_dir: str | None = None,
    device=None,
) -> ReplayReport:
    """Re-execute a post-mortem bundle's query and verify the outcome.

    The database comes from ``--data-dir`` (or the recipe's
    ``data_dir``) via :func:`repro.storage.load_database`, else from
    the embedded workload-generator recipe.  Success bundles must
    reproduce the recorded per-column checksums exactly; failure
    bundles must reproduce the recorded error type.  ``device``
    overrides the recipe's profile (for bundles recorded on a custom
    profile object).
    """
    from ..errors import ConfigurationError, ReproError

    manifest_path = os.path.join(bundle, BUNDLE_MANIFEST)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(
            f"cannot read bundle manifest {manifest_path}: {error}"
        ) from None
    replay = manifest.get("replay", {})
    expected = manifest.get("expected", {})
    sql = replay.get("sql")
    if not sql:
        raise ConfigurationError(
            f"bundle {bundle} has no replayable SQL (plan-object queries "
            "cannot be replayed from a bundle)"
        )
    database = _replay_database(replay, data_dir)
    fault_path = os.path.join(bundle, "fault_plan.json")
    fault_plan = fault_path if os.path.exists(fault_path) else None
    retry_policy = None
    if replay.get("retry_policy"):
        from ..faults import RetryPolicy

        retry_policy = RetryPolicy(**replay["retry_policy"])
    from ..api import Session

    session = Session(
        database,
        device=device if device is not None else replay.get("device", "gtx970"),
        engine=replay.get("engine", "resolution"),
        devices=replay.get("devices", 1),
        partitioning=replay.get("partitioning", "range"),
        fault_plan=fault_plan,
        retry_policy=retry_policy,
    )
    expected_status = expected.get("status", "ok")
    details: list[str] = []
    try:
        result = session.execute(sql, seed=replay.get("seed", 42))
    except ReproError as error:
        observed_status = "failed"
        observed_error = type(error).__name__
        matched = (
            expected_status == "failed"
            and expected.get("error_type") == observed_error
        )
        details.append(f"error: {observed_error}: {error}")
        if expected_status == "failed" and not matched:
            details.append(
                f"expected error type {expected.get('error_type')!r}, "
                f"got {observed_error!r}"
            )
        return ReplayReport(
            bundle=bundle,
            matched=matched,
            expected_status=_describe_expected(expected),
            observed_status=f"failed ({observed_error})",
            details=details,
        )
    observed_status = "ok"
    if expected_status == "failed":
        details.append(
            f"expected failure {expected.get('error_type')!r} but the "
            "query succeeded"
        )
        return ReplayReport(
            bundle=bundle,
            matched=False,
            expected_status=_describe_expected(expected),
            observed_status="ok",
            details=details,
        )
    observed = table_checksum(result.table)
    recorded = expected.get("checksum", {})
    matched = observed == recorded
    if not matched:
        for column in sorted(set(recorded) | set(observed)):
            want, got = recorded.get(column), observed.get(column)
            if want != got:
                details.append(
                    f"column {column!r}: recorded {want}, replayed {got}"
                )
    else:
        details.append(
            f"byte-identical: {result.table.num_rows} rows, "
            f"{len(observed)} column checksums match"
        )
    return ReplayReport(
        bundle=bundle,
        matched=matched,
        expected_status=_describe_expected(expected),
        observed_status=f"ok ({result.table.num_rows} rows)",
        details=details,
    )


def _describe_expected(expected: dict) -> str:
    if expected.get("status") == "failed":
        return f"failed ({expected.get('error_type')})"
    rows = expected.get("row_count")
    return f"ok ({rows} rows)" if rows is not None else "ok"


def _replay_database(replay: dict, data_dir: str | None):
    from ..errors import ConfigurationError

    recipe = replay.get("database") or {}
    directory = data_dir or recipe.get("data_dir")
    if directory:
        from ..storage import load_database

        return load_database(directory)
    workload = recipe.get("workload")
    if workload == "ssb":
        from ..workloads import generate_ssb

        return generate_ssb(
            recipe.get("scale_factor", 0.01),
            seed=recipe.get("seed", 7),
            skew=recipe.get("skew", 0.0),
        )
    if workload == "tpch":
        from ..workloads import generate_tpch

        return generate_tpch(
            recipe.get("scale_factor", 0.01), seed=recipe.get("seed", 7)
        )
    raise ConfigurationError(
        "bundle has no database recipe; pass --data-dir (a database "
        "persisted with 'repro generate') to supply the input"
    )
