"""EXPLAIN ANALYZE: run a query and render the per-pipeline accounting.

This is the human-readable face of the span tracer: the query executes
with tracing enabled, and the per-pipeline spans (rows in/out, kernels
launched, per-level byte volumes, PCIe bytes, simulated vs host
milliseconds) render as a table via
:func:`repro.analysis.report.format_table`, followed by the
compile/cache, placement, and host post-processing outcomes.

The per-pipeline global-memory bytes are sliced exactly from the
device profile, so the table's GLOBAL column always sums to
``Profile.bytes_at(MemoryLevel.GLOBAL)`` — the paper's Figure 9/13
movement numbers stay auditable from this surface.
"""

from __future__ import annotations

from .trace import tracing

__all__ = ["explain_analyze", "render_explain_analyze"]

_COLUMNS = [
    "pipeline", "shape", "rows in", "rows out", "kernels",
    "global KB", "onchip KB", "PCIe KB", "sim ms", "host ms",
]


def explain_analyze(session, query, engine=None, seed: int = 42) -> str:
    """Execute ``query`` on ``session`` with tracing on and render the
    EXPLAIN ANALYZE report."""
    with tracing():
        result = session.execute(query, engine=engine, seed=seed)
    return render_explain_analyze(result)


def render_explain_analyze(result) -> str:
    """Render an executed (traced) :class:`ExecutionResult`."""
    # Imported lazily: analysis pulls in the engine layer, which itself
    # imports repro.telemetry for the tracing hooks.
    from ..analysis.report import format_table

    trace = result.trace
    if trace is None:
        raise ValueError(
            "EXPLAIN ANALYZE needs a traced execution; run the query "
            "with repro.telemetry.tracing() enabled"
        )
    pipelines = trace.spans("pipeline")
    rows = []
    for index, span in enumerate(pipelines):
        attrs = span.attrs
        rows.append(
            [
                f"[{index}]",
                attrs.get("shape", span.name),
                attrs.get("rows_in", 0),
                attrs.get("rows_out", 0),
                attrs.get("kernels", 0),
                round(attrs.get("global_bytes", 0) / 1e3, 1),
                round(attrs.get("onchip_bytes", 0) / 1e3, 1),
                round(attrs.get("pcie_bytes", 0) / 1e3, 1),
                round(attrs.get("sim_ms", 0.0), 4),
                round(span.duration_us / 1e3, 3),
            ]
        )
    title = (
        f"EXPLAIN ANALYZE  ({result.engine} on {result.device_name}; "
        f"{result.table.num_rows} result rows)"
    )
    parts = []
    if rows:
        parts.append(format_table(_COLUMNS, rows, title=title,
                                  float_format="{:.4g}"))
    else:
        parts.append(f"{title}\n(no per-pipeline spans — out-of-core "
                     "streaming execution; totals below cover the whole run)")
    parts.append(_totals(result, pipelines))
    footer = _footer_lines(result, trace)
    if footer:
        parts.append("\n".join(footer))
    return "\n\n".join(parts)


def _totals(result, pipelines) -> str:
    from ..hardware.traffic import MemoryLevel

    pipeline_global = sum(span.attrs.get("global_bytes", 0) for span in pipelines)
    total_global = result.profile.bytes_at(MemoryLevel.GLOBAL)
    line = (
        f"totals: global {total_global / 1e3:.1f} KB  "
        f"onchip {result.onchip_bytes / 1e3:.1f} KB  "
        f"pcie in/out {result.input_bytes / 1e3:.1f}/"
        f"{result.output_bytes / 1e3:.1f} KB  "
        f"kernels {len(result.profile.kernels)}  "
        f"simulated {result.total_ms:.4f} ms "
        f"(kernels {result.kernel_ms:.4f} + transfers {result.transfer_ms:.4f})"
    )
    if pipelines and pipeline_global != total_global:
        # Kernels launched outside the pipeline loop would break the
        # reconciliation the docs promise; surface it rather than hide it.
        line += (
            f"\nWARNING: pipeline global bytes ({pipeline_global}) != "
            f"profile global bytes ({total_global})"
        )
    return line


def _footer_lines(result, trace) -> list[str]:
    lines = []
    compiles = trace.spans("compile")
    if compiles:
        hits = sum(1 for span in compiles if span.attrs.get("cache_hit"))
        lines.append(
            f"kernel cache: {hits}/{len(compiles)} hits"
        )
    serving = result.serving
    if serving is not None:
        lines.append(
            f"plan cache: {'hit' if serving.plan_cache_hit else 'miss'}  "
            f"(plan {serving.plan_ms:.3f} ms, compile {serving.compile_ms:.3f} ms "
            f"⊂ execute {serving.execute_ms:.3f} ms)"
        )
    placement = result.placement
    if placement is not None:
        lines.append(
            f"placement: {placement.hits} hits / {placement.misses} misses  "
            f"saved {placement.hit_bytes / 1e3:.1f} KB PCIe"
            + ("  [out-of-core]" if placement.out_of_core else "")
        )
    host_ops = []
    finalize = trace.spans("finalize")
    if finalize:
        host_ops.append(f"finalize {finalize[0].duration_us / 1e3:.3f} ms")
    if host_ops:
        lines.append("host post-processing: " + ", ".join(host_ops))
    compression = result.compression
    if compression is not None:
        lines.append(f"compression: {compression.summary()}")
        for note in compression.scans:
            lines.append(f"  scan {note}")
    optimizer = getattr(result, "optimizer", None)
    if optimizer is not None:
        lines.append("optimizer:")
        lines.extend("  " + line for line in optimizer.render().splitlines())
    return lines
