"""End-to-end query telemetry: span tracing, metrics, EXPLAIN ANALYZE.

Three surfaces over one substrate:

* **Tracing** (:mod:`repro.telemetry.trace`) — hierarchical spans
  (``query → plan → compile → pipeline[i] → kernel/transfer/placement``)
  carrying host wall-clock and simulated device time plus the
  byte/atomic counters; per query on ``ExecutionResult.trace``;
  exportable as Chrome trace-event JSON (Perfetto) or JSONL.
* **Metrics** (:mod:`repro.telemetry.metrics`) — counters, gauges, and
  log-bucket latency histograms with a Prometheus text exposition
  (``Server.metrics_text()``, ``repro metrics``).
* **EXPLAIN ANALYZE** (:mod:`repro.telemetry.explain`) —
  ``Session.explain(sql, analyze=True)`` / ``repro explain --analyze``:
  run the query, render the per-pipeline movement/time table.

Plus the durable observability layer on top:

* **Event log** (:mod:`repro.telemetry.events`) — a bounded
  thread-safe ring of typed JSON events (admission, planning, cache
  and placement outcomes, retries, faults, optimizer decisions) with
  per-query correlation ids; tail it with ``repro log``.
* **Flight recorder** (:mod:`repro.telemetry.recorder`) — compact
  per-query records; failures (and chaos misses) produce self-contained
  post-mortem bundles replayable byte-for-byte via ``repro replay``.
* **Regression sentinel** (:mod:`repro.telemetry.baseline`) —
  committed perf fingerprints per benchmark query;
  ``repro baseline record`` / ``repro baseline check`` gate CI against
  silent cost-model or executor drift.

Tracing and the event log are off by default and near-zero-cost when
disabled; see ``docs/observability.md``.
"""

from .baseline import (
    DriftReport,
    check_baselines,
    load_baselines,
    record_baselines,
)
from .events import (
    Event,
    EventLog,
    current_query,
    install_log,
    new_query_id,
    query_scope,
    record_event,
    uninstall_log,
)
from .explain import explain_analyze, render_explain_analyze
from .recorder import (
    FlightRecord,
    FlightRecorder,
    ReplayReport,
    replay_bundle,
    table_checksum,
    write_postmortem_bundle,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    parse_prometheus_text,
    render_prometheus,
)
from .trace import (
    QueryTrace,
    Span,
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    tracing,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DriftReport",
    "Event",
    "EventLog",
    "FlightRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "QueryTrace",
    "ReplayReport",
    "Span",
    "Tracer",
    "active_tracer",
    "check_baselines",
    "current_query",
    "disable_tracing",
    "enable_tracing",
    "explain_analyze",
    "install_log",
    "load_baselines",
    "new_query_id",
    "parse_prometheus_text",
    "query_scope",
    "record_baselines",
    "record_event",
    "render_explain_analyze",
    "render_prometheus",
    "replay_bundle",
    "table_checksum",
    "tracing",
    "tracing_enabled",
    "uninstall_log",
    "write_postmortem_bundle",
]
