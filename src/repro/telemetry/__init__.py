"""End-to-end query telemetry: span tracing, metrics, EXPLAIN ANALYZE.

Three surfaces over one substrate:

* **Tracing** (:mod:`repro.telemetry.trace`) — hierarchical spans
  (``query → plan → compile → pipeline[i] → kernel/transfer/placement``)
  carrying host wall-clock and simulated device time plus the
  byte/atomic counters; per query on ``ExecutionResult.trace``;
  exportable as Chrome trace-event JSON (Perfetto) or JSONL.
* **Metrics** (:mod:`repro.telemetry.metrics`) — counters, gauges, and
  log-bucket latency histograms with a Prometheus text exposition
  (``Server.metrics_text()``, ``repro metrics``).
* **EXPLAIN ANALYZE** (:mod:`repro.telemetry.explain`) —
  ``Session.explain(sql, analyze=True)`` / ``repro explain --analyze``:
  run the query, render the per-pipeline movement/time table.

Tracing is off by default and near-zero-cost when disabled; see
``docs/observability.md``.
"""

from .explain import explain_analyze, render_explain_analyze
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    parse_prometheus_text,
    render_prometheus,
)
from .trace import (
    QueryTrace,
    Span,
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    tracing,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "QueryTrace",
    "Span",
    "Tracer",
    "active_tracer",
    "disable_tracing",
    "enable_tracing",
    "explain_analyze",
    "parse_prometheus_text",
    "render_explain_analyze",
    "render_prometheus",
    "tracing",
    "tracing_enabled",
]
