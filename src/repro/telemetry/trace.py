"""Hierarchical span tracing for query execution.

The paper argues entirely from profiler timelines (nvprof/CodeXL);
this module is the reproduction's equivalent of that tooling: a
:class:`Tracer` records a tree of :class:`Span` objects per query —

::

    query
    ├─ plan                      (SQL parse + pipeline extraction)
    ├─ pipeline[0] ...
    │   ├─ compile <kernel>      (codegen; cache_hit attr)
    │   ├─ transfer <col>        (h2d, simulated ms as attr)
    │   ├─ placement <col>       (buffer-pool hit/miss)
    │   └─ kernel <name>         (launch; traffic counters as attrs)
    ├─ pipeline[1] ...
    └─ finalize                  (result assembly, d2h)

Spans carry **host wall-clock** timestamps (``start_us``/``end_us``,
microseconds since the trace epoch) for nesting, plus **simulated
device time** and the :class:`~repro.hardware.traffic.TrafficMeter`
byte/atomic counters as attributes.  A finished trace exports as
Chrome trace-event JSON (loadable in Perfetto / ``about://tracing``)
or as JSONL, one span per line.

Tracing is **off by default** and near-zero-cost when disabled: the
instrumentation points (kernel launch, transfer, placement lookup,
kernel compile) all go through :func:`active_tracer`, which returns
``None`` after a single module-flag check unless tracing was enabled
*and* a tracer was activated on the current thread.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "QueryTrace",
    "Span",
    "Tracer",
    "active_tracer",
    "disable_tracing",
    "enable_tracing",
    "tracing",
    "tracing_enabled",
]

#: Module-level enable flag.  Checked before the thread-local lookup so
#: the disabled fast path is one global read.
_enabled = False
_local = threading.local()


def enable_tracing() -> None:
    """Turn span tracing on process-wide."""
    global _enabled
    _enabled = True


def disable_tracing() -> None:
    """Turn span tracing off process-wide (the default)."""
    global _enabled
    _enabled = False


def tracing_enabled() -> bool:
    return _enabled


@contextlib.contextmanager
def tracing(on: bool = True):
    """Temporarily enable (or disable) tracing::

        with tracing():
            result = session.execute(sql)
        result.trace.chrome_json()
    """
    global _enabled
    previous = _enabled
    _enabled = on
    try:
        yield
    finally:
        _enabled = previous


def active_tracer() -> "Tracer | None":
    """The tracer bound to the current thread, or ``None``.

    This is the hook the instrumentation points call; it is the *only*
    cost tracing adds when disabled.
    """
    if not _enabled:
        return None
    return getattr(_local, "tracer", None)


@dataclass
class Span:
    """One node of a query trace.

    ``start_us``/``end_us`` are host wall-clock microseconds relative
    to the owning tracer's epoch; simulated device milliseconds (when
    the span covers device work) live in ``attrs["sim_ms"]``.
    """

    name: str
    category: str
    start_us: float
    end_us: float | None = None
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    @property
    def sim_ms(self) -> float:
        """Simulated device milliseconds covered by this span (0 for
        pure host phases)."""
        return float(self.attrs.get("sim_ms", 0.0))

    def walk(self):
        """Depth-first pre-order iteration over this span and its
        descendants — document order of the trace."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, category: str) -> list["Span"]:
        return [span for span in self.walk() if span.category == category]

    def to_dict(self, depth: int = 0) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "start_us": round(self.start_us, 3),
            "duration_us": round(self.duration_us, 3),
            "depth": depth,
            "attrs": {key: _jsonable(value) for key, value in self.attrs.items()},
        }


class Tracer:
    """Records one query's span tree.

    The tracer owns a span stack; :meth:`span` pushes a child of the
    current top, :meth:`event` records a zero-duration child (used for
    point events whose host duration is not separately measurable, e.g.
    a simulated kernel launch — its *simulated* duration rides along as
    the ``sim_ms`` attribute).  :meth:`activate` binds the tracer to
    the current thread so the device/codegen instrumentation points
    find it via :func:`active_tracer`.
    """

    def __init__(self, name: str = "query", **attrs):
        self._epoch = time.perf_counter()
        self.root = Span(name=name, category="query", start_us=0.0, attrs=dict(attrs))
        self._stack: list[Span] = [self.root]
        self._finished = False

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    @property
    def current(self) -> Span:
        return self._stack[-1]

    @contextlib.contextmanager
    def span(self, name: str, category: str = "phase", **attrs):
        """Open a nested span for the duration of the ``with`` body.

        Yields the :class:`Span` so the body can attach attributes
        computed while (or after) the work runs.
        """
        span = Span(
            name=name, category=category, start_us=self._now_us(), attrs=dict(attrs)
        )
        self._stack[-1].children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end_us = self._now_us()
            self._stack.pop()

    def event(self, name: str, category: str, sim_ms: float = 0.0, **attrs) -> Span:
        """Record an instantaneous child of the current span."""
        now = self._now_us()
        span = Span(name=name, category=category, start_us=now, end_us=now, attrs=attrs)
        span.attrs["sim_ms"] = sim_ms
        self._stack[-1].children.append(span)
        return span

    @contextlib.contextmanager
    def activate(self):
        """Bind this tracer to the current thread for the scope."""
        previous = getattr(_local, "tracer", None)
        _local.tracer = self
        try:
            yield self
        finally:
            _local.tracer = previous

    def adopt(self, child: "Tracer") -> Span:
        """Graft another tracer's span tree under the current span.

        The scale-out executor gives every device thread its own child
        tracer (thread-locals cannot be shared), then adopts the per-
        device trees into the query tracer once the scatter phase
        joins.  Child timestamps are rebased from the child's epoch to
        this tracer's epoch so the grafted spans sit at their true
        wall-clock position; the child root is closed if still open.
        """
        offset_us = (child._epoch - self._epoch) * 1e6
        if child.root.end_us is None:
            child.root.end_us = child._now_us()
        for span in child.root.walk():
            span.start_us += offset_us
            if span.end_us is not None:
                span.end_us += offset_us
        self._stack[-1].children.append(child.root)
        return child.root

    def finish(self) -> "QueryTrace":
        """Close the root span and package the finished trace."""
        if not self._finished:
            self.root.end_us = self._now_us()
            self._finished = True
        return QueryTrace(root=self.root)


@dataclass
class QueryTrace:
    """A finished per-query span tree, attached as
    ``ExecutionResult.trace`` when tracing is enabled."""

    root: Span

    def timeline(self) -> list[Span]:
        """All spans in document (depth-first, start-time) order."""
        return list(self.root.walk())

    def spans(self, category: str | None = None) -> list[Span]:
        if category is None:
            return self.timeline()
        return self.root.find(category)

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The trace as a Chrome trace-event object (Perfetto-loadable).

        Two tracks are emitted per lane: ``host`` carries the span tree
        on host wall-clock time (complete ``"X"`` events, nesting by
        interval containment), and ``device (simulated)`` lays the
        kernel and transfer events out serially on the simulated device
        clock so the paper's modeled timeline is visible next to the
        host one.

        Scale-out traces carry a ``device_lane`` attribute on each
        per-device subtree (set by the executor's child tracers); such
        subtrees render on their own host + simulated track pair so the
        fleet's concurrency is visible.  Single-device traces have no
        ``device_lane`` anywhere and keep the original two tracks.
        """
        events: list[dict] = [
            _meta("process_name", {"name": "repro"}),
            _meta("thread_name", {"name": "host"}, tid=_HOST_TID),
            _meta("thread_name", {"name": "device (simulated)"}, tid=_DEVICE_TID),
        ]
        named_lanes: set[int] = set()

        def lane_tids(lane: int | None) -> tuple[int, int]:
            """(host tid, simulated tid) for a device lane."""
            if lane is None:
                return _HOST_TID, _DEVICE_TID
            if lane not in named_lanes:
                named_lanes.add(lane)
                host_tid, sim_tid = _LANE_BASE + 2 * lane, _LANE_BASE + 2 * lane + 1
                events.append(
                    _meta("thread_name", {"name": f"device[{lane}] host"}, tid=host_tid)
                )
                events.append(
                    _meta(
                        "thread_name",
                        {"name": f"device[{lane}] (simulated)"},
                        tid=sim_tid,
                    )
                )
            return _LANE_BASE + 2 * lane, _LANE_BASE + 2 * lane + 1

        # (span, lane) in document order; lanes inherit down the tree.
        placed: list[tuple[Span, int | None]] = []

        def place(span: Span, lane: int | None) -> None:
            lane = span.attrs.get("device_lane", lane)
            placed.append((span, lane))
            for child in span.children:
                place(child, lane)

        place(self.root, None)
        for span, lane in placed:
            host_tid, _ = lane_tids(lane)
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": round(span.start_us, 3),
                    "dur": round(span.duration_us, 3),
                    "pid": _PID,
                    "tid": host_tid,
                    "args": {k: _jsonable(v) for k, v in span.attrs.items()},
                }
            )
        # Each lane's simulated clock starts where its subtree starts
        # (device clocks run concurrently); the default lane starts at
        # the query root.  The cursor advances by the *rounded* duration
        # so consecutive exported events abut exactly — rounding ts and
        # dur independently of the cursor can make neighbours appear to
        # overlap by more than the export precision.
        cursors: dict[int | None, float] = {None: round(self.root.start_us, 3)}
        for span, lane in placed:
            if span.category not in ("kernel", "transfer"):
                continue
            if lane not in cursors:
                cursors[lane] = round(span.start_us, 3)
            _, sim_tid = lane_tids(lane)
            dur_us = round(span.sim_ms * 1e3, 3)
            events.append(
                {
                    "name": span.name,
                    "cat": f"sim_{span.category}",
                    "ph": "X",
                    "ts": round(cursors[lane], 3),
                    "dur": dur_us,
                    "pid": _PID,
                    "tid": sim_tid,
                    "args": {k: _jsonable(v) for k, v in span.attrs.items()},
                }
            )
            cursors[lane] += dur_us
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def chrome_json(self, indent: int | None = None) -> str:
        return json.dumps(self.chrome_trace(), indent=indent)

    def jsonl(self) -> str:
        """One JSON object per span, pre-order, with nesting depth."""
        lines = []
        stack = [(self.root, 0)]
        while stack:
            span, depth = stack.pop()
            lines.append(json.dumps(span.to_dict(depth)))
            for child in reversed(span.children):
                stack.append((child, depth + 1))
        return "\n".join(lines) + "\n"


_PID = 1
_HOST_TID = 1
_DEVICE_TID = 2
#: Scale-out device lanes get tid pairs (host, simulated) starting here
#: so they sort below the default host/device tracks.
_LANE_BASE = 10


def _meta(name: str, args: dict, tid: int | None = None) -> dict:
    event = {"name": name, "ph": "M", "pid": _PID, "args": args}
    if tid is not None:
        event["tid"] = tid
    return event


def _jsonable(value):
    """Coerce span attributes (possibly numpy scalars) to JSON types."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)
