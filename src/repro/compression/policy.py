"""Per-column codec selection: the compression policy.

A :class:`CompressionPolicy` decides *how each column crosses the
interconnect*.  In ``"auto"`` mode it samples a few contiguous windows
of the column, scores every applicable codec on the sample, fully
encodes with the winner, and falls back to ``passthrough`` unless the
whole-column ratio clears :data:`MIN_RATIO` — so incompressible data
ships raw and costs nothing extra.  A pinned mode (``"rle"``,
``"forpack"``, ``"delta"``, ``"dictionary"``, ``"passthrough"``)
forces one codec where applicable, with the same passthrough fallback.

Sampling uses *contiguous* windows, never strided ones: striding
destroys exactly the structure (runs, sortedness) that RLE and delta
exploit, and would bias the chooser toward passthrough.

Encodings are cached per ``(column, mode)`` on the column object —
columns are immutable (their arrays are frozen), so the cache is safe
and is shared between the optimizer's cost estimates and execution.

The policy attaches to a device as ``device.compression``; every
transfer point (runtime load, buffer pool, batch streaming, scale-out
scatter) reads it from there.  ``resolve_compression`` is the single
user-input validator: ``"off"``/``None`` disable compression, any
other string must be a valid mode or a ``ConfigurationError`` listing
the valid choices is raised.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .codecs import CODEC_NAMES, EncodedColumn, encode

#: The auto chooser scores candidates on up to this many contiguous
#: windows of this many rows (whole column when small enough).
SAMPLE_WINDOW = 1024
SAMPLE_WINDOWS = 4

#: Whole-column compression ratio a codec must clear; below it the
#: column ships raw (``passthrough``).
MIN_RATIO = 1.1

#: Everything ``compression=`` accepts.  ``"lazy"`` chooses codecs
#: exactly like ``"auto"`` but additionally defers decode: predicates
#: execute directly on wire images and raw columns materialize only on
#: demand (see ``repro.compression.lazy`` / docs/compression.md).
VALID_MODES = ("auto", "lazy", "off") + CODEC_NAMES


def resolve_compression(value) -> "CompressionPolicy | None":
    """Validate a user-facing ``compression=`` value.

    Returns ``None`` (disabled) for ``None``/``"off"``, a policy for
    ``"auto"``/codec names/policy instances, and raises
    :class:`~repro.errors.ConfigurationError` listing the valid
    choices otherwise.
    """
    if value is None:
        return None
    if isinstance(value, CompressionPolicy):
        return value
    if isinstance(value, str):
        if value == "off":
            return None
        if value in VALID_MODES:
            return CompressionPolicy(value)
    raise ConfigurationError(
        f"unknown compression mode {value!r}; "
        f"valid choices: {', '.join(VALID_MODES)}"
    )


def _dictionary_size(column) -> "int | None":
    dictionary = getattr(column, "dictionary", None)
    return len(dictionary) if dictionary is not None else None


def _candidates(column) -> tuple:
    """Codecs worth scoring for a column's physical representation."""
    if getattr(column, "dictionary", None) is not None:
        return ("dictionary", "rle")
    dtype = column.values.dtype
    if dtype == np.bool_:
        return ("boolpack", "forpack", "rle")
    if dtype.kind == "i":
        return ("forpack", "rle", "delta", "cascade")
    if dtype.kind == "u":
        return ("forpack", "rle")
    if dtype.kind == "f":
        # Frame-of-reference over float bit patterns is meaningless and
        # delta needs integer ordering; only run detection applies.
        return ("rle",)
    return ()


def _sample(values: np.ndarray) -> np.ndarray:
    n = len(values)
    if n <= SAMPLE_WINDOW * SAMPLE_WINDOWS * 2:
        return values
    step = (n - SAMPLE_WINDOW) // (SAMPLE_WINDOWS - 1)
    windows = [
        values[index * step : index * step + SAMPLE_WINDOW]
        for index in range(SAMPLE_WINDOWS)
    ]
    return np.concatenate(windows)


class CompressionPolicy:
    """Chooses, caches, and applies per-column wire encodings."""

    def __init__(self, mode: str = "auto"):
        if mode == "off" or mode not in VALID_MODES:
            raise ConfigurationError(
                f"unknown compression mode {mode!r}; "
                f"valid choices: {', '.join(name for name in VALID_MODES if name != 'off')}"
            )
        self.mode = mode
        #: ``"lazy"`` defers decode (late materialization); codec
        #: choice itself is identical to ``"auto"``.
        self.lazy = mode == "lazy"
        #: Per-codec observed decode throughput (bytes / sim ms), fed
        #: by the calibration layer; ``None`` until observed.
        self.decode_throughput: dict[str, float] = {}

    def __repr__(self) -> str:
        return f"CompressionPolicy({self.mode!r})"

    # ------------------------------------------------------------------
    # calibration feedback
    # ------------------------------------------------------------------
    #: EWMA weight for decode-throughput observations.
    THROUGHPUT_ALPHA = 0.3

    def observe_decode(self, codec: str, raw_bytes: int, sim_ms: float) -> None:
        """Fold an observed decode-kernel timing into the per-codec
        throughput estimate the chooser and runtime consult."""
        if sim_ms <= 0 or raw_bytes <= 0:
            return
        rate = raw_bytes / sim_ms
        prior = self.decode_throughput.get(codec)
        if prior is None:
            self.decode_throughput[codec] = rate
        else:
            alpha = self.THROUGHPUT_ALPHA
            self.decode_throughput[codec] = alpha * rate + (1 - alpha) * prior

    def decode_factor(self, codec: str) -> float:
        """Relative decode slowness of ``codec`` vs the fastest codec
        observed so far (1.0 when uncalibrated).  >1 means this codec's
        decode kernels run slow, which tilts decisions toward
        compressed scans and away from eager decode."""
        rate = self.decode_throughput.get(codec)
        if not rate or not self.decode_throughput:
            return 1.0
        best = max(self.decode_throughput.values())
        factor = best / rate if rate else 1.0
        return min(4.0, max(0.25, factor))

    # ------------------------------------------------------------------
    # whole-column encoding (cached)
    # ------------------------------------------------------------------
    def encoded(self, column) -> EncodedColumn:
        """The column's wire encoding under this policy (cached)."""
        cache = column.__dict__.setdefault("_compression_cache", {})
        # "lazy" picks codecs exactly like "auto" — share its cache slot.
        key = "auto" if self.lazy else self.mode
        hit = cache.get(key)
        if hit is None:
            hit = self._encode_full(column)
            cache[key] = hit
        return hit

    def wire_nbytes(self, column) -> int:
        return self.encoded(column).wire_nbytes

    def _encode_full(self, column) -> EncodedColumn:
        values = column.values
        codec = self.choose(column) if self.mode in ("auto", "lazy") else self.mode
        if codec != "passthrough":
            result = encode(values, codec, _dictionary_size(column))
            if result is not None and result.raw_nbytes >= MIN_RATIO * result.wire_nbytes:
                return result
        return encode(values, "passthrough")

    def choose(self, column) -> str:
        """Score candidate codecs on sample windows; best sampled wire
        size wins, ``passthrough`` if nothing beats raw bytes."""
        candidates = _candidates(column)
        if not candidates:
            return "passthrough"
        sample = _sample(column.values)
        dictionary_size = _dictionary_size(column)
        best, best_wire = "passthrough", sample.nbytes
        for codec in candidates:
            result = encode(sample, codec, dictionary_size)
            if result is not None and result.wire_nbytes < best_wire:
                best, best_wire = codec, result.wire_nbytes
        return best

    # ------------------------------------------------------------------
    # block slices (out-of-core streaming; uncached)
    # ------------------------------------------------------------------
    def encode_slice(self, column, start: int, stop: int) -> EncodedColumn:
        """Encode a contiguous block slice with the column's chosen
        codec (exact per-block wire bytes for the streaming path)."""
        codec = self.encoded(column).codec
        values = column.values[start:stop]
        if codec != "passthrough":
            result = encode(values, codec, _dictionary_size(column))
            if result is not None and result.wire_nbytes < values.nbytes:
                return result
        return encode(values, "passthrough")

    # ------------------------------------------------------------------
    # bare arrays (D2H partials: gather / per-block results; uncached)
    # ------------------------------------------------------------------
    def encode_array(self, values: np.ndarray) -> EncodedColumn:
        """Encode a result/partial array for the D2H direction.

        Scores the dtype's candidate codecs on a sample (partials are
        fresh arrays, so nothing is cached) and falls back to
        passthrough unless a codec clears :data:`MIN_RATIO`."""
        values = np.ascontiguousarray(values)

        class _Bare:
            pass

        bare = _Bare()
        bare.values = values
        bare.dictionary = None
        sample = _sample(values)
        best, best_wire = "passthrough", sample.nbytes
        for codec in _candidates(bare):
            scored = encode(sample, codec)
            if scored is not None and scored.wire_nbytes < best_wire:
                best, best_wire = codec, scored.wire_nbytes
        if best != "passthrough":
            result = encode(values, best)
            if result is not None and result.raw_nbytes >= MIN_RATIO * result.wire_nbytes:
                return result
        return encode(values, "passthrough")
