"""Per-column codec selection: the compression policy.

A :class:`CompressionPolicy` decides *how each column crosses the
interconnect*.  In ``"auto"`` mode it samples a few contiguous windows
of the column, scores every applicable codec on the sample, fully
encodes with the winner, and falls back to ``passthrough`` unless the
whole-column ratio clears :data:`MIN_RATIO` — so incompressible data
ships raw and costs nothing extra.  A pinned mode (``"rle"``,
``"forpack"``, ``"delta"``, ``"dictionary"``, ``"passthrough"``)
forces one codec where applicable, with the same passthrough fallback.

Sampling uses *contiguous* windows, never strided ones: striding
destroys exactly the structure (runs, sortedness) that RLE and delta
exploit, and would bias the chooser toward passthrough.

Encodings are cached per ``(column, mode)`` on the column object —
columns are immutable (their arrays are frozen), so the cache is safe
and is shared between the optimizer's cost estimates and execution.

The policy attaches to a device as ``device.compression``; every
transfer point (runtime load, buffer pool, batch streaming, scale-out
scatter) reads it from there.  ``resolve_compression`` is the single
user-input validator: ``"off"``/``None`` disable compression, any
other string must be a valid mode or a ``ConfigurationError`` listing
the valid choices is raised.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .codecs import CODEC_NAMES, EncodedColumn, encode

#: The auto chooser scores candidates on up to this many contiguous
#: windows of this many rows (whole column when small enough).
SAMPLE_WINDOW = 1024
SAMPLE_WINDOWS = 4

#: Whole-column compression ratio a codec must clear; below it the
#: column ships raw (``passthrough``).
MIN_RATIO = 1.1

#: Everything ``compression=`` accepts.
VALID_MODES = ("auto", "off") + CODEC_NAMES


def resolve_compression(value) -> "CompressionPolicy | None":
    """Validate a user-facing ``compression=`` value.

    Returns ``None`` (disabled) for ``None``/``"off"``, a policy for
    ``"auto"``/codec names/policy instances, and raises
    :class:`~repro.errors.ConfigurationError` listing the valid
    choices otherwise.
    """
    if value is None:
        return None
    if isinstance(value, CompressionPolicy):
        return value
    if isinstance(value, str):
        if value == "off":
            return None
        if value in VALID_MODES:
            return CompressionPolicy(value)
    raise ConfigurationError(
        f"unknown compression mode {value!r}; "
        f"valid choices: {', '.join(VALID_MODES)}"
    )


def _dictionary_size(column) -> "int | None":
    dictionary = getattr(column, "dictionary", None)
    return len(dictionary) if dictionary is not None else None


def _candidates(column) -> tuple:
    """Codecs worth scoring for a column's physical representation."""
    if getattr(column, "dictionary", None) is not None:
        return ("dictionary", "rle")
    dtype = column.values.dtype
    if dtype == np.bool_:
        return ("forpack", "rle")
    if dtype.kind == "i":
        return ("forpack", "rle", "delta")
    if dtype.kind == "u":
        return ("forpack", "rle")
    if dtype.kind == "f":
        # Frame-of-reference over float bit patterns is meaningless and
        # delta needs integer ordering; only run detection applies.
        return ("rle",)
    return ()


def _sample(values: np.ndarray) -> np.ndarray:
    n = len(values)
    if n <= SAMPLE_WINDOW * SAMPLE_WINDOWS * 2:
        return values
    step = (n - SAMPLE_WINDOW) // (SAMPLE_WINDOWS - 1)
    windows = [
        values[index * step : index * step + SAMPLE_WINDOW]
        for index in range(SAMPLE_WINDOWS)
    ]
    return np.concatenate(windows)


class CompressionPolicy:
    """Chooses, caches, and applies per-column wire encodings."""

    def __init__(self, mode: str = "auto"):
        if mode == "off" or mode not in VALID_MODES:
            raise ConfigurationError(
                f"unknown compression mode {mode!r}; "
                f"valid choices: {', '.join(name for name in VALID_MODES if name != 'off')}"
            )
        self.mode = mode

    def __repr__(self) -> str:
        return f"CompressionPolicy({self.mode!r})"

    # ------------------------------------------------------------------
    # whole-column encoding (cached)
    # ------------------------------------------------------------------
    def encoded(self, column) -> EncodedColumn:
        """The column's wire encoding under this policy (cached)."""
        cache = column.__dict__.setdefault("_compression_cache", {})
        hit = cache.get(self.mode)
        if hit is None:
            hit = self._encode_full(column)
            cache[self.mode] = hit
        return hit

    def wire_nbytes(self, column) -> int:
        return self.encoded(column).wire_nbytes

    def _encode_full(self, column) -> EncodedColumn:
        values = column.values
        codec = self.choose(column) if self.mode == "auto" else self.mode
        if codec != "passthrough":
            result = encode(values, codec, _dictionary_size(column))
            if result is not None and result.raw_nbytes >= MIN_RATIO * result.wire_nbytes:
                return result
        return encode(values, "passthrough")

    def choose(self, column) -> str:
        """Score candidate codecs on sample windows; best sampled wire
        size wins, ``passthrough`` if nothing beats raw bytes."""
        candidates = _candidates(column)
        if not candidates:
            return "passthrough"
        sample = _sample(column.values)
        dictionary_size = _dictionary_size(column)
        best, best_wire = "passthrough", sample.nbytes
        for codec in candidates:
            result = encode(sample, codec, dictionary_size)
            if result is not None and result.wire_nbytes < best_wire:
                best, best_wire = codec, result.wire_nbytes
        return best

    # ------------------------------------------------------------------
    # block slices (out-of-core streaming; uncached)
    # ------------------------------------------------------------------
    def encode_slice(self, column, start: int, stop: int) -> EncodedColumn:
        """Encode a contiguous block slice with the column's chosen
        codec (exact per-block wire bytes for the streaming path)."""
        codec = self.encoded(column).codec
        values = column.values[start:stop]
        if codec != "passthrough":
            result = encode(values, codec, _dictionary_size(column))
            if result is not None and result.wire_nbytes < values.nbytes:
                return result
        return encode(values, "passthrough")
