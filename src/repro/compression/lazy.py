"""Late materialization: predicates evaluated directly on wire images.

PR 9 shipped base columns compressed but paid a full decode kernel
before the first predicate ran — a global-memory round trip (wire read
+ raw write + raw re-read) for every column of every query.  This
module elides that materialization the way the paper elides
inter-operator materialization: the *scan operates on the compressed
representation itself*, and raw bytes only ever exist for the
positions a query actually needs.

Three compressed-scan strategies, picked per predicate conjunct:

* ``rle-runs``   — evaluate the predicate once per *run* instead of
  once per row; selectivity testing is amortized over run lengths and
  the raw column never touches global memory.
* ``dict-lookup`` — pre-evaluate the predicate over the (tiny) code
  domain into an on-chip lookup table; the scan degenerates to one
  table probe per packed code.
* ``block-skip`` — for frame-of-reference packed blocks, test the
  per-block ``[min, max]`` interval against the predicate first and
  unpack only *mixed* blocks; blocks that are provably all-true or
  all-false never leave the wire image.

Anything without a cheaper strategy falls back to ``unpack-scan``:
unpack into registers and test, charging packed bytes instead of the
decode round trip.  Columns needed *downstream* of the selection
materialize only the selected positions (a gather-decode fused into
the scan kernel); a per-column :class:`LazyColumn` tracks cumulative
partial traffic and flips to a real full decode when repeated gathers
would exceed it.

Every strategy computes **exactly** the flags the decoded predicate
would: runs/codes/blocks are genuine alternate representations of the
same bytes (the codec round-trip contract), so results stay
byte-identical on every engine, device count, and codec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..expressions.eval import evaluate
from ..expressions.expr import Between, ColumnRef, Comparison, Expr, InList, Literal, Not
from .codecs import EncodedColumn, _from_storage, _from_u64

#: Rows per skippable block (matches the cascade codec's block size so
#: cascade blocks are independently decodable at exactly this grain).
LAZY_BLOCK = 4096

#: Modeled per-block metadata shipped with packed codecs for skipping:
#: min + max (8 bytes each) — the price of being able to skip at all.
BLOCK_META_BYTES = 16

#: Codecs whose wire image a compressed scan can consume directly.
SCANNABLE_CODECS = frozenset(
    {"rle", "dictionary", "forpack", "delta", "cascade", "boolpack"}
)

#: Largest dictionary/code domain we will materialize as an on-chip LUT.
MAX_LUT_DOMAIN = 1 << 20


@dataclass
class LazyColumn:
    """Per-query lazy-decode state for one wire-resident column."""

    label: str
    encoded: EncodedColumn
    #: Frozen ground-truth array (the decoded values; computation is
    #: free in the simulation — only *charging* is modeled).
    values: np.ndarray
    #: True once the raw column materialized in device global memory.
    decoded: bool = False
    #: Cumulative modeled bytes spent on partial gather-decodes.
    partial_bytes: int = 0
    #: True once at least one predicate consumed the column compressed.
    scanned: bool = False

    @property
    def n(self) -> int:
        return self.encoded.length

    @property
    def codec(self) -> str:
        return self.encoded.codec

    @property
    def itemsize(self) -> int:
        return np.dtype(self.encoded.dtype).itemsize

    @property
    def raw_nbytes(self) -> int:
        return self.encoded.raw_nbytes

    @property
    def packed_nbytes(self) -> int:
        """Wire payload bytes (parts only, header excluded)."""
        return sum(part.nbytes for part in self.encoded.parts.values())

    @property
    def decode_bytes(self) -> int:
        """GLOBAL traffic a full decode kernel would charge (wire+raw)."""
        return self.encoded.wire_nbytes + self.encoded.raw_nbytes

    def block_extents(self):
        """Per-LAZY_BLOCK ``(mins, maxs)`` of the integer storage values."""
        cached = self.__dict__.get("_extents")
        if cached is None:
            stored = self.values
            if stored.dtype == np.bool_:
                stored = stored.view(np.uint8)
            if stored.dtype.kind not in "iu" or len(stored) == 0:
                cached = (None, None)
            else:
                starts = np.arange(0, len(stored), LAZY_BLOCK)
                cached = (
                    np.minimum.reduceat(stored, starts),
                    np.maximum.reduceat(stored, starts),
                )
            self.__dict__["_extents"] = cached
        return cached


# ----------------------------------------------------------------------
# predicate analysis
# ----------------------------------------------------------------------
def flatten_conjuncts(expr: Expr) -> list[Expr]:
    """Split a top-level AND into its conjuncts (one element otherwise)."""
    from ..expressions.expr import BooleanOp

    if isinstance(expr, BooleanOp) and expr.op == "and":
        flat: list[Expr] = []
        for operand in expr.operands:
            flat.extend(flatten_conjuncts(operand))
        return flat
    return [expr]


def _literal_number(expr: Expr):
    if isinstance(expr, Literal) and isinstance(expr.value, (int, float, np.number)):
        return int(expr.value) if isinstance(expr.value, bool) else expr.value
    return None


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


def interval_analyzer(expr: Expr):
    """Return ``fn(lo, hi) -> 'all' | 'none' | 'mixed'`` deciding the
    predicate over a value interval, or ``None`` if the shape is not
    interval-sound (then every block is treated as mixed).

    Only integer intervals are analyzed — float min/max skipping is
    NaN-unsound, so float columns never take the block-skip strategy.
    """
    if isinstance(expr, Not):
        inner = interval_analyzer(expr.operand)
        if inner is None:
            return None
        flip = {"all": "none", "none": "all", "mixed": "mixed"}
        return lambda lo, hi: flip[inner(lo, hi)]
    if isinstance(expr, Comparison):
        op, left, right = expr.op, expr.left, expr.right
        if isinstance(right, ColumnRef) and not isinstance(left, ColumnRef):
            left, right, op = right, left, _FLIPPED.get(op)
        value = _literal_number(right)
        if not isinstance(left, ColumnRef) or value is None or op is None:
            return None

        def test(lo, hi, op=op, value=value):
            if op == "==":
                if value < lo or value > hi:
                    return "none"
                return "all" if lo == hi == value else "mixed"
            if op == "!=":
                if value < lo or value > hi:
                    return "all"
                return "none" if lo == hi == value else "mixed"
            compare = {
                "<": lambda x: x < value,
                "<=": lambda x: x <= value,
                ">": lambda x: x > value,
                ">=": lambda x: x >= value,
            }[op]
            low, high = compare(lo), compare(hi)
            if low and high:
                return "all"
            if not low and not high:
                return "none"
            return "mixed"

        return test
    if isinstance(expr, Between):
        if not isinstance(expr.operand, ColumnRef):
            return None
        low = _literal_number(expr.low)
        high = _literal_number(expr.high)
        if low is None or high is None:
            return None

        def test(lo, hi, low=low, high=high):
            if lo >= low and hi <= high:
                return "all"
            if hi < low or lo > high:
                return "none"
            return "mixed"

        return test
    if isinstance(expr, InList):
        if not isinstance(expr.operand, ColumnRef):
            return None
        options = [_literal_number(option) for option in expr.options]
        if any(option is None for option in options):
            return None
        chosen = set(options)

        def test(lo, hi, chosen=chosen):
            inside = [option for option in chosen if lo <= option <= hi]
            if not inside:
                return "none"
            span = hi - lo + 1
            if span <= len(chosen) and all(v in chosen for v in range(lo, hi + 1)):
                return "all"
            return "mixed"

        return test
    return None


# ----------------------------------------------------------------------
# compressed-scan strategies
# ----------------------------------------------------------------------
@dataclass
class ScanPlan:
    """One predicate conjunct executed directly on a wire image."""

    strategy: str
    column: str
    #: Modeled GLOBAL bytes the fused scan reads from the wire image.
    read_bytes: int
    #: Modeled instruction count of the fused scan.
    instructions: int
    #: On-chip traffic (LUT probes for dict-lookup).
    onchip_bytes: int = 0
    blocks: int = 0
    blocks_skipped: int = 0
    #: Exact selection flags over the full column (computed from the
    #: compressed representation, byte-identical to the decoded eval).
    flags: np.ndarray = field(default=None, repr=False)
    detail: str = ""

    def note(self, decode_bytes: int) -> str:
        return (
            f"{self.column}: {self.strategy} {self.detail} "
            f"~{self.read_bytes / 1e3:.1f}KB vs decode "
            f"{decode_bytes / 1e3:.1f}KB"
        )


def _scan_rle(state: LazyColumn, conjunct: Expr, name: str) -> ScanPlan:
    run_values = state.encoded.parts["values"]
    lengths = state.encoded.parts["lengths"]
    typed = _from_storage(run_values, state.encoded.dtype)
    run_flags = np.asarray(evaluate(conjunct, {name: typed}), dtype=bool)
    flags = np.repeat(run_flags, lengths.astype(np.int64))
    runs = len(run_values)
    return ScanPlan(
        strategy="rle-runs",
        column=name,
        read_bytes=run_values.nbytes + lengths.nbytes,
        instructions=conjunct.size() * runs + state.n,
        flags=flags,
        detail=f"({runs} runs)",
    )


def _scan_dictionary(state: LazyColumn, conjunct: Expr, name: str) -> ScanPlan | None:
    width = int(state.encoded.meta.get("width", 0))
    domain = 1 << width
    if domain > MAX_LUT_DOMAIN:
        return None
    codes = np.arange(domain, dtype=np.uint64)
    lut = np.asarray(
        evaluate(conjunct, {name: _from_u64(codes, state.encoded.dtype)}), dtype=bool
    )
    flags = lut[state.values.astype(np.int64, copy=False)]
    return ScanPlan(
        strategy="dict-lookup",
        column=name,
        read_bytes=state.packed_nbytes,
        instructions=conjunct.size() * domain + state.n,
        onchip_bytes=state.n,
        flags=flags,
        detail=f"({domain}-entry LUT)",
    )


def _scan_block_skip(state: LazyColumn, conjunct: Expr, name: str) -> ScanPlan | None:
    test = interval_analyzer(conjunct)
    if test is None:
        return None
    los, his = state.block_extents()
    if los is None:
        return None
    n = state.n
    values = state.values
    flags = np.empty(n, dtype=bool)
    if state.codec == "cascade":
        widths = state.encoded.parts["widths"].astype(np.int64)
    else:
        widths = None
    width = int(state.encoded.meta.get("width", 0))
    survivor_rows = 0
    survivor_bits = 0
    skipped = 0
    blocks = len(los)
    for index in range(blocks):
        start = index * LAZY_BLOCK
        stop = min(start + LAZY_BLOCK, n)
        verdict = test(int(los[index]), int(his[index]))
        if verdict == "all":
            flags[start:stop] = True
            skipped += 1
        elif verdict == "none":
            flags[start:stop] = False
            skipped += 1
        else:
            flags[start:stop] = np.asarray(
                evaluate(conjunct, {name: values[start:stop]}), dtype=bool
            )
            rows = stop - start
            survivor_rows += rows
            survivor_bits += rows * (int(widths[index]) if widths is not None else width)
    read_bytes = blocks * BLOCK_META_BYTES + (survivor_bits + 7) // 8
    return ScanPlan(
        strategy="block-skip",
        column=name,
        read_bytes=read_bytes,
        instructions=2 * blocks + (2 + conjunct.size()) * survivor_rows,
        blocks=blocks,
        blocks_skipped=skipped,
        flags=flags,
        detail=f"({skipped}/{blocks} blocks skipped)",
    )


def _scan_unpack(state: LazyColumn, conjunct: Expr, name: str) -> ScanPlan:
    flags = np.asarray(evaluate(conjunct, {name: state.values}), dtype=bool)
    return ScanPlan(
        strategy="unpack-scan",
        column=name,
        read_bytes=state.packed_nbytes,
        instructions=(2 + conjunct.size()) * state.n,
        flags=flags,
    )


def plan_scan(state: LazyColumn, conjunct: Expr, name: str) -> ScanPlan | None:
    """Build the cheapest compressed-scan plan for one single-column
    conjunct, or ``None`` when the codec cannot be scanned in place."""
    codec = state.codec
    if codec not in SCANNABLE_CODECS:
        return None
    if codec == "rle":
        return _scan_rle(state, conjunct, name)
    if codec == "dictionary":
        plan = _scan_dictionary(state, conjunct, name)
        return plan if plan is not None else _scan_unpack(state, conjunct, name)
    if codec in ("forpack", "cascade"):
        plan = _scan_block_skip(state, conjunct, name)
        return plan if plan is not None else _scan_unpack(state, conjunct, name)
    # delta needs the sequential prefix sum (no random block access);
    # boolpack has no exploitable order — both unpack in registers.
    return _scan_unpack(state, conjunct, name)


# ----------------------------------------------------------------------
# partial materialization (gather-decode)
# ----------------------------------------------------------------------
def gather_cost(state: LazyColumn, rows: int):
    """Modeled ``(read_bytes, write_bytes, instructions)`` of gathering
    ``rows`` selected values out of the wire image, or ``None`` when
    the codec cannot be randomly accessed (delta's prefix dependency)
    and only a full decode will do."""
    if state.codec == "delta":
        return None
    rows = int(min(rows, state.n))
    write_bytes = rows * state.itemsize
    read_bytes = state.packed_nbytes
    if state.codec == "cascade":
        read_bytes += len(state.encoded.parts["widths"]) * BLOCK_META_BYTES
    return read_bytes, write_bytes, 2 * rows
