"""Generated decompression-kernel sources (for EXPLAIN inspection).

The simulated device charges decode work through a
:class:`~repro.hardware.traffic.TrafficMeter` (GLOBAL read of the wire
bytes, GLOBAL write of the raw bytes) — the honest cost of compressed
transfer.  Like the relational kernels, the charged launch keeps a
generated source listing so ``EXPLAIN ANALYZE`` can show what ran.
"""

from __future__ import annotations


def decode_kernel_source(
    name: str, codec: str, dtype: str, length: int, wire_nbytes: int, raw_nbytes: int
) -> str:
    """Source listing for one column/block decompression kernel."""
    body = {
        "rle": (
            "    # expand (run value, run length) pairs\n"
            "    offsets = exclusive_scan(lengths)  # one thread per run\n"
            "    out[offsets[r] : offsets[r] + lengths[r]] = run_values[r]"
        ),
        "forpack": (
            "    # frame-of-reference unpack: width bits per value\n"
            "    delta = extract_bits(wire, i * width, width)\n"
            "    out[i] = reference + delta"
        ),
        "delta": (
            "    # unpack packed differences, then prefix-sum\n"
            "    diff = reference + extract_bits(wire, i * width, width)\n"
            "    out[i] = first + inclusive_scan(diff)[i]"
        ),
        "dictionary": (
            "    # unpack dictionary codes: width bits per code\n"
            "    out[i] = extract_bits(wire, i * width, width)"
        ),
    }.get(codec, "    out[i] = wire[i]  # passthrough")
    return (
        f"def {name.replace('.', '_')}(wire, out):\n"
        f"    # {codec} decode: {wire_nbytes} wire B -> {raw_nbytes} raw B "
        f"({length} x {dtype})\n"
        f"    # traffic: GLOBAL read {wire_nbytes} B, GLOBAL write {raw_nbytes} B\n"
        f"{body}\n"
    )


def encode_kernel_source(
    name: str, codec: str, dtype: str, length: int, wire_nbytes: int, raw_nbytes: int
) -> str:
    """Source listing for a device-side result-encode kernel (D2H)."""
    return (
        f"def {name.replace('.', '_')}(values, wire):\n"
        f"    # {codec} encode: {raw_nbytes} raw B -> {wire_nbytes} wire B "
        f"({length} x {dtype})\n"
        f"    # traffic: GLOBAL read {raw_nbytes} B, GLOBAL write {wire_nbytes} B\n"
        f"    wire[i] = pack({codec!r}, values[i])\n"
    )


def compressed_scan_source(
    name: str, strategy: str, codec: str, read_bytes: int, instructions: int,
    detail: str = "",
) -> str:
    """Source listing for a fused compressed-scan stage (predicate
    evaluated directly on the wire image — no raw materialization)."""
    body = {
        "rle-runs": (
            "    # one predicate evaluation per run, amortized over lengths\n"
            "    run_flag = predicate(run_values[r])\n"
            "    flags[offsets[r] : offsets[r] + lengths[r]] = run_flag"
        ),
        "dict-lookup": (
            "    # predicate pre-evaluated over the code domain (on-chip LUT)\n"
            "    lut[c] = predicate(dictionary_value(c))  # once per code\n"
            "    flags[i] = lut[extract_bits(wire, i * width, width)]"
        ),
        "block-skip": (
            "    # test per-block [min, max] against the predicate first\n"
            "    if block_all_true: flags[block] = True      # skip unpack\n"
            "    elif block_all_false: flags[block] = False  # skip unpack\n"
            "    else: flags[i] = predicate(reference + extract_bits(...))"
        ),
        "unpack-scan": (
            "    # unpack into registers and test; raw never hits global\n"
            "    flags[i] = predicate(unpack(wire, i))"
        ),
    }.get(strategy, "    flags[i] = predicate(unpack(wire, i))")
    header = f"    # {strategy} over {codec} wire image"
    if detail:
        header += f" {detail}"
    return (
        f"def {name.replace('.', '_')}(wire, flags):\n"
        f"{header}\n"
        f"    # traffic: GLOBAL read {read_bytes} B, {instructions} instructions\n"
        f"{body}\n"
    )


def gather_decode_source(
    name: str, codec: str, dtype: str, rows: int, read_bytes: int, write_bytes: int
) -> str:
    """Source listing for a partial (late) materialization: decode only
    the selected positions of a wire-resident column."""
    return (
        f"def {name.replace('.', '_')}(wire, positions, out):\n"
        f"    # {codec} gather-decode: {rows} selected x {dtype} "
        f"({read_bytes} wire B read -> {write_bytes} raw B written)\n"
        f"    # traffic: GLOBAL read {read_bytes} B, GLOBAL write {write_bytes} B\n"
        f"    out[t] = unpack({codec!r}, wire, positions[t])\n"
    )
