"""Compressed columnar storage & compression-aware link transfer.

See :mod:`repro.compression.codecs` for the wire formats,
:mod:`repro.compression.policy` for the per-column auto chooser,
:mod:`repro.compression.lazy` for late materialization (predicates on
wire images), and ``docs/compression.md`` for how wire bytes are
accounted end to end.
"""

from .codecs import (
    CODEC_NAMES,
    WIRE_HEADER_BYTES,
    EncodedColumn,
    decode,
    encode,
)
from .kernels import (
    compressed_scan_source,
    decode_kernel_source,
    encode_kernel_source,
    gather_decode_source,
)
from .lazy import (
    LAZY_BLOCK,
    SCANNABLE_CODECS,
    LazyColumn,
    ScanPlan,
    flatten_conjuncts,
    gather_cost,
    interval_analyzer,
    plan_scan,
)
from .policy import (
    MIN_RATIO,
    VALID_MODES,
    CompressionPolicy,
    resolve_compression,
)
from .stats import CompressionStats, observe_compression_metrics

__all__ = [
    "CODEC_NAMES",
    "WIRE_HEADER_BYTES",
    "EncodedColumn",
    "decode",
    "encode",
    "compressed_scan_source",
    "decode_kernel_source",
    "encode_kernel_source",
    "gather_decode_source",
    "LAZY_BLOCK",
    "SCANNABLE_CODECS",
    "LazyColumn",
    "ScanPlan",
    "flatten_conjuncts",
    "gather_cost",
    "interval_analyzer",
    "plan_scan",
    "MIN_RATIO",
    "VALID_MODES",
    "CompressionPolicy",
    "resolve_compression",
    "CompressionStats",
    "observe_compression_metrics",
]
