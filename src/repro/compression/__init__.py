"""Compressed columnar storage & compression-aware link transfer.

See :mod:`repro.compression.codecs` for the wire formats,
:mod:`repro.compression.policy` for the per-column auto chooser, and
``docs/compression.md`` for how wire bytes are accounted end to end.
"""

from .codecs import (
    CODEC_NAMES,
    WIRE_HEADER_BYTES,
    EncodedColumn,
    decode,
    encode,
)
from .kernels import decode_kernel_source, encode_kernel_source
from .policy import (
    MIN_RATIO,
    VALID_MODES,
    CompressionPolicy,
    resolve_compression,
)
from .stats import CompressionStats, observe_compression_metrics

__all__ = [
    "CODEC_NAMES",
    "WIRE_HEADER_BYTES",
    "EncodedColumn",
    "decode",
    "encode",
    "decode_kernel_source",
    "encode_kernel_source",
    "MIN_RATIO",
    "VALID_MODES",
    "CompressionPolicy",
    "resolve_compression",
    "CompressionStats",
    "observe_compression_metrics",
]
