"""Per-query compression accounting and Prometheus export."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CompressionStats:
    """What compression did to one query's link traffic.

    ``raw_bytes``/``wire_bytes`` count transfers that actually crossed
    the interconnect (placement hits contribute decode kernels but no
    wire bytes).  ``columns`` counts transferred columns/blocks,
    ``encoded_columns`` the subset that shipped in a non-passthrough
    codec, and ``codecs`` the per-codec breakdown.
    """

    raw_bytes: int = 0
    wire_bytes: int = 0
    columns: int = 0
    encoded_columns: int = 0
    decode_kernels: int = 0
    encode_kernels: int = 0
    codecs: dict = field(default_factory=dict)
    #: Late materialization (``compression="lazy"``): predicate
    #: conjuncts executed directly on wire images, block-skip
    #: accounting, columns whose raw form never hit global memory, and
    #: modeled bytes of partial (selected-positions-only) decodes.
    compressed_scans: int = 0
    scan_blocks: int = 0
    scan_blocks_skipped: int = 0
    deferred_columns: int = 0
    partial_decode_bytes: int = 0
    #: D2H partials shipped as wire images decode on the host; these
    #: bytes never charge a device kernel.
    host_decode_bytes: int = 0
    #: Human-readable per-conjunct scan decisions (for EXPLAIN).
    scans: list = field(default_factory=list)
    #: Observed decode-kernel cost by codec (calibration feedback).
    decode_ms_by_codec: dict = field(default_factory=dict)
    decode_bytes_by_codec: dict = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        return self.raw_bytes / self.wire_bytes if self.wire_bytes else 1.0

    @property
    def saved_bytes(self) -> int:
        return self.raw_bytes - self.wire_bytes

    def record(self, raw_nbytes: int, wire_nbytes: int, codec: str) -> None:
        self.raw_bytes += int(raw_nbytes)
        self.wire_bytes += int(wire_nbytes)
        self.columns += 1
        name = codec or "passthrough"
        if name != "passthrough":
            self.encoded_columns += 1
        self.codecs[name] = self.codecs.get(name, 0) + 1

    def record_decode_cost(self, codec: str, raw_nbytes: int, sim_ms: float) -> None:
        name = codec or "passthrough"
        self.decode_ms_by_codec[name] = (
            self.decode_ms_by_codec.get(name, 0.0) + float(sim_ms)
        )
        self.decode_bytes_by_codec[name] = (
            self.decode_bytes_by_codec.get(name, 0) + int(raw_nbytes)
        )

    def merge(self, other: "CompressionStats") -> None:
        self.raw_bytes += other.raw_bytes
        self.wire_bytes += other.wire_bytes
        self.columns += other.columns
        self.encoded_columns += other.encoded_columns
        self.decode_kernels += other.decode_kernels
        self.encode_kernels += other.encode_kernels
        self.compressed_scans += other.compressed_scans
        self.scan_blocks += other.scan_blocks
        self.scan_blocks_skipped += other.scan_blocks_skipped
        self.deferred_columns += other.deferred_columns
        self.partial_decode_bytes += other.partial_decode_bytes
        self.host_decode_bytes += other.host_decode_bytes
        self.scans.extend(other.scans)
        for name, count in other.codecs.items():
            self.codecs[name] = self.codecs.get(name, 0) + count
        for name, ms in other.decode_ms_by_codec.items():
            self.decode_ms_by_codec[name] = (
                self.decode_ms_by_codec.get(name, 0.0) + ms
            )
        for name, nbytes in other.decode_bytes_by_codec.items():
            self.decode_bytes_by_codec[name] = (
                self.decode_bytes_by_codec.get(name, 0) + nbytes
            )

    @classmethod
    def aggregate(cls, items) -> "CompressionStats | None":
        merged = None
        for item in items:
            if item is None:
                continue
            if merged is None:
                merged = cls()
            merged.merge(item)
        return merged

    def summary(self) -> str:
        codecs = ", ".join(
            f"{name}x{count}" for name, count in sorted(self.codecs.items())
        )
        text = (
            f"wire {self.wire_bytes:,}B / raw {self.raw_bytes:,}B "
            f"({self.ratio:.2f}x, {self.encoded_columns}/{self.columns} "
            f"columns encoded; {codecs})"
        )
        if self.compressed_scans:
            text += (
                f"; {self.compressed_scans} compressed scans "
                f"({self.scan_blocks_skipped}/{self.scan_blocks} blocks "
                f"skipped), {self.deferred_columns} decodes deferred"
            )
        return text


def observe_compression_metrics(metrics, stats: CompressionStats) -> None:
    """Export one query's compression stats to a metrics registry."""
    if metrics is None or stats is None:
        return
    metrics.counter(
        "repro_compression_raw_bytes_total",
        "Pre-compression bytes of link transfers",
    ).inc(stats.raw_bytes)
    metrics.counter(
        "repro_compression_wire_bytes_total",
        "Bytes actually moved over the interconnect",
    ).inc(stats.wire_bytes)
    metrics.counter(
        "repro_compression_saved_bytes_total",
        "Link bytes avoided by columnar compression",
    ).inc(max(stats.saved_bytes, 0))
    metrics.histogram(
        "repro_compression_ratio",
        "Per-query raw/wire compression ratio",
        buckets=(1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0),
    ).observe(stats.ratio)
    metrics.counter(
        "repro_compression_decode_kernels_total",
        "Decompression kernels launched on-device",
    ).inc(stats.decode_kernels)
    metrics.counter(
        "repro_compression_compressed_scans_total",
        "Predicate conjuncts executed directly on wire images",
    ).inc(stats.compressed_scans)
    metrics.counter(
        "repro_compression_scan_blocks_skipped_total",
        "Packed blocks skipped via min/max tests during compressed scans",
    ).inc(stats.scan_blocks_skipped)
    metrics.counter(
        "repro_compression_deferred_decodes_total",
        "Columns whose raw form never materialized in device memory",
    ).inc(stats.deferred_columns)
    metrics.counter(
        "repro_compression_partial_decode_bytes_total",
        "Raw bytes materialized by selected-positions-only decodes",
    ).inc(stats.partial_decode_bytes)
    metrics.counter(
        "repro_compression_host_decode_bytes_total",
        "Raw bytes of D2H partials decoded host-side",
    ).inc(stats.host_decode_bytes)
    for codec, count in stats.codecs.items():
        metrics.counter(
            "repro_compression_columns_total",
            "Columns transferred, by wire codec",
            codec=codec,
        ).inc(count)
