"""Lightweight columnar codecs for compression-aware transfer.

HorseQC's thesis is that coprocessor query processing is bound by data
movement; the single largest movement is the host->device copy of base
columns over PCIe.  This module provides the byte-exact codecs the
transfer layer uses to shrink that copy:

* ``passthrough`` — raw bytes, zero overhead (``wire == raw``, no
  header, no decode kernel).  The fallback for incompressible data.
* ``rle``         — run-length encoding: ``(run value, run length)``
  pairs with lengths stored in the smallest unsigned dtype that fits
  the longest run.
* ``forpack``     — frame-of-reference bit packing for integers: store
  the column minimum once and pack ``value - min`` into
  ``ceil(log2(span + 1))`` bits per value.
* ``delta``       — first value plus frame-of-reference-packed
  consecutive differences; tiny for sorted or near-sorted keys.
* ``dictionary``  — bit-packed dictionary codes for STRING columns.
  The storage layer already dictionary-encodes strings (the column
  holds int32 codes); this codec packs those codes into
  ``ceil(log2(cardinality))`` bits.  The dictionary itself is host
  catalog metadata and never crosses the link.
* ``boolpack``    — one bit per value for boolean / null-mask columns
  (eight-fold reduction before headers; the classic bitmap layout).
* ``cascade``     — delta→forpack cascade: per-block (4096 rows)
  frame-of-reference deltas with a *per-block* bit width, so locally
  sorted regions pack tighter than one global delta width allows.

Every codec round-trips **byte-identically**.  Floats are encoded
through their unsigned-integer bit views so ``-0.0 == 0.0`` cannot
merge RLE runs and ``NaN != NaN`` cannot split them; the decoded array
reproduces the exact input bit pattern, NaN payloads included.

Wire format: a non-passthrough encoded column is a fixed 16-byte
header (codec id, bit width, row count) followed by the concatenated
part buffers.  :attr:`EncodedColumn.wire_nbytes` is the exact byte
count charged to the :class:`~repro.hardware.interconnect.Interconnect`
and :attr:`EncodedColumn.wire_array` is the materialized transport
buffer (so pooled resident columns genuinely occupy their compressed
footprint on the device).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError

#: Fixed per-column wire header: codec id (1 byte), reserved (1),
#: bit width (2), row count (8), reserved (4).
WIRE_HEADER_BYTES = 16

#: Every codec this module implements, in wire-id order.  New codecs
#: append (wire ids are positional and must stay stable).
CODEC_NAMES = (
    "passthrough", "rle", "forpack", "delta", "dictionary",
    "boolpack", "cascade",
)

_CODEC_IDS = {name: index for index, name in enumerate(CODEC_NAMES)}

#: Rows per cascade block: large enough to amortize the 17-byte
#: per-block metadata, small enough to adapt the bit width locally.
CASCADE_BLOCK = 4096


@dataclass
class EncodedColumn:
    """One column (or contiguous column slice) in wire representation."""

    codec: str
    #: NumPy dtype of the decoded values (the column's physical dtype).
    dtype: np.dtype
    #: Number of rows encoded.
    length: int
    #: Decoded size in bytes — what materializes in device memory.
    raw_nbytes: int
    #: Encoded part buffers (codec-specific).
    parts: dict = field(repr=False)
    #: Codec-specific scalars (reference value, bit width, first value).
    meta: dict = field(default_factory=dict)

    @property
    def wire_nbytes(self) -> int:
        """Exact bytes that cross the interconnect for this column."""
        if self.codec == "passthrough":
            return self.raw_nbytes
        return WIRE_HEADER_BYTES + sum(part.nbytes for part in self.parts.values())

    @property
    def ratio(self) -> float:
        wire = self.wire_nbytes
        return self.raw_nbytes / wire if wire else 1.0

    @property
    def wire_array(self) -> np.ndarray:
        """The materialized transport buffer (header + encoded parts)."""
        cached = self.__dict__.get("_wire_array")
        if cached is None:
            cached = self._build_wire()
            self.__dict__["_wire_array"] = cached
        return cached

    def _build_wire(self) -> np.ndarray:
        if self.codec == "passthrough":
            values = self.parts["values"]
            return np.ascontiguousarray(values).view(np.uint8).reshape(-1)
        header = struct.pack(
            "<BBHqI",
            _CODEC_IDS[self.codec],
            0,
            int(self.meta.get("width", 0)),
            self.length,
            0,
        )
        buffers = [np.frombuffer(header, dtype=np.uint8)]
        for part in self.parts.values():
            buffers.append(np.ascontiguousarray(part).view(np.uint8).reshape(-1))
        return np.concatenate(buffers)

    def decode(self) -> np.ndarray:
        return decode(self)


# ----------------------------------------------------------------------
# storage views: bit-exact integer representations of any dtype
# ----------------------------------------------------------------------
def _storage_view(values: np.ndarray) -> np.ndarray:
    """Bit-exact integer view the codecs operate on.

    Floats become same-width unsigned ints (so signed zeros and NaN
    payloads survive run detection and the round trip); bools become
    uint8; integers pass through unchanged.
    """
    if not values.flags.c_contiguous:
        values = np.ascontiguousarray(values)
    if values.dtype == np.bool_:
        return values.view(np.uint8)
    if values.dtype.kind == "f":
        return values.view(np.dtype(f"u{values.dtype.itemsize}"))
    return values


def _from_storage(stored: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Reinterpret decoded storage values back to the original dtype."""
    dtype = np.dtype(dtype)
    if dtype == np.bool_:
        return stored.view(np.bool_)
    if dtype.kind == "f":
        return stored.view(dtype)
    return stored.astype(dtype, copy=False)


def _from_u64(u64: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Narrow uint64 working values (two's complement) to ``dtype``."""
    dtype = np.dtype(dtype)
    if dtype == np.bool_:
        return u64.astype(np.uint8).view(np.bool_)
    if dtype.kind == "f":
        unsigned = u64.astype(np.dtype(f"u{dtype.itemsize}"), copy=False)
        return unsigned.view(dtype)
    if dtype.kind == "i":
        # Reinterpret then narrow: the true value fits the target range,
        # so the modular narrowing is exact.
        return u64.view(np.int64).astype(dtype, copy=False)
    return u64.astype(dtype, copy=False)


def _smallest_uint(maximum: int) -> np.dtype:
    for dtype in (np.uint8, np.uint16, np.uint32):
        if maximum < np.iinfo(dtype).max + 1:
            return np.dtype(dtype)
    return np.dtype(np.uint64)


# ----------------------------------------------------------------------
# bit packing (shared by forpack / delta / dictionary)
# ----------------------------------------------------------------------
def _bit_pack(values_u64: np.ndarray, width: int) -> np.ndarray:
    """Pack the ``width`` low bits of each value into a dense uint8 stream."""
    n = len(values_u64)
    if width == 0 or n == 0:
        return np.empty(0, dtype=np.uint8)
    bits = np.empty((n, width), dtype=np.uint8)
    for bit in range(width):
        shift = np.uint64(width - 1 - bit)
        bits[:, bit] = ((values_u64 >> shift) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.reshape(-1))


def _bit_unpack(packed: np.ndarray, n: int, width: int) -> np.ndarray:
    if width == 0 or n == 0:
        return np.zeros(n, dtype=np.uint64)
    bits = np.unpackbits(packed, count=n * width).reshape(n, width)
    out = np.zeros(n, dtype=np.uint64)
    for bit in range(width):
        shift = np.uint64(width - 1 - bit)
        out |= bits[:, bit].astype(np.uint64) << shift
    return out


# ----------------------------------------------------------------------
# encoders
# ----------------------------------------------------------------------
def _encode_passthrough(values: np.ndarray) -> EncodedColumn:
    stored = _storage_view(values)
    return EncodedColumn(
        "passthrough", values.dtype, len(values), values.nbytes, {"values": stored}
    )


def _encode_rle(values: np.ndarray, stored: np.ndarray) -> EncodedColumn:
    n = len(stored)
    if n == 0:
        run_values = stored[:0]
        run_lengths = np.empty(0, dtype=np.uint8)
    else:
        boundaries = np.flatnonzero(stored[1:] != stored[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [n]))
        lengths = ends - starts
        run_values = stored[starts]
        run_lengths = lengths.astype(_smallest_uint(int(lengths.max())))
    return EncodedColumn(
        "rle",
        values.dtype,
        n,
        values.nbytes,
        {"values": run_values, "lengths": run_lengths},
    )


def _decode_rle(encoded: EncodedColumn) -> np.ndarray:
    stored = np.repeat(
        encoded.parts["values"], encoded.parts["lengths"].astype(np.int64)
    )
    return _from_storage(stored, encoded.dtype)


def _encode_forpack(values: np.ndarray, stored: np.ndarray) -> EncodedColumn | None:
    if stored.dtype.kind not in "iu":
        return None
    n = len(stored)
    if n == 0:
        return EncodedColumn(
            "forpack",
            values.dtype,
            0,
            values.nbytes,
            {"packed": np.empty(0, dtype=np.uint8)},
            {"reference": 0, "width": 0},
        )
    lo = int(stored.min())
    hi = int(stored.max())
    span = hi - lo
    if span >= 1 << 63 or hi >= 1 << 63:
        return None  # deltas would not fit the 64-bit packing arithmetic
    width = span.bit_length()
    # int64 subtraction may wrap, but the true delta is < 2**63, so the
    # uint64 reinterpretation recovers it exactly.
    deltas = (stored.astype(np.int64, copy=False) - np.int64(lo)).view(np.uint64)
    return EncodedColumn(
        "forpack",
        values.dtype,
        n,
        values.nbytes,
        {"packed": _bit_pack(deltas, width)},
        {"reference": lo, "width": width},
    )


def _decode_forpack(encoded: EncodedColumn) -> np.ndarray:
    n = encoded.length
    deltas = _bit_unpack(encoded.parts["packed"], n, encoded.meta["width"])
    base = np.uint64(encoded.meta["reference"] % (1 << 64))
    return _from_u64(deltas + base, encoded.dtype)


def _encode_delta(values: np.ndarray, stored: np.ndarray) -> EncodedColumn | None:
    if stored.dtype.kind != "i":
        return None
    n = len(stored)
    if n == 0:
        return EncodedColumn(
            "delta",
            values.dtype,
            0,
            values.nbytes,
            {"packed": np.empty(0, dtype=np.uint8)},
            {"first": 0, "reference": 0, "width": 0},
        )
    wide = stored.astype(np.int64, copy=False)
    # Differences are taken modulo 2**64; the cumulative sum on decode
    # wraps back, so extreme int64 inputs still round-trip exactly.
    diffs = np.diff(wide)
    if len(diffs) == 0:
        lo, width = 0, 0
        packed = np.empty(0, dtype=np.uint8)
    else:
        lo = int(diffs.min())
        span = int(diffs.max()) - lo
        if span >= 1 << 63:
            return None
        width = span.bit_length()
        packed = _bit_pack((diffs - np.int64(lo)).view(np.uint64), width)
    return EncodedColumn(
        "delta",
        values.dtype,
        n,
        values.nbytes,
        {"packed": packed},
        {"first": int(wide[0]), "reference": lo, "width": width},
    )


def _decode_delta(encoded: EncodedColumn) -> np.ndarray:
    n = encoded.length
    out = np.zeros(n, dtype=np.int64)
    if n:
        out[0] = encoded.meta["first"]
        if n > 1:
            deltas = _bit_unpack(encoded.parts["packed"], n - 1, encoded.meta["width"])
            base = np.uint64(encoded.meta["reference"] % (1 << 64))
            diffs = (deltas + base).view(np.int64)
            np.cumsum(diffs, out=diffs)
            out[1:] = np.int64(encoded.meta["first"]) + diffs
    return _from_u64(out.view(np.uint64), encoded.dtype)


def _encode_dictionary(
    values: np.ndarray, stored: np.ndarray, dictionary_size: int | None
) -> EncodedColumn | None:
    if dictionary_size is None or stored.dtype.kind != "i":
        return None
    n = len(stored)
    if n and int(stored.min()) < 0:
        return None  # dictionary codes are non-negative by construction
    top = dictionary_size - 1
    if n:
        top = max(top, int(stored.max()))
    if top >= 1 << 63:
        return None
    width = top.bit_length() if top > 0 else 1
    packed = _bit_pack(stored.astype(np.int64, copy=False).view(np.uint64), width)
    return EncodedColumn(
        "dictionary",
        values.dtype,
        n,
        values.nbytes,
        {"packed": packed},
        {"reference": 0, "width": width},
    )


def _decode_dictionary(encoded: EncodedColumn) -> np.ndarray:
    codes = _bit_unpack(encoded.parts["packed"], encoded.length, encoded.meta["width"])
    return _from_u64(codes, encoded.dtype)


def _encode_boolpack(values: np.ndarray, stored: np.ndarray) -> EncodedColumn | None:
    if values.dtype != np.bool_:
        return None
    return EncodedColumn(
        "boolpack",
        values.dtype,
        len(values),
        values.nbytes,
        {"packed": np.packbits(stored)},
        {"width": 1},
    )


def _decode_boolpack(encoded: EncodedColumn) -> np.ndarray:
    bits = np.unpackbits(encoded.parts["packed"], count=encoded.length)
    return _from_storage(bits, encoded.dtype)


def _encode_cascade(values: np.ndarray, stored: np.ndarray) -> EncodedColumn | None:
    if stored.dtype.kind != "i":
        return None
    n = len(stored)
    if n == 0:
        return EncodedColumn(
            "cascade",
            values.dtype,
            0,
            values.nbytes,
            {
                "firsts": np.empty(0, dtype=np.int64),
                "references": np.empty(0, dtype=np.int64),
                "widths": np.empty(0, dtype=np.uint8),
                "packed": np.empty(0, dtype=np.uint8),
            },
            {"width": 0, "block": CASCADE_BLOCK},
        )
    wide = stored.astype(np.int64, copy=False)
    firsts, references, widths, chunks = [], [], [], []
    for start in range(0, n, CASCADE_BLOCK):
        block = wide[start : start + CASCADE_BLOCK]
        diffs = np.diff(block)
        if len(diffs) == 0:
            lo, width = 0, 0
            packed = np.empty(0, dtype=np.uint8)
        else:
            lo = int(diffs.min())
            span = int(diffs.max()) - lo
            if span >= 1 << 63:
                return None
            width = span.bit_length()
            packed = _bit_pack((diffs - np.int64(lo)).view(np.uint64), width)
        firsts.append(int(block[0]))
        references.append(lo)
        widths.append(width)
        chunks.append(packed)
    return EncodedColumn(
        "cascade",
        values.dtype,
        n,
        values.nbytes,
        {
            "firsts": np.array(firsts, dtype=np.int64),
            "references": np.array(references, dtype=np.int64),
            "widths": np.array(widths, dtype=np.uint8),
            "packed": np.concatenate(chunks) if chunks else np.empty(0, np.uint8),
        },
        {"width": max(widths), "block": CASCADE_BLOCK},
    )


def _decode_cascade(encoded: EncodedColumn) -> np.ndarray:
    n = encoded.length
    block = int(encoded.meta["block"])
    firsts = encoded.parts["firsts"]
    references = encoded.parts["references"]
    widths = encoded.parts["widths"]
    packed = encoded.parts["packed"]
    out = np.zeros(n, dtype=np.int64)
    offset = 0
    for index, start in enumerate(range(0, n, block)):
        length = min(block, n - start)
        width = int(widths[index])
        out[start] = firsts[index]
        if length > 1:
            nbytes = ((length - 1) * width + 7) // 8
            deltas = _bit_unpack(packed[offset : offset + nbytes], length - 1, width)
            offset += nbytes
            base = np.uint64(int(references[index]) % (1 << 64))
            diffs = (deltas + base).view(np.int64)
            np.cumsum(diffs, out=diffs)
            out[start + 1 : start + length] = np.int64(firsts[index]) + diffs
    return _from_u64(out.view(np.uint64), encoded.dtype)


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def encode(
    values: np.ndarray, codec: str, dictionary_size: int | None = None
) -> EncodedColumn | None:
    """Encode ``values`` with ``codec``.

    Returns ``None`` when the codec does not apply to the data (wrong
    kind, or a value span the packing arithmetic cannot represent) —
    callers fall back to ``passthrough``.
    """
    if codec == "passthrough":
        return _encode_passthrough(values)
    stored = _storage_view(values)
    if codec == "rle":
        return _encode_rle(values, stored)
    if codec == "forpack":
        return _encode_forpack(values, stored)
    if codec == "delta":
        return _encode_delta(values, stored)
    if codec == "dictionary":
        return _encode_dictionary(values, stored, dictionary_size)
    if codec == "boolpack":
        return _encode_boolpack(values, stored)
    if codec == "cascade":
        return _encode_cascade(values, stored)
    raise ConfigurationError(
        f"unknown codec {codec!r}; valid choices: {', '.join(CODEC_NAMES)}"
    )


_DECODERS = {
    "rle": _decode_rle,
    "forpack": _decode_forpack,
    "delta": _decode_delta,
    "dictionary": _decode_dictionary,
    "boolpack": _decode_boolpack,
    "cascade": _decode_cascade,
}


def decode(encoded: EncodedColumn) -> np.ndarray:
    """Decode back to the exact original array (byte-identical)."""
    if encoded.codec == "passthrough":
        return _from_storage(encoded.parts["values"], encoded.dtype)
    try:
        decoder = _DECODERS[encoded.codec]
    except KeyError:
        raise ConfigurationError(
            f"unknown codec {encoded.codec!r}; "
            f"valid choices: {', '.join(CODEC_NAMES)}"
        ) from None
    return decoder(encoded)
