"""Kernel code generation and execution contexts."""

from .codegen import (
    CompiledKernel,
    generate_compound_kernel,
    generate_count_kernel,
    generate_write_kernel,
)
from .context import REDUCTION_MODES, KernelContext

__all__ = [
    "CompiledKernel",
    "KernelContext",
    "REDUCTION_MODES",
    "generate_compound_kernel",
    "generate_count_kernel",
    "generate_write_kernel",
]
