"""Kernel source generation for fusion operators.

This is HorseQC's code generator (Sections 4.3 and 5.2), retargeted
from OpenCL to vectorized Python: relational primitives are instanced
into a code frame at designated positions.  Three kernel shapes exist:

* ``count``    — all cardinality-affecting primitives, ending by
  writing the selection flags (multi-pass phase 1, Figure 8 left);
* ``write``    — re-executes the primitives for flagged threads and
  performs the aligned writes (multi-pass phase 3, Figure 8 right);
* ``compound`` — everything in one kernel with the prefix sum inlined
  between the cardinality part and the write part (Figure 12).

Generated source is kept on the :class:`CompiledKernel` for inspection
(compare the paper's Appendix E listing).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from ..errors import CompilationError
from ..expressions.codegen import to_source
from ..telemetry.trace import active_tracer
from ..plan.physical import (
    AggregateSink,
    BuildSink,
    FilterStage,
    MapStage,
    MaterializeSink,
    Pipeline,
    ProbeStage,
)


@dataclass
class CompiledKernel:
    """A generated kernel: its source and the compiled entry point."""

    name: str
    kind: str  # "count", "write", or "compound"
    source: str
    entry: object  # callable(ctx)

    def __call__(self, ctx):
        return self.entry(ctx)


@dataclass
class KernelCacheStats:
    """A snapshot of the process-wide compiled-kernel cache."""

    hits: int
    misses: int
    evictions: int
    size: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: Compiled kernels are pure functions of their source text, so the
#: source is the cache key: two pipelines with the same structure (same
#: stages, expressions, constants, and sink) generate byte-identical
#: source and share one compiled entry across executions, sessions, and
#: server workers.  Bounded LRU; guarded by a lock so concurrent
#: serving workers can compile safely.
KERNEL_CACHE_CAPACITY = 1024
_cache_lock = threading.Lock()
_kernel_cache: "OrderedDict[str, CompiledKernel]" = OrderedDict()
_cache_hits = 0
_cache_misses = 0
_cache_evictions = 0
#: Per-thread hit/miss deltas: a query executes on one worker thread,
#: so the serving layer can meter compile reuse per query.
_thread_stats = threading.local()


def kernel_cache_stats() -> KernelCacheStats:
    """Process-wide cache counters (see :class:`KernelCacheStats`)."""
    with _cache_lock:
        return KernelCacheStats(
            hits=_cache_hits,
            misses=_cache_misses,
            evictions=_cache_evictions,
            size=len(_kernel_cache),
        )


def clear_kernel_cache() -> None:
    """Drop all cached kernels and reset the counters (tests/benchmarks)."""
    global _cache_hits, _cache_misses, _cache_evictions
    with _cache_lock:
        _kernel_cache.clear()
        _cache_hits = _cache_misses = _cache_evictions = 0


def begin_thread_compile_stats() -> None:
    """Zero the calling thread's compile counters (one query starts)."""
    _thread_stats.hits = 0
    _thread_stats.misses = 0
    _thread_stats.compile_ms = 0.0


def thread_compile_stats() -> tuple[int, int, float]:
    """The calling thread's ``(hits, misses, compile_wall_ms)`` since
    the last :func:`begin_thread_compile_stats`."""
    return (
        getattr(_thread_stats, "hits", 0),
        getattr(_thread_stats, "misses", 0),
        getattr(_thread_stats, "compile_ms", 0.0),
    )


def _record_probe(hit: bool) -> None:
    global _cache_hits, _cache_misses
    if hit:
        _cache_hits += 1
        _thread_stats.hits = getattr(_thread_stats, "hits", 0) + 1
    else:
        _cache_misses += 1
        _thread_stats.misses = getattr(_thread_stats, "misses", 0) + 1


def _compile(name: str, kind: str, lines: list[str]) -> CompiledKernel:
    global _cache_evictions
    source = "\n".join([f"def {name}(ctx):"] + [f"    {line}" for line in lines]) + "\n"
    tracer = active_tracer()
    with _cache_lock:
        cached = _kernel_cache.get(source)
        _record_probe(cached is not None)
        if cached is not None:
            _kernel_cache.move_to_end(source)
            if tracer is not None:
                tracer.event(f"compile {name}", "compile", cache_hit=True, kind=kind)
            return cached
    started = time.perf_counter()
    namespace: dict = {}
    try:
        exec(compile(source, filename=f"<generated {name}>", mode="exec"), namespace)
    except SyntaxError as error:  # pragma: no cover - codegen bug guard
        raise CompilationError(f"generated kernel failed to compile: {error}\n{source}")
    kernel = CompiledKernel(name=name, kind=kind, source=source, entry=namespace[name])
    compile_ms = (time.perf_counter() - started) * 1e3
    if tracer is not None:
        tracer.event(
            f"compile {name}", "compile",
            cache_hit=False, kind=kind, compile_ms=compile_ms,
        )
    _thread_stats.compile_ms = (
        getattr(_thread_stats, "compile_ms", 0.0) + compile_ms
    )
    with _cache_lock:
        _kernel_cache[source] = kernel
        while len(_kernel_cache) > KERNEL_CACHE_CAPACITY:
            _kernel_cache.popitem(last=False)
            _cache_evictions += 1
    return kernel


def _touch_line(expr_columns: set[str], count: str | None = None) -> str:
    columns = ", ".join(repr(column) for column in sorted(expr_columns))
    if count is None:
        return f"ctx.touch([{columns}])"
    return f"ctx.touch([{columns}], count={count})"


def _emit_stages(lines: list[str], pipeline: Pipeline) -> None:
    """Emit the relational primitives of the pipeline, in order."""
    for index, stage in enumerate(pipeline.stages):
        if isinstance(stage, FilterStage):
            # One filter_stage call per selection: the context decides at
            # RUNTIME whether to load + evaluate (classic) or to scan the
            # compressed wire image per conjunct (compression="lazy") —
            # generated source must stay identical either way so the
            # process-wide kernel cache stays policy-agnostic.
            lines.append(f"# select (stage {index})")
            columns = ", ".join(
                repr(column) for column in sorted(stage.predicate.columns())
            )
            lines.append(
                f"mask = ctx.filter_stage(mask, {index}, "
                f"lambda scope: {to_source(stage.predicate)}, "
                f"cost={stage.predicate.size()}, columns=[{columns}])"
            )
        elif isinstance(stage, MapStage):
            lines.append(f"# map {stage.name} (stage {index})")
            lines.append(_touch_line(stage.expr.columns()))
            lines.append(f"scope[{stage.name!r}] = {to_source(stage.expr)}")
            lines.append(f"ctx.compute({stage.expr.size()})")
            lines.append(f"ctx.mark_loaded([{stage.name!r}])")
        elif isinstance(stage, ProbeStage):
            lines.append(f"# join probe {stage.table_id} (stage {index})")
            key_columns: set[str] = set()
            for key in stage.probe_keys:
                key_columns |= key.columns()
            lines.append(_touch_line(key_columns))
            keys = ", ".join(to_source(key) for key in stage.probe_keys)
            key_cost = sum(key.size() for key in stage.probe_keys)
            lines.append(
                f"rows_{index} = ctx.probe({stage.table_id!r}, [{keys}], mask, "
                f"key_cost={key_cost})"
            )
            lines.append(
                f"mask = ctx.apply_probe(mask, rows_{index}, kind={stage.kind!r})"
            )
            for name in stage.payload:
                default = stage.payload_defaults.get(name)
                if default is None:
                    lines.append(
                        f"scope[{name!r}] = ctx.payload({stage.table_id!r}, "
                        f"rows_{index}, {name!r})"
                    )
                else:
                    lines.append(
                        f"scope[{name!r}] = ctx.payload({stage.table_id!r}, "
                        f"rows_{index}, {name!r}, default={default!r})"
                    )
            if stage.payload:
                payloads = ", ".join(repr(name) for name in stage.payload)
                lines.append(f"ctx.mark_loaded([{payloads}])")
            if stage.residual is not None:
                lines.append(_touch_line(stage.residual.columns()))
                lines.append(f"residual_{index} = {to_source(stage.residual)}")
                lines.append(
                    f"mask = ctx.apply_filter(mask, residual_{index}, "
                    f"cost={stage.residual.size()})"
                )
        else:  # pragma: no cover - exhaustive over stage types
            raise CompilationError(f"unknown stage {type(stage).__name__}")


def sink_input_columns(sink) -> set[str]:
    columns: set[str] = set()
    if isinstance(sink, MaterializeSink):
        columns.update(sink.outputs)
    elif isinstance(sink, BuildSink):
        for key in sink.keys:
            columns |= key.columns()
        columns.update(sink.payload)
    elif isinstance(sink, AggregateSink):
        for _, expr in sink.group_keys:
            columns |= expr.columns()
        for spec in sink.aggregates:
            if spec.expr is not None:
                columns |= spec.expr.columns()
    return columns


def _emit_compound_sink(lines: list[str], pipeline: Pipeline) -> None:
    sink = pipeline.sink
    if isinstance(sink, MaterializeSink):
        lines.append("# prefix sum (local resolution, global propagation)")
        lines.append("positions = ctx.positions(mask)")
        lines.append("# project / aligned write")
        lines.append(_touch_line(sink_input_columns(sink), count="positions.total"))
        for name in sink.outputs:
            lines.append(f"ctx.store({name!r}, scope[{name!r}], mask, positions)")
    elif isinstance(sink, BuildSink):
        lines.append("# pipelined hash-table build (atomic CAS inserts)")
        lines.append(_touch_line(sink_input_columns(sink)))
        keys = ", ".join(to_source(key) for key in sink.keys)
        lines.append(f"ctx.sink_build(mask, [{keys}])")
    elif isinstance(sink, AggregateSink):
        lines.append("# pipelined aggregation")
        lines.append(_touch_line(sink_input_columns(sink)))
        lines.append("ctx.sink_aggregate(mask)")
    else:  # pragma: no cover
        raise CompilationError(f"unknown sink {type(sink).__name__}")


def generate_compound_kernel(pipeline: Pipeline) -> CompiledKernel:
    """One kernel for the whole fusion operator (Section 5.2)."""
    lines = [
        f"# compound kernel for {pipeline.describe()}",
        "np = ctx.np",
        "scope = ctx.scope",
        "mask = ctx.full_mask()",
    ]
    _emit_stages(lines, pipeline)
    _emit_compound_sink(lines, pipeline)
    return _compile(f"compound_{pipeline.name}", "compound", lines)


def generate_count_kernel(pipeline: Pipeline) -> CompiledKernel:
    """Multi-pass phase 1: cardinality primitives + flag write."""
    lines = [
        f"# count kernel for {pipeline.describe()}",
        "np = ctx.np",
        "scope = ctx.scope",
        "mask = ctx.full_mask()",
    ]
    _emit_stages(lines, pipeline)
    lines.append("# write selection flags for the prefix sum")
    lines.append("ctx.finish_count(mask)")
    return _compile(f"count_{pipeline.name}", "count", lines)


def generate_write_kernel(pipeline: Pipeline) -> CompiledKernel:
    """Multi-pass phase 3: re-execute primitives for flagged threads,
    then perform the aligned writes (or materialize sink inputs)."""
    lines = [
        f"# write kernel for {pipeline.describe()}",
        "np = ctx.np",
        "scope = ctx.scope",
        "mask = ctx.initial_mask()",
    ]
    _emit_stages(lines, pipeline)
    sink = pipeline.sink
    if isinstance(sink, MaterializeSink):
        lines.append("positions = ctx.installed_positions()")
        lines.append(_touch_line(sink_input_columns(sink), count="positions.total"))
        for name in sink.outputs:
            lines.append(f"ctx.store({name!r}, scope[{name!r}], mask, positions)")
    elif isinstance(sink, BuildSink):
        lines.append(_touch_line(sink_input_columns(sink)))
        keys = ", ".join(to_source(key) for key in sink.keys)
        lines.append(f"ctx.materialize_for_build(mask, [{keys}])")
    elif isinstance(sink, AggregateSink):
        lines.append(_touch_line(sink_input_columns(sink)))
        lines.append("ctx.materialize_for_aggregate(mask)")
    else:  # pragma: no cover
        raise CompilationError(f"unknown sink {type(sink).__name__}")
    return _compile(f"write_{pipeline.name}", "write", lines)
