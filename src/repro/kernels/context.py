"""Kernel execution context for generated kernels.

Generated kernel code (see :mod:`repro.kernels.codegen`) runs against a
:class:`KernelContext`: expression work happens inline in the generated
numpy code, while everything that touches the simulated memory system —
column loads, hash-table probes, prefix sums, aggregation — goes
through context methods so traffic is accounted exactly once and
identically across engines.

A context represents ONE kernel: its meter accumulates until the engine
launches it on the device.
"""

from __future__ import annotations

import numpy as np

from ..errors import CompilationError, PlanError
from ..hardware.profiles import DeviceProfile
from ..hardware.traffic import MemoryLevel, TrafficMeter
from ..plan.logical import PlanSchema
from ..primitives.gather import INDEX_BYTES, random_access_volume
from ..primitives.prefix import ScanResult, atomic_positions, lrgp_positions
from .. import primitives

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engines.runtime import QueryRuntime

#: Prefix-sum / reduction mode names accepted by compiled engines.
REDUCTION_MODES = ("multipass", "atomic", "lrgp_simd", "lrgp_we")


class KernelContext:
    """Accounting + semantics facade for one generated kernel.

    Parameters
    ----------
    runtime:
        The query runtime (hash tables, rng).
    scope:
        Column arrays of the pipeline source (full block length).
    schema:
        Scope schema (for per-column byte widths).
    mode:
        Reduction mode — governs how :meth:`positions` and the
        aggregation helpers behave and what they cost.
    base_count:
        Number of elements charged for a first column load.  The count
        kernel and compound kernel pass the block size; the write
        kernel of the multi-pass model passes the selected count, since
        only flagged threads re-read inputs.
    rows:
        Authoritative source cardinality.  When omitted it is inferred
        from the scope arrays — wrong for pipelines that reference no
        columns at all (``select count(*)`` without a predicate), whose
        scope is empty while the source still has rows.
    """

    def __init__(
        self,
        runtime: "QueryRuntime",
        scope: dict[str, np.ndarray],
        schema: PlanSchema,
        mode: str,
        base_count: int | None = None,
        sink=None,
        output_schema: PlanSchema | None = None,
        rows: int | None = None,
        pipeline=None,
    ):
        if mode not in REDUCTION_MODES:
            raise CompilationError(f"unknown reduction mode {mode!r}")
        self.np = np
        self.runtime = runtime
        self.scope = dict(scope)
        self.schema = schema
        self.mode = mode
        # ``rows`` is the authoritative source cardinality: a pipeline
        # that references no columns (``count(*)`` with no predicate)
        # has an empty scope but still iterates every source row.
        if rows is not None:
            self.n = rows
        else:
            self.n = len(next(iter(scope.values()))) if scope else 0
        self.base_count = self.n if base_count is None else base_count
        self.meter = TrafficMeter()
        self.outputs: dict[str, np.ndarray] = {}
        self.sink = sink
        self.output_schema = output_schema
        #: Final selection flags (count kernel result / write kernel input).
        self.flags: np.ndarray | None = None
        #: Intermediates materialized by multi-pass write kernels.
        self.intermediates: dict[str, np.ndarray] = {}
        self.aggregation = None
        self._positions: ScanResult | None = None
        self._loaded: set[str] = set()
        self._valid = self.n if base_count is None else base_count
        #: The physical pipeline this kernel implements (None for
        #: hand-built contexts).  Needed by :meth:`filter_stage` to
        #: reach the predicate *expression tree* at runtime — generated
        #: source stays identical regardless of compression policy.
        self.pipeline = pipeline

    @property
    def profile(self) -> DeviceProfile:
        return self.runtime.device.profile

    # ------------------------------------------------------------------
    # column loads
    # ------------------------------------------------------------------
    def itemsize(self, name: str) -> int:
        dtype = self.schema.dtypes.get(name)
        if dtype is None:
            return 4
        return dtype.itemsize

    def touch(self, names: list[str], count: int | None = None) -> None:
        """Charge the first global-memory load of each named column.

        A column whose decode is deferred (``compression="lazy"``)
        charges a *gather-decode* fused into this kernel instead — only
        the alive positions materialize — unless cumulative partial
        traffic flips it to the full decode kernel first.
        """
        charge = self._valid if count is None else count
        charge = min(charge, self.base_count)
        runtime = self.runtime
        for name in names:
            if name in self._loaded:
                continue
            self._loaded.add(name)
            if runtime.lazy_columns:
                state = runtime.lazy_lookup(self.scope.get(name))
                if state is not None and runtime.lazy_gather(
                    state, charge, self.meter
                ):
                    continue
            self.meter.record_read(MemoryLevel.GLOBAL, charge * self.itemsize(name))

    def mark_loaded(self, names: list[str]) -> None:
        """Treat columns as already in registers (no load charge)."""
        self._loaded.update(names)

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------
    def full_mask(self) -> np.ndarray:
        return np.ones(self.n, dtype=bool)

    def apply_filter(self, mask: np.ndarray, flags: np.ndarray, cost: int) -> np.ndarray:
        """AND selection flags into the mask, charging ALU work.

        ``cost`` is the expression node count (per-element instruction
        estimate), charged for the rows still alive before the filter.
        """
        self.meter.record_instructions(self._valid * cost)
        flags = np.broadcast_to(np.asarray(flags, dtype=bool), mask.shape)
        mask = mask & flags
        self._valid = int(mask.sum())
        return mask

    def filter_stage(self, mask, index, fn, cost, columns):
        """Execute one FilterStage: load the predicate columns and AND
        its flags into the mask.

        The default path charges exactly what the classic emission did
        (touch + one apply_filter).  Under ``compression="lazy"``,
        single-column conjuncts over wire-resident columns execute as
        *compressed scans* — on RLE runs, dictionary-code LUTs, or
        min/max-skipped packed blocks — so the predicate columns never
        materialize raw (see ``repro.compression.lazy``).  Both paths
        compute identical flags.
        """
        predicate = None
        if self.pipeline is not None and self.runtime.lazy_columns:
            stage = self.pipeline.stages[index]
            predicate = getattr(stage, "predicate", None)
        if predicate is not None:
            from ..compression.lazy import flatten_conjuncts, plan_scan

            conjuncts = flatten_conjuncts(predicate)
            plans = []
            any_scan = False
            policy = self.runtime.compression
            for conjunct in conjuncts:
                plan = state = None
                names = conjunct.columns()
                if len(names) == 1:
                    name = next(iter(names))
                    state = self.runtime.lazy_lookup(self.scope.get(name))
                    if state is not None:
                        plan = plan_scan(state, conjunct, name)
                        if plan is not None:
                            # Compressed scan vs decode-then-scan, with
                            # the calibrated per-codec decode factor.
                            factor = (
                                policy.decode_factor(state.codec)
                                if policy is not None
                                else 1.0
                            )
                            decode_side = state.decode_bytes * factor + min(
                                self._valid, self.base_count
                            ) * state.itemsize
                            if plan.read_bytes + plan.onchip_bytes >= decode_side:
                                plan = None
                if plan is not None:
                    any_scan = True
                plans.append((conjunct, plan, state))
            if any_scan:
                for conjunct, plan, state in plans:
                    if plan is not None:
                        self.runtime.record_scan(state, plan, self.meter)
                        mask = mask & plan.flags
                        self._valid = int(mask.sum())
                    else:
                        from ..expressions.eval import evaluate

                        self.touch(sorted(conjunct.columns()))
                        mask = self.apply_filter(
                            mask, evaluate(conjunct, self.scope), conjunct.size()
                        )
                return mask
        self.touch(columns)
        return self.apply_filter(mask, fn(self.scope), cost)

    def probe(
        self,
        table_id: str,
        key_arrays: list[np.ndarray],
        mask: np.ndarray,
        key_cost: int = 0,
    ) -> np.ndarray:
        """Probe a hash table for the rows still alive under ``mask``.

        Returns a full-length array of build row indices (-1 for
        misses and for dead rows).  Probe traffic is charged for the
        alive rows only — dead threads skip the probe.
        """
        entry = self.runtime.hash_table(table_id)
        alive = np.flatnonzero(mask)
        rows = np.full(self.n, -1, dtype=np.int64)
        if key_cost:
            self.meter.record_instructions(len(alive) * key_cost)
        if alive.size:
            keys = [np.ascontiguousarray(np.broadcast_to(np.asarray(k), mask.shape)[alive]) for k in key_arrays]
            rows[alive] = entry.table.probe(self.meter, keys, self.profile.l2_capacity)
        return rows

    def apply_probe(self, mask: np.ndarray, rows: np.ndarray, kind: str) -> np.ndarray:
        """Fold probe hits/misses into the mask per join kind."""
        found = rows >= 0
        if kind == "inner" or kind == "semi":
            mask = mask & found
        elif kind == "anti":
            mask = mask & ~found
        elif kind == "left":
            pass  # all probe rows survive
        else:
            raise PlanError(f"unknown join kind {kind!r}")
        self._valid = int(mask.sum())
        return mask

    def payload(
        self,
        table_id: str,
        rows: np.ndarray,
        name: str,
        default: float | None = None,
    ) -> np.ndarray:
        """Fetch a payload column through the probe result (a gather).

        Charges one random global-memory read per alive hit; missing
        rows yield ``default`` (left joins) or an arbitrary value that
        is masked off downstream (inner joins).
        """
        entry = self.runtime.hash_table(table_id)
        try:
            source = entry.payload[name]
        except KeyError:
            raise PlanError(f"hash table {table_id!r} has no payload {name!r}") from None
        found = rows >= 0
        hits = int(found.sum())
        itemsize = source.dtype.itemsize
        self.meter.record_read(
            MemoryLevel.GLOBAL,
            random_access_volume(hits, itemsize, source.nbytes, self.profile.l2_capacity),
        )
        self.meter.record_instructions(hits)
        if len(source) == 0:
            # Empty build side: every probe missed; any fill value is
            # masked off downstream (or replaced by the left-join default).
            values = np.zeros(len(rows), dtype=source.dtype)
        else:
            values = source[np.clip(rows, 0, None)]
        if default is not None:
            fill = np.asarray(default).astype(source.dtype)
            values = np.where(found, values, fill)
        return values

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def positions(self, mask: np.ndarray) -> ScanResult:
        """Write positions for the selected rows, per reduction mode."""
        if self.mode == "atomic":
            return atomic_positions(self.meter, mask, self.runtime.rng)
        if self.mode == "lrgp_simd":
            return lrgp_positions(
                self.meter, mask, self.profile, self.runtime.rng, "simd"
            )
        if self.mode == "lrgp_we":
            return lrgp_positions(
                self.meter, mask, self.profile, self.runtime.rng, "work_efficient"
            )
        raise CompilationError(
            "multipass kernels compute prefix sums in separate kernels; "
            "positions() is only valid in compound kernels"
        )

    def set_positions(self, positions: ScanResult) -> None:
        """Install externally computed positions (multi-pass write
        kernel), charging the flag + prefix array reads."""
        self.meter.record_read(MemoryLevel.GLOBAL, 2 * self.n * INDEX_BYTES)
        self._positions = positions

    def atomic_reduce(self, values: np.ndarray, op: str):
        return primitives.atomic_reduce(self.meter, values, op)

    def lrgp_reduce(self, values: np.ndarray, op: str):
        mechanism = "work_efficient" if self.mode == "lrgp_we" else "simd"
        return primitives.lrgp_reduce(self.meter, values, self.profile, op, mechanism)

    def hash_aggregate_cost(self, codes: np.ndarray, num_groups: int, entry_bytes: int):
        """Charge a pipelined grouped aggregation (C2 or C3)."""
        if self.mode == "atomic":
            return primitives.atomic_hash_aggregate(self.meter, codes, num_groups, entry_bytes)
        return primitives.segmented_hash_aggregate(
            self.meter, codes, num_groups, entry_bytes, self.profile
        )

    def single_aggregate_cost(self, count: int, accumulators: int) -> None:
        """Charge a pipelined single-tuple aggregation (B2 or B3)."""
        values = np.zeros(count, dtype=np.float32)
        for _ in range(max(accumulators, 1)):
            if self.mode == "atomic":
                primitives.atomic_reduce(self.meter, values, "sum")
            else:
                mechanism = "work_efficient" if self.mode == "lrgp_we" else "simd"
                primitives.lrgp_reduce(self.meter, values, self.profile, "sum", mechanism)

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------
    def compute(self, cost: int, count: int | None = None) -> None:
        """Charge ALU-only work (projection arithmetic)."""
        charge = self._valid if count is None else count
        self.meter.record_instructions(charge * cost)

    def write_output(self, name: str, values: np.ndarray, itemsize: int) -> None:
        """Charge the aligned write of one output column."""
        count = len(values)
        self.meter.record_write(MemoryLevel.GLOBAL, count * itemsize)
        self.outputs[name] = values

    def store(self, name: str, values: np.ndarray, mask: np.ndarray, positions: ScanResult) -> None:
        """Scatter the selected values to their write positions.

        With atomic/LRGP positions the output order is the (semi-)
        permuted allocation order of Section 6.1; with reference
        positions it is input order.
        """
        itemsize = self.itemsize(name)
        full = np.broadcast_to(np.asarray(values), mask.shape)
        selected = full[mask]
        dense = np.empty(positions.total, dtype=np.asarray(selected).dtype)
        dense[positions.positions[mask]] = selected
        self.write_output(name, dense, itemsize)

    # ------------------------------------------------------------------
    # multi-pass count/write protocol
    # ------------------------------------------------------------------
    def finish_count(self, mask: np.ndarray) -> None:
        """Count kernel epilogue: write the selection flags array."""
        self.meter.record_write(MemoryLevel.GLOBAL, self.n * INDEX_BYTES)
        self.flags = mask

    def install_flags(self, flags: np.ndarray) -> None:
        self.flags = flags

    def initial_mask(self) -> np.ndarray:
        """Write kernel prologue: threads consult their selection flag."""
        if self.flags is None:
            raise CompilationError("write kernel needs flags from the count kernel")
        return self.flags.copy()

    def installed_positions(self) -> ScanResult:
        if self._positions is None:
            raise CompilationError("write kernel needs positions from the prefix sum")
        return self._positions

    # ------------------------------------------------------------------
    # sinks
    # ------------------------------------------------------------------
    def sink_aggregate(self, mask: np.ndarray) -> None:
        """Pipelined aggregation (compound kernels): compute the
        aggregates and charge B2/B3 (single tuple) or C2/C3 (grouped)."""
        if self.sink is None or self.output_schema is None:
            raise CompilationError("context has no aggregation sink bound")
        result = self.runtime.aggregate_rows(self.sink, self.scope, mask, self.output_schema)
        if result.codes is not None:
            self.hash_aggregate_cost(result.codes, result.num_groups, result.entry_bytes)
        else:
            accumulators = sum(
                2 if spec.op == "avg" else 1 for spec in self.sink.aggregates
            )
            self.single_aggregate_cost(result.inputs, accumulators)
        self.outputs.update(result.outputs)
        self.aggregation = result

    def materialize_for_aggregate(self, mask: np.ndarray) -> None:
        """Multi-pass write kernel: materialize key and value columns
        for the library sort/reduce that follows (pipeline breaker)."""
        if self.sink is None:
            raise CompilationError("context has no aggregation sink bound")
        from ..expressions.eval import evaluate

        selected = np.flatnonzero(mask)
        for index, (name, expr) in enumerate(self.sink.group_keys):
            values = np.broadcast_to(np.asarray(evaluate(expr, self.scope)), mask.shape)[selected]
            self.meter.record_write(MemoryLevel.GLOBAL, values.nbytes)
            self.intermediates[f"key{index}:{name}"] = values
        for spec in self.sink.aggregates:
            if spec.expr is None:
                continue
            values = np.broadcast_to(np.asarray(evaluate(spec.expr, self.scope)), mask.shape)[selected]
            self.meter.record_write(MemoryLevel.GLOBAL, values.nbytes)
            self.intermediates[f"value:{spec.name}"] = values

    def sink_build(self, mask: np.ndarray, key_arrays: list[np.ndarray]) -> None:
        """Pipelined hash-table build (compound kernels): selected rows
        insert themselves with atomic CAS, payload kept from registers."""
        if self.sink is None:
            raise CompilationError("context has no build sink bound")
        from ..engines.runtime import HashTableEntry
        from ..primitives.hashtable import JoinHashTable

        selected = np.flatnonzero(mask)
        keys = [
            np.ascontiguousarray(np.broadcast_to(np.asarray(array), mask.shape)[selected])
            for array in key_arrays
        ]
        table = JoinHashTable.build_pipelined(
            self.meter, self.runtime.device, keys, name=self.sink.table_id
        )
        payload: dict[str, np.ndarray] = {}
        payload_buffers = []
        try:
            for name in self.sink.payload:
                values = np.ascontiguousarray(self.scope[name][selected])
                self.meter.record_write(MemoryLevel.GLOBAL, values.nbytes)
                payload_buffers.append(
                    self.runtime.device.allocate(
                        values, label=f"{self.sink.table_id}.{name}"
                    )
                )
                payload[name] = values
        except BaseException:
            # Free the half-built table (slots + any payload columns
            # already allocated) so a failed build does not leak.
            for buffer in payload_buffers:
                if not buffer.freed:
                    self.runtime.device.free(buffer)
            if table.slots_buffer is not None and not table.slots_buffer.freed:
                self.runtime.device.free(table.slots_buffer)
            raise
        for array, key_values in zip(key_arrays, keys):
            self.meter.record_write(MemoryLevel.GLOBAL, key_values.nbytes)
        self.runtime.register_hash_table(self.sink.table_id, HashTableEntry(table, payload))

    def materialize_for_build(self, mask: np.ndarray, key_arrays: list[np.ndarray]) -> None:
        """Multi-pass write kernel: materialize keys + payload; the
        engine then builds the hash table in a separate kernel."""
        if self.sink is None:
            raise CompilationError("context has no build sink bound")
        selected = np.flatnonzero(mask)
        for index, array in enumerate(key_arrays):
            values = np.ascontiguousarray(
                np.broadcast_to(np.asarray(array), mask.shape)[selected]
            )
            self.meter.record_write(MemoryLevel.GLOBAL, values.nbytes)
            self.intermediates[f"key{index}"] = values
        for name in self.sink.payload:
            values = np.ascontiguousarray(self.scope[name][selected])
            self.meter.record_write(MemoryLevel.GLOBAL, values.nbytes)
            self.intermediates[f"payload:{name}"] = values

    @property
    def valid(self) -> int:
        return self._valid
