"""Compile-time resolution of string predicates to dictionary codes.

HorseQC operates on dictionary-compressed columns: string comparisons
are rewritten into integer comparisons on codes before any kernel code
is generated (Section 7).  Because dictionaries are order-preserving,
range predicates translate exactly:

* ``s == "ASIA"``  ->  ``code == code_of("ASIA")`` (or FALSE if absent)
* ``s >= "ASIA"``  ->  ``code >= lower_bound("ASIA")``
* ``s <  "MFGR#3"``->  ``code <  lower_bound("MFGR#3")``

The rewrite happens once per query, so generated kernels are purely
numeric.
"""

from __future__ import annotations

from ..errors import ExpressionError
from ..storage.dictionary import Dictionary
from .expr import (
    Between,
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    Not,
)

#: Sentinel comparisons that are constant-foldable to always-true/false.
ALWAYS_TRUE = Comparison("==", Literal(0), Literal(0))
ALWAYS_FALSE = Comparison("==", Literal(0), Literal(1))


def resolve_strings(expr: Expr, dictionaries: dict[str, Dictionary]) -> Expr:
    """Rewrite string literals in ``expr`` into dictionary-code literals.

    ``dictionaries`` maps column name -> dictionary for every STRING
    column in scope.  Non-string sub-expressions pass through unchanged.
    """
    if isinstance(expr, (ColumnRef, Literal)):
        return expr
    if isinstance(expr, Comparison):
        return _resolve_comparison(expr, dictionaries)
    if isinstance(expr, Between):
        low = Comparison(">=", expr.operand, expr.low)
        high = Comparison("<=", expr.operand, expr.high)
        resolved_low = _resolve_comparison(low, dictionaries)
        resolved_high = _resolve_comparison(high, dictionaries)
        if _is_string_context(expr.operand, expr.low, dictionaries) or _is_string_context(
            expr.operand, expr.high, dictionaries
        ):
            return BooleanOp("and", (resolved_low, resolved_high))
        return Between(
            resolve_strings(expr.operand, dictionaries),
            resolve_strings(expr.low, dictionaries),
            resolve_strings(expr.high, dictionaries),
        )
    if isinstance(expr, InList):
        return _resolve_in_list(expr, dictionaries)
    if isinstance(expr, BooleanOp):
        return BooleanOp(
            expr.op,
            tuple(resolve_strings(operand, dictionaries) for operand in expr.operands),
        )
    if isinstance(expr, Not):
        return Not(resolve_strings(expr.operand, dictionaries))
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            resolve_strings(expr.left, dictionaries),
            resolve_strings(expr.right, dictionaries),
        )
    raise ExpressionError(f"cannot resolve expression node {type(expr).__name__}")


def _string_side(
    left: Expr, right: Expr, dictionaries: dict[str, Dictionary]
) -> tuple[ColumnRef, Literal] | None:
    """Detect a (string column, string literal) comparison, either order."""
    if (
        isinstance(left, ColumnRef)
        and left.name in dictionaries
        and isinstance(right, Literal)
        and isinstance(right.value, str)
    ):
        return left, right
    return None


def _is_string_context(operand: Expr, bound: Expr, dictionaries: dict[str, Dictionary]) -> bool:
    return _string_side(operand, bound, dictionaries) is not None


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


def _resolve_comparison(expr: Comparison, dictionaries: dict[str, Dictionary]) -> Expr:
    pair = _string_side(expr.left, expr.right, dictionaries)
    op = expr.op
    if pair is None:
        pair = _string_side(expr.right, expr.left, dictionaries)
        if pair is not None:
            op = _FLIPPED[op]
    if pair is None:
        if isinstance(expr.right, Literal) and isinstance(expr.right.value, str):
            raise ExpressionError(
                f"string comparison against non-dictionary expression: {expr!r}"
            )
        return Comparison(
            expr.op,
            resolve_strings(expr.left, dictionaries),
            resolve_strings(expr.right, dictionaries),
        )
    column, literal = pair
    dictionary = dictionaries[column.name]
    value = literal.value
    assert isinstance(value, str)
    if op == "==":
        return Comparison("==", column, Literal(dictionary.code_or_missing(value)))
    if op == "!=":
        code = dictionary.code_or_missing(value)
        if code < 0:
            return ALWAYS_TRUE
        return Comparison("!=", column, Literal(code))
    if op == ">=":
        bound = dictionary.lower_bound(value)
        if bound >= len(dictionary):
            return ALWAYS_FALSE
        return Comparison(">=", column, Literal(bound))
    if op == ">":
        bound = dictionary.upper_bound(value)
        if bound >= len(dictionary):
            return ALWAYS_FALSE
        return Comparison(">=", column, Literal(bound))
    if op == "<=":
        bound = dictionary.upper_bound(value)
        if bound == 0:
            return ALWAYS_FALSE
        return Comparison("<=", column, Literal(bound - 1))
    if op == "<":
        bound = dictionary.lower_bound(value)
        if bound == 0:
            return ALWAYS_FALSE
        return Comparison("<=", column, Literal(bound - 1))
    raise ExpressionError(f"unsupported string comparison operator {op!r}")


def _resolve_in_list(expr: InList, dictionaries: dict[str, Dictionary]) -> Expr:
    operand = expr.operand
    if (
        isinstance(operand, ColumnRef)
        and operand.name in dictionaries
        and all(isinstance(option.value, str) for option in expr.options)
    ):
        dictionary = dictionaries[operand.name]
        codes = [
            dictionary.code_or_missing(option.value)  # type: ignore[arg-type]
            for option in expr.options
        ]
        present = [code for code in codes if code >= 0]
        if not present:
            return ALWAYS_FALSE
        return InList(operand, tuple(Literal(code) for code in present))
    return InList(
        resolve_strings(operand, dictionaries),
        tuple(resolve_strings(option, dictionaries) for option in expr.options),  # type: ignore[arg-type]
    )
