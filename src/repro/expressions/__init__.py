"""Expression trees, evaluation, resolution, and code generation."""

from .codegen import to_source
from .eval import evaluate
from .expr import (
    Between,
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    Not,
    all_of,
    col,
    lit,
    wrap,
)
from .resolve import resolve_strings
from .schema import infer_dtype

__all__ = [
    "Between",
    "BinaryOp",
    "BooleanOp",
    "ColumnRef",
    "Comparison",
    "Expr",
    "InList",
    "Literal",
    "Not",
    "all_of",
    "col",
    "evaluate",
    "infer_dtype",
    "lit",
    "resolve_strings",
    "to_source",
    "wrap",
]
