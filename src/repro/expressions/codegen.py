"""Python code fragments for expression trees.

The kernel code generator instances relational templates into a code
frame (Section 4.3).  This module emits the expression fragments: a
resolved expression tree becomes a single vectorized Python expression
over a scope dict, e.g.

    pi(revenue <- price * discount)
    ->  "(scope['price'] * scope['discount'])"

mirroring the paper's ``revenue[wp] = price[tid] * discount[tid];``.
"""

from __future__ import annotations

from ..errors import ExpressionError
from .expr import (
    Between,
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    Not,
)

_PY_BOOL_OPS = {"and": "&", "or": "|"}


def to_source(expr: Expr, scope_var: str = "scope") -> str:
    """Emit a vectorized Python expression string for ``expr``.

    The generated fragment references columns as
    ``{scope_var}['name']`` and assumes ``np`` (numpy) is in scope.
    String literals must have been resolved to codes beforehand.
    """
    if isinstance(expr, ColumnRef):
        return f"{scope_var}[{expr.name!r}]"
    if isinstance(expr, Literal):
        value = expr.value
        if isinstance(value, str):
            raise ExpressionError(
                f"unresolved string literal {value!r} reached code generation"
            )
        return repr(value)
    if isinstance(expr, BinaryOp):
        left = to_source(expr.left, scope_var)
        right = to_source(expr.right, scope_var)
        if expr.op == "/":
            return f"(np.float64({left}) / np.float64({right}))"
        return f"({left} {expr.op} {right})"
    if isinstance(expr, Comparison):
        left = to_source(expr.left, scope_var)
        right = to_source(expr.right, scope_var)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, BooleanOp):
        joiner = f" {_PY_BOOL_OPS[expr.op]} "
        parts = [f"({to_source(operand, scope_var)})" for operand in expr.operands]
        return "(" + joiner.join(parts) + ")"
    if isinstance(expr, Not):
        return f"(~({to_source(expr.operand, scope_var)}))"
    if isinstance(expr, Between):
        operand = to_source(expr.operand, scope_var)
        low = to_source(expr.low, scope_var)
        high = to_source(expr.high, scope_var)
        return f"(({operand} >= {low}) & ({operand} <= {high}))"
    if isinstance(expr, InList):
        operand = to_source(expr.operand, scope_var)
        values = ", ".join(repr(option.value) for option in expr.options)
        return f"np.isin({operand}, np.array([{values}]))"
    raise ExpressionError(f"cannot generate code for {type(expr).__name__}")
