"""Expression trees for predicates and projections.

The query compiler receives "a C++ object that describes the
primitive's functionality (e.g. a tree for an arithmetic expression)
and maps the semantics to fragments of OpenCL" (Section 4.3).  This is
that tree, in Python.  Expressions are immutable; helper constructors
and operator overloads give a fluent way to build them:

    (col("lo_quantity") >= 25) & (col("lo_discount").between(1, 3))
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExpressionError

_ARITHMETIC_OPS = {"+", "-", "*", "/", "//", "%"}
_COMPARISON_OPS = {"==", "!=", "<", "<=", ">", ">="}
_BOOLEAN_OPS = {"and", "or"}


@dataclass(frozen=True)
class Expr:
    """Base class for all expression nodes."""

    def __add__(self, other) -> "Expr":
        return BinaryOp("+", self, wrap(other))

    def __radd__(self, other) -> "Expr":
        return BinaryOp("+", wrap(other), self)

    def __sub__(self, other) -> "Expr":
        return BinaryOp("-", self, wrap(other))

    def __rsub__(self, other) -> "Expr":
        return BinaryOp("-", wrap(other), self)

    def __mul__(self, other) -> "Expr":
        return BinaryOp("*", self, wrap(other))

    def __rmul__(self, other) -> "Expr":
        return BinaryOp("*", wrap(other), self)

    def __truediv__(self, other) -> "Expr":
        return BinaryOp("/", self, wrap(other))

    def __floordiv__(self, other) -> "Expr":
        return BinaryOp("//", self, wrap(other))

    def __mod__(self, other) -> "Expr":
        return BinaryOp("%", self, wrap(other))

    def __eq__(self, other):  # type: ignore[override]
        return Comparison("==", self, wrap(other))

    def __ne__(self, other):  # type: ignore[override]
        return Comparison("!=", self, wrap(other))

    def __lt__(self, other) -> "Expr":
        return Comparison("<", self, wrap(other))

    def __le__(self, other) -> "Expr":
        return Comparison("<=", self, wrap(other))

    def __gt__(self, other) -> "Expr":
        return Comparison(">", self, wrap(other))

    def __ge__(self, other) -> "Expr":
        return Comparison(">=", self, wrap(other))

    def __and__(self, other) -> "Expr":
        return BooleanOp("and", (self, wrap(other)))

    def __or__(self, other) -> "Expr":
        return BooleanOp("or", (self, wrap(other)))

    def __invert__(self) -> "Expr":
        return Not(self)

    def __hash__(self) -> int:
        return object.__hash__(self)

    def between(self, low, high) -> "Expr":
        return Between(self, wrap(low), wrap(high))

    def isin(self, values) -> "Expr":
        return InList(self, tuple(wrap(value) for value in values))

    # ------------------------------------------------------------------
    def children(self) -> tuple["Expr", ...]:
        return ()

    def size(self) -> int:
        """Node count — the per-element instruction estimate."""
        return 1 + sum(child.size() for child in self.children())

    def columns(self) -> set[str]:
        """Names of all columns referenced by this expression."""
        names: set[str] = set()
        _collect_columns(self, names)
        return names


@dataclass(frozen=True, eq=False)
class ColumnRef(Expr):
    """A reference to a column of the pipeline's current scope."""

    name: str

    def __repr__(self) -> str:
        return f"col({self.name!r})"


@dataclass(frozen=True, eq=False)
class Literal(Expr):
    """A constant (int, float, bool, or string)."""

    value: object

    def __post_init__(self) -> None:
        if not isinstance(self.value, (int, float, bool, str)):
            raise ExpressionError(f"unsupported literal type {type(self.value).__name__}")

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


@dataclass(frozen=True, eq=False)
class BinaryOp(Expr):
    """Arithmetic between two sub-expressions."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC_OPS:
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=False)
class Comparison(Expr):
    """A comparison producing a boolean."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=False)
class BooleanOp(Expr):
    """Conjunction or disjunction of boolean sub-expressions."""

    op: str
    operands: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.op not in _BOOLEAN_OPS:
            raise ExpressionError(f"unknown boolean operator {self.op!r}")
        if len(self.operands) < 2:
            raise ExpressionError(f"{self.op} needs at least two operands")

    def children(self) -> tuple[Expr, ...]:
        return self.operands

    def __repr__(self) -> str:
        joiner = f" {self.op} "
        return "(" + joiner.join(repr(operand) for operand in self.operands) + ")"


@dataclass(frozen=True, eq=False)
class Not(Expr):
    """Boolean negation."""

    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"not {self.operand!r}"


@dataclass(frozen=True, eq=False)
class Between(Expr):
    """``low <= expr <= high`` (inclusive, as in SQL)."""

    operand: Expr
    low: Expr
    high: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand, self.low, self.high)

    def __repr__(self) -> str:
        return f"{self.operand!r} between {self.low!r} and {self.high!r}"


@dataclass(frozen=True, eq=False)
class InList(Expr):
    """``expr IN (v1, v2, ...)`` over literal values."""

    operand: Expr
    options: tuple[Expr, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.options:
            raise ExpressionError("IN list must not be empty")
        if not all(isinstance(option, Literal) for option in self.options):
            raise ExpressionError("IN list entries must be literals")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand, *self.options)

    def __repr__(self) -> str:
        options = ", ".join(repr(option) for option in self.options)
        return f"{self.operand!r} in ({options})"


def col(name: str) -> ColumnRef:
    """Shorthand constructor for a column reference."""
    return ColumnRef(name)


def lit(value) -> Literal:
    """Shorthand constructor for a literal."""
    return Literal(value)


def wrap(value) -> Expr:
    """Coerce plain Python values into literals."""
    if isinstance(value, Expr):
        return value
    return Literal(value)


def all_of(*predicates: Expr) -> Expr:
    """Conjunction of one or more predicates (flattens the trivial case)."""
    flat = [predicate for predicate in predicates if predicate is not None]
    if not flat:
        raise ExpressionError("all_of needs at least one predicate")
    if len(flat) == 1:
        return flat[0]
    return BooleanOp("and", tuple(flat))


def _collect_columns(expr: Expr, names: set[str]) -> None:
    if isinstance(expr, ColumnRef):
        names.add(expr.name)
    for child in expr.children():
        _collect_columns(child, names)
