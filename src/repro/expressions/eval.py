"""Vectorized evaluation of (string-resolved) expression trees."""

from __future__ import annotations

import numpy as np

from ..errors import ExpressionError
from .expr import (
    Between,
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    Not,
)


def evaluate(expr: Expr, scope: dict[str, np.ndarray]) -> np.ndarray:
    """Evaluate ``expr`` over a scope of equal-length numpy arrays.

    String predicates must have been rewritten to code comparisons with
    :func:`repro.expressions.resolve.resolve_strings` first; a leftover
    string literal raises :class:`ExpressionError`.
    """
    if isinstance(expr, ColumnRef):
        try:
            return scope[expr.name]
        except KeyError:
            known = ", ".join(sorted(scope))
            raise ExpressionError(
                f"column {expr.name!r} not in scope; available: {known}"
            ) from None
    if isinstance(expr, Literal):
        if isinstance(expr.value, str):
            raise ExpressionError(
                f"unresolved string literal {expr.value!r}; run resolve_strings first"
            )
        return np.asarray(expr.value)
    if isinstance(expr, BinaryOp):
        left = evaluate(expr.left, scope)
        right = evaluate(expr.right, scope)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return np.asarray(left, dtype=np.float64) / np.asarray(right, dtype=np.float64)
        if expr.op == "//":
            return left // right
        if expr.op == "%":
            return left % right
        raise ExpressionError(f"unknown arithmetic operator {expr.op!r}")
    if isinstance(expr, Comparison):
        left = evaluate(expr.left, scope)
        right = evaluate(expr.right, scope)
        if expr.op == "==":
            return left == right
        if expr.op == "!=":
            return left != right
        if expr.op == "<":
            return left < right
        if expr.op == "<=":
            return left <= right
        if expr.op == ">":
            return left > right
        if expr.op == ">=":
            return left >= right
        raise ExpressionError(f"unknown comparison operator {expr.op!r}")
    if isinstance(expr, BooleanOp):
        result = evaluate(expr.operands[0], scope).astype(bool)
        for operand in expr.operands[1:]:
            value = evaluate(operand, scope).astype(bool)
            result = (result & value) if expr.op == "and" else (result | value)
        return result
    if isinstance(expr, Not):
        return ~evaluate(expr.operand, scope).astype(bool)
    if isinstance(expr, Between):
        operand = evaluate(expr.operand, scope)
        low = evaluate(expr.low, scope)
        high = evaluate(expr.high, scope)
        return (operand >= low) & (operand <= high)
    if isinstance(expr, InList):
        operand = evaluate(expr.operand, scope)
        options = np.array([option.value for option in expr.options])
        return np.isin(operand, options)
    raise ExpressionError(f"cannot evaluate expression node {type(expr).__name__}")
