"""Result-type inference for expressions."""

from __future__ import annotations

import numpy as np

from ..errors import ExpressionError
from ..storage.dtypes import DType, common_numeric_type
from .expr import (
    Between,
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    Not,
)

_INT32_MIN = np.iinfo(np.int32).min
_INT32_MAX = np.iinfo(np.int32).max


def infer_dtype(expr: Expr, schema: dict[str, DType]) -> DType:
    """The storage type an expression's result column will have.

    ``schema`` maps column names to their declared types.  Division
    always yields FLOAT64 (SQL decimal semantics); comparisons and
    boolean operators yield BOOL.
    """
    if isinstance(expr, ColumnRef):
        try:
            return schema[expr.name]
        except KeyError:
            known = ", ".join(sorted(schema))
            raise ExpressionError(
                f"column {expr.name!r} not in schema; available: {known}"
            ) from None
    if isinstance(expr, Literal):
        value = expr.value
        if isinstance(value, bool):
            return DType.BOOL
        if isinstance(value, int):
            if _INT32_MIN <= value <= _INT32_MAX:
                return DType.INT32
            return DType.INT64
        if isinstance(value, float):
            return DType.FLOAT64
        raise ExpressionError("string literals have no storage type; resolve them first")
    if isinstance(expr, BinaryOp):
        if expr.op == "/":
            return DType.FLOAT64
        # Floor division keeps integer typing (used for year extraction).
        left = infer_dtype(expr.left, schema)
        right = infer_dtype(expr.right, schema)
        if left is DType.STRING or right is DType.STRING:
            raise ExpressionError(f"arithmetic over string columns: {expr!r}")
        # DATE arithmetic degenerates to its int32 representation.
        left = DType.INT32 if left is DType.DATE else left
        right = DType.INT32 if right is DType.DATE else right
        return common_numeric_type(left, right)
    if isinstance(expr, (Comparison, BooleanOp, Not, Between, InList)):
        return DType.BOOL
    raise ExpressionError(f"cannot infer type of {type(expr).__name__}")
