"""Cross-engine validation: check your query on every micro model.

The paper's implicit contract is that micro execution models are
semantics-preserving — only row order may differ (Section 5.1). This
module makes that contract checkable for *your* queries:

    from repro.validation import verify_engines
    report = verify_engines(plan_or_sql, database)
    assert report.ok, report.describe()

It runs the query under every engine, compares row multisets with a
float tolerance (atomic reduction orders legitimately perturb low
bits), and reports per-engine metrics alongside the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .api import make_engine
from .engines.base import Engine, ExecutionResult
from .hardware.device import VirtualCoprocessor
from .hardware.profiles import GTX970, DeviceProfile
from .plan.logical import LogicalPlan
from .sql.translate import plan_sql
from .storage.database import Database
from .storage.table import rows_approx_equal

#: The default engine roster: all four GPU micro execution models.
DEFAULT_ENGINES = ("operator-at-a-time", "multipass", "pipelined", "resolution")


@dataclass
class EngineOutcome:
    """One engine's run: its result and whether it matched the reference."""

    engine: str
    result: ExecutionResult
    matches_reference: bool


@dataclass
class ValidationReport:
    """The verdict of a cross-engine validation run."""

    reference_engine: str
    outcomes: list[EngineOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.matches_reference for outcome in self.outcomes)

    @property
    def disagreeing(self) -> list[str]:
        return [o.engine for o in self.outcomes if not o.matches_reference]

    def describe(self) -> str:
        lines = [
            f"reference: {self.reference_engine} "
            f"({self.outcomes[0].result.table.num_rows if self.outcomes else 0} rows)"
        ]
        for outcome in self.outcomes:
            verdict = "ok" if outcome.matches_reference else "MISMATCH"
            lines.append(
                f"  {outcome.engine:<22s} {verdict:<9s} "
                f"kernels {outcome.result.kernel_ms:8.4f} ms   "
                f"global {outcome.result.global_memory_bytes / 1e6:8.2f} MB"
            )
        return "\n".join(lines)


def verify_engines(
    query: LogicalPlan | str,
    database: Database,
    engines=DEFAULT_ENGINES,
    device_profile: DeviceProfile = GTX970,
    rel_tol: float = 1e-4,
    abs_tol: float = 1e-2,
    seed: int = 42,
) -> ValidationReport:
    """Run ``query`` under every engine and compare row multisets.

    ``engines`` is a sequence of engine aliases (see
    ``repro.api.ENGINE_FACTORIES``) or :class:`Engine` instances; the
    first is the reference. Each engine gets a fresh virtual device.
    """
    if isinstance(query, str):
        plan = plan_sql(query, database)
    else:
        plan = query
    if not engines:
        raise ValueError("need at least one engine")

    resolved: list[Engine] = [
        engine if isinstance(engine, Engine) else make_engine(engine)
        for engine in engines
    ]
    report = ValidationReport(reference_engine=resolved[0].name)
    reference_rows = None
    for engine in resolved:
        result = engine.execute(
            plan, database, VirtualCoprocessor(device_profile), seed=seed
        )
        rows = result.table.sorted_rows()
        if reference_rows is None:
            reference_rows = rows
            matches = True
        else:
            matches = rows_approx_equal(reference_rows, rows, rel_tol, abs_tol)
        report.outcomes.append(
            EngineOutcome(engine=engine.name, result=result, matches_reference=matches)
        )
    return report
