"""Streaming batch-processing executor (Experiment 5, Figure 21).

Integrates a compound-kernel micro execution model with the batch
processing macro execution model: dimension pipelines run run-to-finish
(their hash tables stay resident in GPU global memory), then the fact
pipeline streams through the device in blocks.  Blocks are transferred
asynchronously, so the streaming phase's end-to-end time is the larger
of total transfer time and total kernel time, plus a per-block
scheduling overhead — which is why 0.5 MB blocks lag and >= 2 MB blocks
saturate PCIe in Figure 21.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engines.base import _cast_outputs
from ..engines.compound import CompoundEngine
from ..engines.runtime import QueryRuntime
from ..errors import PlanError
from ..hardware.device import VirtualCoprocessor
from ..kernels.codegen import generate_compound_kernel
from ..kernels.context import KernelContext
from ..plan.logical import LogicalPlan
from ..plan.physical import AggregateSink, MaterializeSink, PhysicalQuery, Pipeline
from ..plan.pipelines import extract_pipelines
from ..scaleout.merge import merge_partials
from ..storage.database import Database
from ..storage.table import Table

#: Per-block scheduling overhead (async copy enqueue + sync), seconds.
BLOCK_OVERHEAD = 20e-6


@dataclass
class BatchResult:
    """Timing breakdown of a streamed batch-processing execution."""

    table: Table
    block_bytes: int
    num_blocks: int
    build_ms: float
    stream_transfer_ms: float
    stream_kernel_ms: float
    overhead_ms: float
    input_bytes: int
    output_bytes: int
    peak_device_bytes: int
    #: Residency outcome (:class:`repro.placement.QueryPlacement`) when
    #: a buffer pool was attached to the device, else ``None``.
    placement: object | None = None
    #: Wire-compression accounting
    #: (:class:`repro.compression.CompressionStats`) when a compression
    #: policy was active, else ``None``.
    compression: object | None = None

    @property
    def stream_ms(self) -> float:
        """Streaming phase with transfer/compute overlap."""
        return max(self.stream_transfer_ms, self.stream_kernel_ms) + self.overhead_ms

    @property
    def end_to_end_ms(self) -> float:
        return self.build_ms + self.stream_ms


class BatchExecutor:
    """Run a query with resident hash tables + a streamed fact pipeline."""

    def __init__(self, block_bytes: int = 2 * 1024 * 1024, mode: str = "lrgp_simd"):
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        self.block_bytes = block_bytes
        self.engine = CompoundEngine(mode)

    # ------------------------------------------------------------------
    def execute(
        self,
        plan: LogicalPlan | PhysicalQuery,
        database: Database,
        device: VirtualCoprocessor,
        seed: int = 42,
    ) -> BatchResult:
        if isinstance(plan, PhysicalQuery):
            query = plan
        else:
            query = extract_pipelines(plan, database)
        final = query.final_pipeline
        if final.source_is_virtual:
            raise PlanError(
                "batch streaming requires the final pipeline to scan a base "
                "table (stream the fact table, keep dimensions resident)"
            )

        pool = device.placement_pool
        if pool is None:
            device.reset_all()
        else:
            device.begin_query()
        runtime = QueryRuntime(device, database, seed=seed, pool=pool)
        try:
            # Phase 1: dimension pipelines, run-to-finish.  With a pool
            # attached, dimension columns become (and may stay)
            # device-resident; the streamed fact blocks below never do.
            for pipeline in query.pipelines[:-1]:
                produced = self.engine.execute_pipeline(pipeline, runtime)
                if pipeline.output_schema is not None and produced is not None:
                    runtime.register_virtual(
                        pipeline.output_name,
                        _cast_outputs(produced, pipeline.output_schema),
                        pipeline.output_schema,
                    )
            build_ms = device.log.total_time_ms
            build_marker_kernels = len(device.log.kernels)
            build_marker_transfers = len(device.log.transfers)
            build_input_bytes = runtime.input_bytes

            # Phase 2: stream the fact pipeline in blocks.
            table = database.table(final.source)
            rows_per_block = self._rows_per_block(final, table)
            total_rows = table.num_rows
            num_blocks = max(1, -(-total_rows // rows_per_block))

            partials: list[dict[str, np.ndarray]] = []
            counts: list[int] = []
            stream_input_bytes = 0
            peak = device.allocated_bytes
            for index in range(num_blocks):
                start = index * rows_per_block
                stop = min(start + rows_per_block, total_rows)
                scope = {}
                block_nbytes = 0
                block_wire = 0
                policy = runtime.compression
                for name in final.required_columns:
                    base = final.source_rename.get(name, name)
                    column = table.column(base)
                    values = column.values[start:stop]
                    scope[name] = values
                    block_nbytes += values.nbytes
                    if policy is not None:
                        # Each block slice ships in the column's chosen
                        # codec — exact per-block wire bytes.
                        encoded = policy.encode_slice(column, start, stop)
                        block_wire += encoded.wire_nbytes
                        runtime.compression_stats().record(
                            values.nbytes, encoded.wire_nbytes, encoded.codec
                        )
                if policy is not None and block_wire < block_nbytes:
                    device.record_stream_transfer(
                        block_wire,
                        "h2d",
                        label=f"block{index}",
                        raw_nbytes=block_nbytes,
                        codec="block",
                    )
                    # One decompression kernel covers the whole block.
                    runtime.charge_decode_raw(
                        block_wire,
                        block_nbytes,
                        stop - start,
                        f"block{index}",
                        "block",
                    )
                    stream_input_bytes += block_wire
                else:
                    device.record_stream_transfer(
                        block_nbytes, "h2d", label=f"block{index}"
                    )
                    stream_input_bytes += block_nbytes

                ctx = KernelContext(
                    runtime,
                    scope,
                    final.scope_schema,
                    mode=self.engine.mode,
                    sink=final.sink,
                    output_schema=final.output_schema,
                    rows=stop - start,
                )
                kernel = generate_compound_kernel(final)
                kernel(ctx)
                device.launch(f"{kernel.name}.block{index}", "compound", ctx.n, ctx.meter)
                partials.append(dict(ctx.outputs))
                if policy is not None:
                    self._ship_partial(
                        ctx.outputs, index, runtime, device, policy
                    )
                counts.append(
                    ctx.aggregation.inputs if ctx.aggregation is not None else 0
                )
                peak = max(peak, device.allocated_bytes + block_nbytes)

            merged = self._merge_partials(final, partials, counts)
            runtime.input_bytes = build_input_bytes + stream_input_bytes
            result_table = runtime.finalize(query, merged)

            stream_kernels = device.log.kernels[build_marker_kernels:]
            stream_transfers = device.log.transfers[build_marker_transfers:]
            stream_kernel_ms = sum(trace.time_ms for trace in stream_kernels)
            stream_transfer_ms = sum(record.time_ms for record in stream_transfers)
            return BatchResult(
                table=result_table,
                block_bytes=self.block_bytes,
                num_blocks=num_blocks,
                build_ms=build_ms,
                stream_transfer_ms=stream_transfer_ms,
                stream_kernel_ms=stream_kernel_ms,
                overhead_ms=num_blocks * BLOCK_OVERHEAD * 1e3,
                input_bytes=runtime.input_bytes,
                output_bytes=runtime.output_bytes,
                peak_device_bytes=peak,
                placement=runtime.query_placement(),
                compression=runtime.compression_stats(),
            )
        finally:
            runtime.close()

    # ------------------------------------------------------------------
    def _ship_partial(
        self,
        outputs: dict,
        index: int,
        runtime: QueryRuntime,
        device: VirtualCoprocessor,
        policy,
    ) -> None:
        """Ship one block's partial columns d2h as wire images.

        Mirrors the scale-out gather: columns that clear the wire-ratio
        gate pay a device-side encode kernel and cross the link
        compressed; the decode happens during the host merge
        (``host_decode_bytes``), never on the device.  Without a policy
        the partials stay un-charged, exactly as before compression
        existed (the plain-mode timing baselines depend on it).
        """
        stats = runtime.compression_stats()
        for name, values in outputs.items():
            arr = np.asarray(values)
            if arr.nbytes == 0:
                continue
            encoded = policy.encode_array(arr)
            label = f"partial.block{index}.{name}"
            if (
                encoded is not None
                and encoded.codec != "passthrough"
                and encoded.wire_nbytes < arr.nbytes
            ):
                runtime._charge_encode(encoded, label)
                device.record_stream_transfer(
                    encoded.wire_nbytes,
                    "d2h",
                    label=label,
                    raw_nbytes=arr.nbytes,
                    codec=encoded.codec,
                )
                if stats is not None:
                    stats.record(arr.nbytes, encoded.wire_nbytes, encoded.codec)
                    stats.host_decode_bytes += arr.nbytes
            else:
                device.record_stream_transfer(arr.nbytes, "d2h", label=label)
                if stats is not None:
                    stats.record(arr.nbytes, arr.nbytes, "passthrough")

    # ------------------------------------------------------------------
    def _rows_per_block(self, pipeline: Pipeline, table) -> int:
        """Rows such that each column block is ~block_bytes (the paper
        partitions each column into fixed-size blocks)."""
        widths = [
            table.column(pipeline.source_rename.get(name, name)).itemsize
            for name in pipeline.required_columns
        ]
        width = max(widths) if widths else 4
        return max(1, self.block_bytes // width)

    # ------------------------------------------------------------------
    def _merge_partials(
        self,
        pipeline: Pipeline,
        partials: list[dict[str, np.ndarray]],
        counts: list[int],
    ) -> dict[str, np.ndarray]:
        """Combine per-block outputs via the shared partial-merge layer
        (:mod:`repro.scaleout.merge`), which the scale-out executor
        uses too; ``counts`` (qualifying rows per block) keep empty
        blocks' min/max placeholders out of the merge."""
        sink = pipeline.sink
        if not isinstance(sink, (MaterializeSink, AggregateSink)):
            raise PlanError("batch streaming supports materialize and aggregate sinks")
        if isinstance(sink, AggregateSink):
            assert pipeline.output_schema is not None
        return merge_partials(
            sink, pipeline.output_schema, partials, counts=counts, context="blocks"
        )


def execute_out_of_core(
    plan: LogicalPlan | PhysicalQuery,
    database: Database,
    device: VirtualCoprocessor,
    seed: int = 42,
    block_bytes: int = 2 * 1024 * 1024,
    mode: str = "lrgp_simd",
):
    """Run a query whose working set exceeds device memory by streaming,
    packaged as an ordinary :class:`~repro.engines.base.ExecutionResult`.

    This is the automatic fallback target of
    :func:`repro.placement.execute_with_placement`: dimension pipelines
    run run-to-finish (their hash tables resident), the fact pipeline
    streams through the device in ``block_bytes`` blocks, and the
    result's ``placement`` records ``out_of_core=True``.
    """
    from ..engines.base import ExecutionResult
    from ..placement.stats import QueryPlacement

    executor = BatchExecutor(block_bytes=block_bytes, mode=mode)
    batch = executor.execute(plan, database, device, seed=seed)
    inner = batch.placement
    placement = QueryPlacement(
        hits=inner.hits if inner is not None else 0,
        misses=inner.misses if inner is not None else 0,
        hit_bytes=inner.hit_bytes if inner is not None else 0,
        transferred_bytes=batch.input_bytes,
        out_of_core=True,
    )
    return ExecutionResult(
        table=batch.table,
        profile=device.log,
        engine=f"batch[{mode}]",
        device_name=device.profile.name,
        input_bytes=batch.input_bytes,
        output_bytes=batch.output_bytes,
        pcie_ms=device.pcie_baseline_ms(batch.input_bytes, batch.output_bytes),
        memory_bound_ms=device.memory_bound_ms(
            batch.input_bytes + batch.output_bytes
        ),
        placement=placement,
        compression=batch.compression,
    )
