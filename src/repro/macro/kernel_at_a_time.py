"""A real kernel-at-a-time executor (Figure 3), not just the analysis.

"To process large data on coprocessors, we can execute each kernel on
blocks of data ... Blocks are first moved via PCIe from the host to
the coprocessor and then read by the kernel from GPU global memory
(output passes both levels vice-versa)" (Section 2.2).

This executor runs the operator-at-a-time micro model on a device
whose launcher streams every kernel's non-hash-table I/O over the PCIe
link: kernel inputs arrive host→device right before the launch, kernel
outputs return device→host right after. Hash-table state (builds,
probes, aggregation tables) stays resident, exactly as the paper's
accounting assumes. The result is an end-to-end time where PCIe
dominates — Figure 5a's ~350 ms vs ~58 ms story, executable.
"""

from __future__ import annotations

from ..engines.base import ExecutionResult
from ..engines.operator_at_a_time import OperatorAtATimeEngine
from ..hardware.device import VirtualCoprocessor
from ..hardware.traffic import KernelTrace, MemoryLevel, TrafficMeter
from ..plan.logical import LogicalPlan
from ..storage.database import Database


class _StreamingDevice(VirtualCoprocessor):
    """A device that moves each kernel's I/O over PCIe (Figure 3)."""

    def transfer_to_device(self, array, label: str = ""):
        # No up-front column transfers in this model: the first kernel
        # that reads a column streams it (charged at launch below).
        return self.allocate(array, label=label)

    def launch(
        self,
        name: str,
        kind: str,
        elements: int,
        meter: TrafficMeter,
        occupancy: float = 1.0,
    ) -> KernelTrace:
        h2d = meter.reads[MemoryLevel.GLOBAL] - meter.table_read_bytes
        d2h = meter.writes[MemoryLevel.GLOBAL] - meter.table_write_bytes
        if h2d > 0:
            self.record_stream_transfer(h2d, "h2d", label=f"{name}.in")
        trace = super().launch(name, kind, elements, meter, occupancy=occupancy)
        if d2h > 0:
            self.record_stream_transfer(d2h, "d2h", label=f"{name}.out")
        return trace


class KernelAtATimeExecutor:
    """Operator-at-a-time with per-kernel PCIe streaming (Figure 3).

    Only hash tables persist on the device, so scalability is bounded
    by their size alone — the model's advantage — while every other
    byte crosses the link once per kernel — its downfall.
    """

    name = "kernel-at-a-time"

    def __init__(self):
        self._engine = OperatorAtATimeEngine()

    def execute(
        self,
        plan: LogicalPlan,
        database: Database,
        device: VirtualCoprocessor,
        seed: int = 42,
    ) -> ExecutionResult:
        streaming = _StreamingDevice(device.profile, interconnect=device.interconnect)
        result = self._engine.execute(plan, database, streaming, seed=seed)
        return ExecutionResult(
            table=result.table,
            profile=streaming.log,
            engine=self.name,
            device_name=device.profile.name,
            input_bytes=result.input_bytes,
            output_bytes=result.output_bytes,
            pcie_ms=result.pcie_ms,
            memory_bound_ms=result.memory_bound_ms,
            trace=result.trace,
        )
