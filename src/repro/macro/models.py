"""Macro execution models (Section 2): how data moves host <-> device.

Three models from the paper:

* **run-to-finish** — transfer all inputs, run all kernels, transfer
  the output.  Simple but capacity-limited (Figure 2).  This is what
  the engines do natively; :func:`run_to_finish` is the explicit entry
  point and is where :class:`DeviceMemoryError` surfaces at scale.
* **kernel-at-a-time** — every kernel streams its inputs and outputs
  over PCIe (Figure 3).  We derive its data-movement profile from a
  run-to-finish execution: per-kernel I/O becomes PCIe traffic, except
  hash-table accesses, which stay device-resident (Section 2.2).
* **batch processing** — blocks cross PCIe once and multiple kernels
  run per block (Figure 4); intermediates short-circuit on the device.  PCIe
  traffic shrinks to input columns + final output.  The streaming
  executor for Experiment 5 lives in :mod:`repro.macro.batch`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engines.base import Engine, ExecutionResult
from ..hardware.device import VirtualCoprocessor
from ..hardware.traffic import MemoryLevel
from ..plan.logical import LogicalPlan
from ..storage.database import Database


@dataclass
class MacroMovement:
    """Data movement of one macro model for one query (Figure 5 rows)."""

    model: str
    pcie_bytes: int
    pcie_ms: float
    global_bytes: int
    global_ms: float

    def row(self) -> str:
        return (
            f"{self.model:<18s} PCIe {self.pcie_bytes / 1e9:7.3f} GB "
            f"~{self.pcie_ms:8.2f} ms   GPU global {self.global_bytes / 1e9:7.3f} GB "
            f"~{self.global_ms:8.2f} ms"
        )


def run_to_finish(
    engine: Engine,
    plan: LogicalPlan,
    database: Database,
    device: VirtualCoprocessor,
) -> ExecutionResult:
    """Execute with the run-to-finish macro model (Figure 2).

    All inputs are transferred up front (implicitly, on first use),
    intermediates stay in device memory, and the result returns at the
    end.  Raises :class:`~repro.errors.DeviceMemoryError` when the data
    no longer fits — the paper's scalability argument.
    """
    return engine.execute(plan, database, device)


def kernel_at_a_time_movement(
    result: ExecutionResult, device: VirtualCoprocessor
) -> MacroMovement:
    """Derive the kernel-at-a-time data movement from a profile.

    "The data volumes for GPU global memory accesses equal the data
    volume transferred via PCIe, plus the cost to build up the hash
    tables in GPU global memory" (Section 2.2).  We therefore count
    every kernel's non-hash-table I/O as PCIe traffic.
    """
    profile = result.profile
    global_bytes = profile.bytes_at(MemoryLevel.GLOBAL)
    pcie_bytes = global_bytes - profile.table_bytes
    pcie_ms = _pcie_ms(device, pcie_bytes)
    return MacroMovement(
        model="kernel-at-a-time",
        pcie_bytes=pcie_bytes,
        pcie_ms=pcie_ms,
        global_bytes=global_bytes,
        global_ms=device.memory_bound_ms(global_bytes),
    )


def batch_processing_movement(
    result: ExecutionResult, device: VirtualCoprocessor
) -> MacroMovement:
    """Derive the batch-processing data movement from a profile.

    PCIe carries only the input columns and the final result; GPU
    global memory sees the same per-kernel traffic as kernel-at-a-time
    (Section 2.3: "the amount of GPU global memory access remains
    unaffected").
    """
    profile = result.profile
    pcie_bytes = result.input_bytes + result.output_bytes
    return MacroMovement(
        model="batch processing",
        pcie_bytes=pcie_bytes,
        pcie_ms=_pcie_ms(device, pcie_bytes),
        global_bytes=profile.bytes_at(MemoryLevel.GLOBAL),
        global_ms=device.memory_bound_ms(profile.bytes_at(MemoryLevel.GLOBAL)),
    )


def _pcie_ms(device: VirtualCoprocessor, nbytes: int) -> float:
    if device.interconnect is None:
        return device.memory_bound_ms(nbytes)
    # Assume a balanced split across the two directions is impossible:
    # kernel I/O alternates, so charge the unidirectional rate.
    return nbytes / (device.interconnect.h2d_bandwidth * 1e9) * 1e3
