"""Macro execution models: run-to-finish, kernel-at-a-time, batch."""

from .batch import BLOCK_OVERHEAD, BatchExecutor, BatchResult
from .kernel_at_a_time import KernelAtATimeExecutor
from .models import (
    MacroMovement,
    batch_processing_movement,
    kernel_at_a_time_movement,
    run_to_finish,
)

__all__ = [
    "BLOCK_OVERHEAD",
    "BatchExecutor",
    "BatchResult",
    "KernelAtATimeExecutor",
    "MacroMovement",
    "batch_processing_movement",
    "kernel_at_a_time_movement",
    "run_to_finish",
]
