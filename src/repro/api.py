"""High-level convenience API.

    from repro import api
    from repro.workloads import generate_ssb

    session = api.connect(generate_ssb(0.01))
    result = session.execute("select sum(lo_revenue) as r from lineorder")
    print(result.table.to_rows(), result.kernel_ms)

A :class:`Session` bundles a database, a virtual device, and an engine
choice; ``execute`` accepts SQL text or a logical plan.
"""

from __future__ import annotations

from .engines.base import Engine, ExecutionResult
from .engines.compound import CompoundEngine
from .engines.cpu_engine import CpuOperatorAtATimeEngine
from .engines.multipass import MultiPassEngine
from .engines.operator_at_a_time import OperatorAtATimeEngine
from .engines.vector_at_a_time import VectorAtATimeEngine
from .errors import ReproError
from .hardware.device import VirtualCoprocessor
from .hardware.interconnect import PCIE3, Interconnect
from .hardware.profiles import GTX970, DeviceProfile, get_profile
from .plan.logical import LogicalPlan
from .plan.pipelines import extract_pipelines
from .sql.translate import plan_sql
from .storage.database import Database

#: Engine aliases accepted by :meth:`Session.execute`.
ENGINE_FACTORIES = {
    "operator-at-a-time": OperatorAtATimeEngine,
    "multipass": MultiPassEngine,
    "pipelined": lambda: CompoundEngine("atomic"),
    "resolution": lambda: CompoundEngine("lrgp_simd"),
    "resolution-simd": lambda: CompoundEngine("lrgp_simd"),
    "resolution-we": lambda: CompoundEngine("lrgp_we"),
    "cpu": CpuOperatorAtATimeEngine,
    "vector": VectorAtATimeEngine,
}


def make_engine(name: str) -> Engine:
    """Instantiate an engine by alias (see :data:`ENGINE_FACTORIES`)."""
    try:
        factory = ENGINE_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(ENGINE_FACTORIES))
        raise ReproError(f"unknown engine {name!r}; known engines: {known}") from None
    return factory()


class Session:
    """A database bound to a virtual coprocessor and a default engine."""

    def __init__(
        self,
        database: Database,
        device: VirtualCoprocessor | DeviceProfile | str = GTX970,
        engine: Engine | str = "resolution",
        interconnect: Interconnect = PCIE3,
    ):
        self.database = database
        if isinstance(device, str):
            device = get_profile(device)
        if isinstance(device, DeviceProfile):
            device = VirtualCoprocessor(device, interconnect=interconnect)
        self.device = device
        self.engine = make_engine(engine) if isinstance(engine, str) else engine

    # ------------------------------------------------------------------
    def plan(self, query: str | LogicalPlan) -> LogicalPlan:
        """Parse SQL into a logical plan (plans pass through)."""
        if isinstance(query, LogicalPlan):
            return query
        return plan_sql(query, self.database)

    def explain(self, query: str | LogicalPlan) -> str:
        """The fusion-operator decomposition of a query (pipelines +
        host post-processing), one line per pipeline."""
        physical = extract_pipelines(self.plan(query), self.database)
        return physical.describe()

    def execute(
        self,
        query: str | LogicalPlan,
        engine: Engine | str | None = None,
        seed: int = 42,
    ) -> ExecutionResult:
        """Run a query; returns the result table plus all metrics."""
        chosen = self.engine
        if engine is not None:
            chosen = make_engine(engine) if isinstance(engine, str) else engine
        return chosen.execute(self.plan(query), self.database, self.device, seed=seed)


def connect(
    database: Database,
    device: VirtualCoprocessor | DeviceProfile | str = GTX970,
    engine: Engine | str = "resolution",
) -> Session:
    """Create a session (the one-line entry point)."""
    return Session(database, device=device, engine=engine)
