"""High-level convenience API.

    from repro import api
    from repro.workloads import generate_ssb

    session = api.connect(generate_ssb(0.01))
    result = session.execute("select sum(lo_revenue) as r from lineorder")
    print(result.table.to_rows(), result.kernel_ms)

A :class:`Session` bundles a database, a virtual device, and an engine
choice; ``execute`` accepts SQL text or a logical plan.
"""

from __future__ import annotations

import contextlib
import time
from typing import TYPE_CHECKING

from .engines import ENGINE_FACTORIES, make_engine
from .engines.base import Engine, ExecutionResult
from .hardware.device import VirtualCoprocessor
from .hardware.interconnect import PCIE3, Interconnect
from .hardware.profiles import GTX970, DeviceProfile, get_profile
from .kernels.codegen import begin_thread_compile_stats, thread_compile_stats
from .plan.logical import LogicalPlan
from .plan.pipelines import extract_pipelines
from .sql.translate import plan_sql
from .storage.database import Database
from .telemetry.events import (
    installed_log,
    new_query_id,
    query_scope,
    record_event,
)
from .telemetry.trace import Tracer, tracing_enabled

if TYPE_CHECKING:  # avoid the api -> serving -> api import cycle
    from .serving.plan_cache import PlanCache
    from .telemetry.metrics import MetricsRegistry
    from .telemetry.recorder import FlightRecorder

__all__ = ["ENGINE_FACTORIES", "Session", "connect", "make_engine"]


class Session:
    """A database bound to a virtual coprocessor and a default engine.

    Passing a :class:`~repro.serving.PlanCache` makes ``execute`` skip
    SQL parsing and pipeline extraction on repeat queries (the cache
    may be shared with a :class:`~repro.serving.Server` or with other
    sessions); cached executions carry their serving metrics in
    ``result.serving``.

    ``residency=True`` attaches a :class:`~repro.placement.BufferPool`
    to the session's device: base columns stay device-resident between
    queries (repeat loads skip the PCIe charge), and working sets
    larger than device memory transparently fall back to the streaming
    out-of-core executor.  Off by default so single-shot measurement
    sessions keep the paper's stateless reset-per-query semantics;
    the serving :class:`~repro.serving.Server` defaults it on.

    ``devices=N`` (N > 1) runs every query through the scale-out
    executor (:mod:`repro.scaleout`): the fact table is partitioned
    under ``partitioning`` (``"range"`` or ``"hash"``) across N
    simulated devices of the session's profile, partials are merged
    scatter-gather style, and results carry ``result.scaleout``
    accounting.  With ``residency=True`` each fleet device gets its
    own buffer pool (``session.pool`` stays ``None`` — the fleet owns
    residency; :meth:`placement_stats` aggregates across devices).

    ``fault_plan`` (a :class:`~repro.faults.FaultPlan`, a plan dict, or
    a path to a plan JSON file) arms deterministic fault injection on
    the scale-out executor; ``retry_policy`` tunes the per-morsel
    retry/backoff/timeout behaviour (see ``docs/fault-tolerance.md``).
    Arming a fault plan routes queries through the scale-out executor
    even at ``devices=1`` so the recovery ladder — including the host
    out-of-core fallback — stays reachable.

    ``engine="auto"`` and/or ``devices="auto"`` hand the corresponding
    decision to the adaptive cost-based optimizer
    (:mod:`repro.optimizer`, see ``docs/optimizer.md``): each query is
    planned over the strategy lattice (micro engine x run-to-finish
    vs. out-of-core x device count x placement) and executed on the
    cheapest feasible candidate; ``result.optimizer`` carries the full
    :class:`~repro.optimizer.OptimizerDecision`.  Dimensions you pin
    stay pinned — ``engine="auto", devices=2`` fixes the fleet size
    but lets the advisor pick the rest.  ``residency=True`` pins
    placement to ``pooled``.  Fault plans require pinned devices.

    ``compression="auto"`` turns on compression-aware transfers: each
    base column crosses the simulated link in its cheapest sampled
    codec and is decompressed by a generated kernel on device, so PCIe
    charges shrink while results stay byte-identical (see
    ``docs/compression.md``).  A codec name (``"rle"``, ``"forpack"``,
    ``"delta"``, ``"dictionary"``, ``"passthrough"``) pins that codec;
    ``"off"`` (default) keeps raw transfers.
    """

    def __init__(
        self,
        database: Database,
        device: VirtualCoprocessor | DeviceProfile | str = GTX970,
        engine: Engine | str = "resolution",
        interconnect: Interconnect = PCIE3,
        plan_cache: "PlanCache | None" = None,
        residency: bool = False,
        metrics: "MetricsRegistry | None" = None,
        devices: int | str = 1,
        partitioning: str = "range",
        fault_plan=None,
        retry_policy=None,
        recorder: "FlightRecorder | None" = None,
        compression: str = "off",
    ):
        from .compression import resolve_compression
        from .scaleout import validate_devices

        auto_engine = isinstance(engine, str) and engine == "auto"
        auto_devices = isinstance(devices, str)
        if auto_devices and devices != "auto":
            from .errors import ConfigurationError

            raise ConfigurationError(
                f"devices must be an integer >= 1 or 'auto', got {devices!r}"
            )
        if not auto_devices:
            validate_devices(devices)
        fault_plan = _coerce_fault_plan(fault_plan)
        if (auto_engine or auto_devices) and fault_plan is not None:
            from .errors import ConfigurationError

            raise ConfigurationError(
                "fault injection needs a pinned configuration; use an "
                "explicit engine and devices=N instead of 'auto'"
            )
        self.database = database
        #: Optional :class:`~repro.telemetry.FlightRecorder`; when set,
        #: every ``execute`` lands a flight record (and failures write a
        #: post-mortem bundle) under a per-query correlation id.
        self.recorder = recorder
        #: The engine alias as given (``None`` for Engine instances) —
        #: what post-mortem replay recipes record.
        self.engine_alias = engine if isinstance(engine, str) else None
        self._fault_plan = fault_plan
        self._retry_policy = retry_policy
        #: Optional :class:`~repro.telemetry.MetricsRegistry`; when set,
        #: every ``execute`` observes the session query-latency
        #: histogram and bumps ``repro_queries_total`` (the same metric
        #: names a :class:`~repro.serving.Server` exposes).
        self.metrics = metrics
        if isinstance(device, str):
            device = get_profile(device)
        if isinstance(device, DeviceProfile):
            device = VirtualCoprocessor(device, interconnect=interconnect)
        self.device = device
        #: Wire-compression policy (``None`` = off): base columns cross
        #: the simulated link compressed, decode kernels run on device,
        #: and results carry ``result.compression`` accounting.
        self.compression = resolve_compression(compression)
        self.device.compression = self.compression
        self.devices = devices
        self.partitioning = partitioning
        self.auto = None
        self.engine = None
        if auto_engine or auto_devices:
            from .errors import ConfigurationError
            from .optimizer import AutoExecutor

            if not auto_engine and not isinstance(engine, str):
                raise ConfigurationError(
                    "devices='auto' needs an engine alias (or 'auto'), "
                    "not an Engine instance; known engines: "
                    + ", ".join(sorted(ENGINE_FACTORIES))
                )
            if not auto_engine:
                make_engine(engine)  # validate the alias early
            self.auto = AutoExecutor(
                self.device.profile,
                interconnect=interconnect,
                engine=None if auto_engine else engine,
                devices=None if auto_devices else devices,
                partitioning=partitioning,
                placement="pooled" if residency else None,
                compression=self.compression,
            )
            self.plan_cache = plan_cache
            self.pool = None
            self.scaleout = None
            return
        self.engine = make_engine(engine) if isinstance(engine, str) else engine
        self.plan_cache = plan_cache
        self.pool = None
        self.scaleout = None
        if devices > 1 or fault_plan is not None:
            from .scaleout import ScaleOutExecutor

            self.scaleout = ScaleOutExecutor(
                devices,
                profile=self.device.profile,
                interconnect=interconnect,
                partitioning=partitioning,
                residency=residency,
                fault_plan=fault_plan,
                retry_policy=retry_policy,
                compression=self.compression,
            )
        elif residency:
            if self.device.placement_pool is not None:
                self.pool = self.device.placement_pool
            else:
                from .placement import BufferPool

                self.pool = BufferPool(self.device)

    # ------------------------------------------------------------------
    def plan(self, query: str | LogicalPlan) -> LogicalPlan:
        """Parse SQL into a logical plan (plans pass through)."""
        if isinstance(query, LogicalPlan):
            return query
        return plan_sql(query, self.database)

    def physical(self, query: str | LogicalPlan):
        """The extracted pipelines, via the plan cache when one is set."""
        if self.plan_cache is not None:
            physical, _hit = self.plan_cache.lookup(
                query, self.database, self._strategy_token(self.engine)
            )
            return physical
        return extract_pipelines(self.plan(query), self.database)

    def _strategy_token(self, chosen: "Engine | None") -> tuple | None:
        """Hashable execution-strategy identity for plan-cache keying.

        Pinned configurations all share ``None``: the physical plan is
        engine-independent, so a plan compiled for one pinned engine is
        reusable by every other.  Auto sessions get a distinct token so
        their entries (which carry a recorded optimizer strategy) never
        collide with pinned ones or with differently-pinned auto
        lattices."""
        if chosen is None and self.auto is not None:
            return (
                "auto",
                self.auto.pinned_engine,
                self.auto.pinned_devices,
                self.auto.partitioning,
                self.auto.pinned_placement,
            )
        return None

    def explain(
        self,
        query: str | LogicalPlan,
        analyze: bool = False,
        engine: Engine | str | None = None,
        seed: int = 42,
    ) -> str:
        """The fusion-operator decomposition of a query (pipelines +
        host post-processing), one line per pipeline.

        With ``analyze=True`` the query actually *runs* (with span
        tracing enabled) and the report shows per-pipeline rows in/out,
        kernels launched, per-level byte volumes, PCIe bytes, simulated
        vs host milliseconds, and cache/placement outcomes.

        On an ``engine="auto"`` session both variants additionally
        render the optimizer's decision: the ranked candidate lattice
        with predicted time/bytes per strategy (and, with ``analyze``,
        the observed time and prediction error).
        """
        if analyze:
            from .telemetry.explain import explain_analyze

            return explain_analyze(self, query, engine=engine, seed=seed)
        description = self.physical(query).describe()
        if self.auto is not None and engine is None:
            decision = self.auto.advise(self.physical(query), self.database)
            return f"{description}\n\noptimizer:\n{decision.render()}"
        return description

    def execute(
        self,
        query: str | LogicalPlan,
        engine: Engine | str | None = None,
        seed: int = 42,
    ) -> ExecutionResult:
        """Run a query; returns the result table plus all metrics.

        When tracing is enabled (:func:`repro.telemetry.tracing`) the
        result carries the full span tree on ``result.trace``,
        including the front-end ``plan`` span.
        """
        chosen = self.engine
        if engine is not None:
            if isinstance(engine, str) and engine == "auto":
                chosen = None  # route through the adaptive optimizer
            else:
                chosen = make_engine(engine) if isinstance(engine, str) else engine
        started = time.perf_counter()
        recorder = self.recorder
        flight = None
        if recorder is not None:
            alias = self.engine_alias
            if engine is not None and isinstance(engine, str):
                alias = engine
            flight = recorder.start(
                query,
                seed=seed,
                engine=alias,
                device=self.device.profile.name,
                devices=self.devices,
                partitioning=self.partitioning,
            )
            flight.note(seed=seed)
        # A correlation id whenever anything is listening: the flight's
        # when the recorder is on, a fresh one when only a bare event
        # log is installed.
        query_id = flight.query_id if flight is not None else (
            new_query_id() if installed_log() is not None else None
        )
        tracer = Tracer(api="session") if tracing_enabled() else None
        if tracer is not None and query_id is not None:
            tracer.root.attrs["query_id"] = query_id
        activation = tracer.activate() if tracer else contextlib.nullcontext()
        scope = query_scope(query_id)
        try:
            with scope, activation:
                result = self._execute_inner(chosen, query, seed, tracer)
        except BaseException as error:
            if recorder is not None:
                recorder.fail(
                    flight,
                    error,
                    trace=tracer.finish() if tracer is not None else None,
                    fault_plan=self._fault_plan,
                    retry_policy=self._retry_policy,
                )
            raise
        if tracer is not None:
            result.trace = tracer.finish()
        if recorder is not None:
            recorder.complete(flight, result)
        if self.metrics is not None:
            self.metrics.histogram(
                "repro_query_latency_ms",
                "End-to-end query latency (host wall clock, ms)",
            ).observe((time.perf_counter() - started) * 1e3)
            self.metrics.counter(
                "repro_queries_total", "Queries executed", status="completed"
            ).inc()
            if result.compression is not None:
                from .compression import observe_compression_metrics

                observe_compression_metrics(self.metrics, result.compression)
        return result

    def _execute_inner(
        self, chosen: "Engine | None", query, seed: int, tracer: "Tracer | None"
    ) -> ExecutionResult:
        if self.plan_cache is None:
            if tracer is None:
                plan = self.plan(query)
            else:
                with tracer.span("plan", "plan") as span:
                    plan = self.plan(query)
                    span.attrs["cache_hit"] = False
            record_event("query.planned", cache_hit=False)
            result = self._run(chosen, plan, seed)
            record_event("query.executed", status="ok")
            return result

        from .serving.stats import ServingStats

        token = self._strategy_token(chosen)
        plan_start = time.perf_counter()
        if tracer is None:
            physical, hit = self.plan_cache.lookup(query, self.database, token)
        else:
            with tracer.span("plan", "plan") as span:
                physical, hit = self.plan_cache.lookup(
                    query, self.database, token
                )
                span.attrs["cache_hit"] = hit
        plan_ms = (time.perf_counter() - plan_start) * 1e3
        record_event("query.planned", cache_hit=hit, plan_ms=round(plan_ms, 3))
        begin_thread_compile_stats()
        execute_start = time.perf_counter()
        result = self._run(chosen, physical, seed)
        execute_ms = (time.perf_counter() - execute_start) * 1e3
        record_event(
            "query.executed", status="ok", execute_ms=round(execute_ms, 3)
        )
        compile_hits, compile_misses, compile_ms = thread_compile_stats()
        result.serving = ServingStats(
            plan_cache_hit=hit,
            compile_hits=compile_hits,
            compile_misses=compile_misses,
            queue_wait_ms=0.0,
            plan_ms=plan_ms,
            compile_ms=compile_ms,
            execute_ms=execute_ms,
            worker=-1,
        )
        if isinstance(query, str) and result.optimizer is not None:
            self.plan_cache.record_strategy(
                query, self.database, token, result.optimizer.chosen
            )
        return result

    def _auto_executor(self):
        """The session's adaptive executor, created on demand for
        per-query ``engine="auto"`` overrides on pinned sessions."""
        if self.auto is None:
            from .optimizer import AutoExecutor

            self.auto = AutoExecutor(
                self.device.profile,
                interconnect=self.device.interconnect,
                partitioning=self.partitioning,
                compression=self.compression,
            )
        return self.auto

    def _run(self, chosen: "Engine | None", plan, seed: int) -> ExecutionResult:
        if chosen is None:
            auto = self._auto_executor()
            physical = (
                plan
                if not isinstance(plan, LogicalPlan)
                else extract_pipelines(plan, self.database)
            )
            result = auto.execute(physical, self.database, seed=seed)
            if self.metrics is not None:
                auto.observe_metrics(self.metrics)
            return result
        if self.scaleout is not None:
            physical = (
                plan
                if not isinstance(plan, LogicalPlan)
                else extract_pipelines(plan, self.database)
            )
            result = self.scaleout.execute(chosen, physical, self.database, seed=seed)
            if self.metrics is not None:
                self.scaleout.observe_metrics(self.metrics)
            return result
        if self.pool is not None:
            from .placement import execute_with_placement

            physical = (
                plan
                if not isinstance(plan, LogicalPlan)
                else extract_pipelines(plan, self.database)
            )
            return execute_with_placement(
                chosen, physical, self.database, self.device, seed=seed
            )
        return chosen.execute(plan, self.database, self.device, seed=seed)

    def placement_stats(self):
        """Residency counters (``None`` unless ``residency=True``).

        Scale-out sessions aggregate across the fleet's per-device
        pools; auto sessions report the adaptive executor's pool."""
        if self.auto is not None:
            return self.auto.placement_stats()
        if self.scaleout is not None:
            return self.scaleout.placement_stats()
        return self.pool.stats() if self.pool is not None else None

    def optimizer_decision(self, query: str | LogicalPlan):
        """Advise (without executing) on an auto session: the ranked
        strategy breakdown the optimizer would use for ``query``."""
        auto = self._auto_executor()
        return auto.advise(self.physical(query), self.database)


def _coerce_fault_plan(fault_plan):
    """Accept a :class:`~repro.faults.FaultPlan`, a plan ``dict``, or a
    path to a plan JSON file (how the CLI passes ``--fault-plan``)."""
    if fault_plan is None:
        return None
    from .faults import FaultPlan

    if isinstance(fault_plan, FaultPlan):
        return fault_plan
    if isinstance(fault_plan, dict):
        return FaultPlan.from_dict(fault_plan)
    if isinstance(fault_plan, str):
        return FaultPlan.load(fault_plan)
    from .errors import ConfigurationError

    raise ConfigurationError(
        f"fault_plan must be a FaultPlan, a plan dict, or a JSON path, "
        f"got {fault_plan!r}"
    )


def connect(
    database: Database,
    device: VirtualCoprocessor | DeviceProfile | str = GTX970,
    engine: Engine | str = "resolution",
    plan_cache: "PlanCache | None" = None,
    residency: bool = False,
    metrics: "MetricsRegistry | None" = None,
    devices: int | str = 1,
    partitioning: str = "range",
    fault_plan=None,
    retry_policy=None,
    recorder=None,
    compression: str = "off",
) -> Session:
    """Create a session (the one-line entry point).

    ``engine="auto"`` / ``devices="auto"`` enable the adaptive
    cost-based optimizer (see :class:`Session`).  ``compression=
    "auto"`` ships base columns over the link compressed (see
    ``docs/compression.md``); a codec name pins one codec, ``"off"``
    (the default) keeps raw transfers."""
    return Session(
        database,
        device=device,
        engine=engine,
        plan_cache=plan_cache,
        residency=residency,
        metrics=metrics,
        devices=devices,
        partitioning=partitioning,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        recorder=recorder,
        compression=compression,
    )
