"""Reproduction of "Pipelined Query Processing in Coprocessor
Environments" (Funke et al., SIGMOD 2018) — the HorseQC query compiler
and its evaluation, on a simulated coprocessor.

Top-level shortcuts::

    from repro import connect, generate_ssb
    session = connect(generate_ssb(0.01))
    result = session.execute("select sum(lo_revenue) as r from lineorder")

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured record of every table and figure.
"""

from .api import Session, connect, make_engine
from .engines import (
    CompoundEngine,
    CpuOperatorAtATimeEngine,
    Engine,
    ExecutionResult,
    MultiPassEngine,
    OperatorAtATimeEngine,
)
from .errors import (
    CompilationError,
    ConfigurationError,
    DeviceMemoryError,
    ExpressionError,
    PlacementError,
    PlanError,
    ReproError,
    SchemaError,
    SqlError,
    WorkloadError,
)
from .hardware import (
    A10,
    GTX770,
    GTX970,
    RX480,
    TABLE2_DEVICES,
    XEON_E5,
    DeviceProfile,
    Interconnect,
    VirtualCoprocessor,
    get_profile,
)
from .placement import BufferPool, PlacementStats, QueryPlacement
from .plan import PlanBuilder, load_json_plan
from .storage import Column, Database, DType, Table, load_database, save_database
from .validation import ValidationReport, verify_engines
from .workloads import generate_ssb, generate_tpch

__version__ = "1.0.0"

__all__ = [
    "A10",
    "BufferPool",
    "Column",
    "CompilationError",
    "CompoundEngine",
    "ConfigurationError",
    "CpuOperatorAtATimeEngine",
    "DType",
    "Database",
    "DeviceMemoryError",
    "DeviceProfile",
    "Engine",
    "ExecutionResult",
    "ExpressionError",
    "GTX770",
    "GTX970",
    "Interconnect",
    "MultiPassEngine",
    "OperatorAtATimeEngine",
    "PlacementError",
    "PlacementStats",
    "PlanBuilder",
    "PlanError",
    "QueryPlacement",
    "ReproError",
    "RX480",
    "SchemaError",
    "Session",
    "SqlError",
    "TABLE2_DEVICES",
    "Table",
    "ValidationReport",
    "VirtualCoprocessor",
    "WorkloadError",
    "XEON_E5",
    "connect",
    "generate_ssb",
    "generate_tpch",
    "get_profile",
    "load_database",
    "load_json_plan",
    "make_engine",
    "save_database",
    "verify_engines",
]
