"""Benchmark-suite experiments: Figures 19 & 20, Table 3."""

from __future__ import annotations

from ..engines import CompoundEngine, MultiPassEngine, OperatorAtATimeEngine
from ..hardware import GTX970, PCIE3, TABLE2_DEVICES, VirtualCoprocessor
from ..workloads import (
    PAPER_SSB_SET,
    PAPER_TPCH_SET,
    generate_ssb,
    generate_tpch,
    ssb_plan,
    tpch_plan,
)
from .report import ExperimentReport


def _engine_roster():
    return {
        "Operator-at-a-time": OperatorAtATimeEngine,
        "HorseQC: Multi-pass": MultiPassEngine,
        "HorseQC: Fully pipelined": lambda: CompoundEngine("lrgp_simd"),
    }


def _suite(report, database, names, planner):
    roster = _engine_roster()
    rows = []
    saturated = 0
    stragglers = []
    for name in names:
        plan = planner(name, database)
        row = [name]
        pcie_ms = memory_ms = pipelined_ms = 0.0
        for label, factory in roster.items():
            result = factory().execute(
                plan, database, VirtualCoprocessor(GTX970, interconnect=PCIE3)
            )
            row.append(round(result.kernel_ms, 4))
            pcie_ms, memory_ms = result.pcie_ms, result.memory_bound_ms
            if label == "HorseQC: Fully pipelined":
                pipelined_ms = result.kernel_ms
        row.extend([round(pcie_ms, 4), round(memory_ms, 4)])
        row.append(f"{pipelined_ms / pcie_ms * 100:.0f}%")
        if pipelined_ms < pcie_ms:
            saturated += 1
        else:
            stragglers.append(name)
        rows.append(row)
    report.add(
        "kernel execution times (ms)",
        ["query", *roster.keys(), "PCIe transfer", "Memory bound", "pipelined/PCIe"],
        rows,
    )
    return saturated, stragglers, len(rows)


def fig19_ssb(scale_factor: float = 0.02, seed: int = 7) -> ExperimentReport:
    """Experiment 3: the SSB suite on the GTX970."""
    database = generate_ssb(scale_factor, seed=seed)
    report = ExperimentReport(
        "fig19_ssb",
        f"Figure 19 — SSB kernel execution times on GTX970 (ms, SF {scale_factor})",
    )
    saturated, _, total = _suite(report, database, PAPER_SSB_SET, ssb_plan)
    report.note(
        f"HorseQC: Fully pipelined stays below the PCIe transfer time for "
        f"{saturated} of {total} queries (paper: 12 of 12)."
    )
    return report


def fig20_tpch(scale_factor: float = 0.02, seed: int = 11) -> ExperimentReport:
    """Experiment 4: the TPC-H roster on the GTX970."""
    database = generate_tpch(scale_factor, seed=seed)
    report = ExperimentReport(
        "fig20_tpch",
        f"Figure 20 — TPC-H kernel execution times on GTX970 (ms, SF {scale_factor})",
    )
    saturated, stragglers, total = _suite(report, database, PAPER_TPCH_SET, tpch_plan)
    report.note(
        f"Fully pipelined beats the PCIe transfer time for {saturated} of {total} "
        "queries (paper: 8 of 11; stragglers were Q1/Q13/Q18 — unfiltered "
        "grouped aggregations)."
    )
    if stragglers:
        report.note(f"Unsaturated here: {', '.join(stragglers)}.")
    return report


def table3_ssb_devices(scale_factor: float = 0.02, seed: int = 7) -> ExperimentReport:
    """Appendix G.2: SSB with Resolution:WE on every coprocessor."""
    report = ExperimentReport(
        "table3_ssb_devices",
        "Table 3 — SSB with Resolution:WE across all coprocessors",
    )
    for profile in TABLE2_DEVICES:
        if profile.name == "A10":
            database = generate_ssb(scale_factor / 2, seed=seed)
            note = f" (SF {scale_factor / 2}, limited memory capacity)"
        else:
            database = generate_ssb(scale_factor, seed=seed)
            note = f" (SF {scale_factor})"
        rows = []
        for name in PAPER_SSB_SET:
            device = VirtualCoprocessor(profile, interconnect=PCIE3)
            result = CompoundEngine("lrgp_we").execute(
                ssb_plan(name, database), database, device
            )
            seconds = result.kernel_ms / 1e3
            throughput = (result.input_bytes / seconds / 1e9) if seconds else 0.0
            bandwidth = (result.global_memory_bytes / seconds / 1e9) if seconds else 0.0
            rows.append(
                [name, round(result.kernel_ms, 4), round(throughput, 2),
                 round(bandwidth, 2)]
            )
        report.add(
            f"{profile.name}{note}",
            ["query", "time (ms)", "throughput (GB/s)", "memory (GB/s)"],
            rows,
            float_format="{:.2f}",
        )
    return report
