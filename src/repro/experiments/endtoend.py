"""End-to-end experiments: Figure 21 (scalability) and Figure 22."""

from __future__ import annotations

from ..engines import CompoundEngine, CpuOperatorAtATimeEngine, OperatorAtATimeEngine, make_cpu_device
from ..hardware import GTX970, PCIE3, VirtualCoprocessor
from ..macro import BatchExecutor
from ..workloads import (
    PAPER_TPCH_SET,
    generate_ssb,
    generate_tpch,
    star_join_aggregate_query,
    tpch_plan,
)
from .report import ExperimentReport

#: Block sizes of Figure 21 (the paper's 0.5/2/8 MB labels).
BLOCK_SIZES = {"0.5 MB": 512 * 1024, "2 MB": 2 * 1024 * 1024, "8 MB": 8 * 1024 * 1024}


def fig21_scalability(
    scale_factors=(0.01, 0.02, 0.04, 0.08), seed: int = 7, block_scale: int = 64
) -> ExperimentReport:
    """Experiment 5: streamed star join vs scale factor and block size.

    ``block_scale`` shrinks the paper's block sizes with the simulated
    database so the per-block-overhead effect stays visible at
    simulation scale.
    """
    report = ExperimentReport(
        "fig21_scalability",
        "Figure 21 — end-to-end star join (SSB Q3.1 join) vs scale factor "
        f"(ms; block sizes scaled 1/{block_scale} with the database)",
    )
    rows = []
    for scale_factor in scale_factors:
        database = generate_ssb(scale_factor, seed=seed)
        plan = star_join_aggregate_query()
        row = [scale_factor, database["lineorder"].num_rows]
        peak = 0
        for block_bytes in BLOCK_SIZES.values():
            executor = BatchExecutor(block_bytes=max(block_bytes // block_scale, 1024))
            result = executor.execute(
                plan, database, VirtualCoprocessor(GTX970, interconnect=PCIE3)
            )
            row.append(round(result.end_to_end_ms, 4))
            peak = max(peak, result.peak_device_bytes)
        executor = BatchExecutor(block_bytes=BLOCK_SIZES["8 MB"])
        result = executor.execute(
            plan, database, VirtualCoprocessor(GTX970, interconnect=PCIE3)
        )
        row.append(round(result.stream_transfer_ms + result.build_ms, 4))
        row.append(round(peak / 1e6, 3))
        rows.append(row)
    report.add(
        "scale sweep",
        [
            "scale factor", "fact rows",
            *[f"block {label}" for label in BLOCK_SIZES],
            "PCIe floor (ms)", "peak device (MB)",
        ],
        rows,
    )
    first, last = rows[0], rows[-1]
    report.note(
        f"Time grows {last[3] / first[3]:.1f}x across a "
        f"{last[0] / first[0]:.0f}x scale-factor increase (paper: linear); "
        "larger blocks saturate PCIe while the smallest block size lags on "
        "per-block overheads."
    )
    return report


def fig22_end_to_end(scale_factor: float = 0.02, seed: int = 11) -> ExperimentReport:
    """Experiment 6: MonetDB-like vs CoGaDB-like vs HorseQC, end to end."""
    database = generate_tpch(scale_factor, seed=seed)
    report = ExperimentReport(
        "fig22_end_to_end",
        f"Figure 22 — end-to-end TPC-H (transfers + kernels, SF {scale_factor})",
    )
    rows = []
    best_vs_cogadb = best_vs_monetdb = 0.0
    cpu_wins = []
    for name in PAPER_TPCH_SET:
        plan = tpch_plan(name, database)
        monetdb = CpuOperatorAtATimeEngine().execute(plan, database, make_cpu_device())
        cogadb = OperatorAtATimeEngine().execute(
            plan, database, VirtualCoprocessor(GTX970, interconnect=PCIE3)
        )
        horseqc = CompoundEngine("lrgp_simd").execute(
            plan, database, VirtualCoprocessor(GTX970, interconnect=PCIE3)
        )
        rows.append(
            [
                name,
                round(monetdb.total_ms, 4),
                round(cogadb.total_ms, 4),
                round(horseqc.total_ms, 4),
                f"{cogadb.total_ms / horseqc.total_ms:.1f}x",
                f"{monetdb.total_ms / horseqc.total_ms:.1f}x",
            ]
        )
        best_vs_cogadb = max(best_vs_cogadb, cogadb.total_ms / horseqc.total_ms)
        best_vs_monetdb = max(best_vs_monetdb, monetdb.total_ms / horseqc.total_ms)
        if monetdb.total_ms < horseqc.total_ms:
            cpu_wins.append(name)
    report.add(
        "end-to-end times",
        ["query", "MonetDB-like (ms)", "CoGaDB-like (ms)", "HorseQC (ms)",
         "vs CoGaDB", "vs MonetDB"],
        rows,
    )
    report.note(
        f"HorseQC is up to {best_vs_cogadb:.1f}x faster than the CoGaDB-like "
        f"engine (paper: 5.8x) and up to {best_vs_monetdb:.1f}x faster than the "
        "MonetDB-like engine (paper: 26.9x)."
    )
    if cpu_wins:
        report.note(
            f"The CPU wins for: {', '.join(cpu_wins)} (paper: Q19 — low "
            "complexity makes PCIe movement unprofitable)."
        )
    return report
