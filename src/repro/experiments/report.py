"""Structured experiment reports.

Every experiment in :mod:`repro.experiments` returns an
:class:`ExperimentReport`: named, titled, tabular, with free-form
notes. The benchmark harness prints/persists them; library users can
consume `.rows` programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import format_table


@dataclass
class ReportSection:
    """One table of an experiment report."""

    title: str
    headers: list[str]
    rows: list[list]
    float_format: str = "{:.4f}"

    def text(self) -> str:
        return format_table(
            self.headers, self.rows, title=self.title, float_format=self.float_format
        )


@dataclass
class ExperimentReport:
    """A full experiment: sections plus notes, renderable as text."""

    name: str
    title: str
    sections: list[ReportSection] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, title: str, headers: list[str], rows: list[list],
            float_format: str = "{:.4f}") -> ReportSection:
        section = ReportSection(title, headers, rows, float_format)
        self.sections.append(section)
        return section

    def note(self, text: str) -> None:
        self.notes.append(text)

    def text(self) -> str:
        parts = [self.title, ""]
        parts.extend(section.text() + "\n" for section in self.sections)
        if self.notes:
            parts.extend(self.notes)
        return "\n".join(parts).rstrip() + "\n"

    @property
    def rows(self) -> list[list]:
        """The first section's rows (single-table experiments)."""
        return self.sections[0].rows if self.sections else []
