"""The paper's evaluation as a library: one function per table/figure.

Every function generates the workload, runs the relevant engines on
fresh virtual devices, and returns an :class:`ExperimentReport` whose
``text()`` prints the same rows/series the paper reports. The
benchmark harness (``benchmarks/``) and the CLI (``python -m repro
experiment <name>``) are thin wrappers over this registry.
"""

from .endtoend import fig21_scalability, fig22_end_to_end
from .microbenchmarks import fig17_prefix_sum, fig18_group_by, fig27_single_aggregation
from .movement import fig5_macro_movement, fig9_fig13_micro_movement, table1_passes
from .report import ExperimentReport, ReportSection
from .suites import fig19_ssb, fig20_tpch, table3_ssb_devices
from .taxonomy import table2_devices, table4_reduction_modes

#: name -> (callable, the paper artifact it regenerates)
EXPERIMENTS = {
    "table1": (table1_passes, "Table 1 — number of passes"),
    "table2": (table2_devices, "Table 2 — coprocessors"),
    "table3": (table3_ssb_devices, "Table 3 — SSB across coprocessors"),
    "table4": (table4_reduction_modes, "Table 4 — reduction techniques"),
    "fig5": (fig5_macro_movement, "Figure 5 — macro-model data movement"),
    "fig9": (fig9_fig13_micro_movement, "Figures 9 & 13 — micro-model data movement"),
    "fig17": (fig17_prefix_sum, "Figure 17 — pipelined prefix sum (Experiment 1)"),
    "fig18": (fig18_group_by, "Figure 18 — pipelined GROUP BY (Experiment 2)"),
    "fig19": (fig19_ssb, "Figure 19 — SSB (Experiment 3)"),
    "fig20": (fig20_tpch, "Figure 20 — TPC-H (Experiment 4)"),
    "fig21": (fig21_scalability, "Figure 21 — scalability (Experiment 5)"),
    "fig22": (fig22_end_to_end, "Figure 22 — end-to-end (Experiment 6)"),
    "fig27": (fig27_single_aggregation, "Figure 27 — single-tuple aggregation (G.1)"),
}


def run_experiment(name: str, **kwargs) -> ExperimentReport:
    """Run one experiment by registry name (e.g. ``"fig19"``)."""
    try:
        function, _ = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
    return function(**kwargs)


__all__ = [
    "EXPERIMENTS",
    "ExperimentReport",
    "ReportSection",
    "fig17_prefix_sum",
    "fig18_group_by",
    "fig19_ssb",
    "fig20_tpch",
    "fig21_scalability",
    "fig22_end_to_end",
    "fig27_single_aggregation",
    "fig5_macro_movement",
    "fig9_fig13_micro_movement",
    "run_experiment",
    "table1_passes",
    "table2_devices",
    "table3_ssb_devices",
    "table4_reduction_modes",
]
