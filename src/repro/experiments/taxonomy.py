"""Taxonomy experiments: Table 2 (devices) and Table 4 (reductions)."""

from __future__ import annotations

from ..engines import CompoundEngine, MultiPassEngine, OperatorAtATimeEngine
from ..hardware import GTX970, PCIE3, TABLE2_DEVICES, VirtualCoprocessor
from ..workloads import aggregation_query, generate_ssb, group_by_query, projection_query
from .report import ExperimentReport

#: (id, operation, engine factory, workload factory) — Table 4's rows.
TECHNIQUES = (
    ("A1", "aligned write, global prefix sum", MultiPassEngine,
     lambda: projection_query(12)),
    ("A2", "aligned write, atomic prefix sum", lambda: CompoundEngine("atomic"),
     lambda: projection_query(12)),
    ("A3", "aligned write, local resolution", lambda: CompoundEngine("lrgp_simd"),
     lambda: projection_query(12)),
    ("B1", "single aggregation, global reduce", MultiPassEngine,
     lambda: aggregation_query(12)),
    ("B2", "single aggregation, atomic reduce", lambda: CompoundEngine("atomic"),
     lambda: aggregation_query(12)),
    ("B3", "single aggregation, local resolution", lambda: CompoundEngine("lrgp_simd"),
     lambda: aggregation_query(12)),
    ("C1", "grouped aggregation, sort + reduce", OperatorAtATimeEngine,
     lambda: group_by_query(64)),
    ("C2", "grouped aggregation, atomic hash", lambda: CompoundEngine("atomic"),
     lambda: group_by_query(64)),
    ("C3", "grouped aggregation, segmented", lambda: CompoundEngine("lrgp_simd"),
     lambda: group_by_query(64)),
)


def table2_devices() -> ExperimentReport:
    """Table 2: the simulated device inventory."""
    report = ExperimentReport(
        "table2_devices",
        "Table 2 — coprocessors used in the evaluation "
        "(published + calibration values)",
    )
    report.add(
        "devices",
        ["device", "type", "architecture", "cores", "scratchpad (KB)",
         "B/W (GB/s)", "SIMD", "compute (Gops/s)", "atomic chain (Gops/s)"],
        [
            [
                profile.name,
                "APU" if profile.kind == "apu" else "GPU",
                profile.architecture,
                profile.compute_units,
                profile.scratchpad_per_unit // 1024,
                round(profile.global_bandwidth, 1),
                profile.simd_width,
                round(profile.compute_throughput / 1e9),
                round(profile.same_address_atomic_rate / 1e9, 1),
            ]
            for profile in TABLE2_DEVICES
        ],
        float_format="{:.1f}",
    )
    return report


def table4_reduction_modes(scale_factor: float = 0.02, seed: int = 7) -> ExperimentReport:
    """Table 4: the nine reduction techniques, measured."""
    database = generate_ssb(scale_factor, seed=seed)
    report = ExperimentReport(
        "table4_reduction_modes",
        f"Table 4 — reduction techniques, measured (SF {scale_factor})",
    )
    rows = []
    for technique_id, operation, engine_factory, plan_factory in TECHNIQUES:
        device = VirtualCoprocessor(GTX970, interconnect=PCIE3)
        result = engine_factory().execute(plan_factory(), database, device)
        kernels = len(device.log.kernels)
        rows.append(
            [
                technique_id,
                operation,
                "yes" if kernels > 1 else "no",
                kernels,
                round(result.global_memory_bytes / 1e6, 3),
                round(result.onchip_bytes / 1e6, 3),
                round(result.kernel_ms, 4),
            ]
        )
    report.add(
        "techniques",
        ["id", "operation", "pipeline breaker", "kernels",
         "global (MB)", "on-chip (MB)", "time (ms)"],
        rows,
    )
    report.note(
        "Pipelined techniques (x2/x3) run in a single kernel with no "
        "intermediate materialization; the x1 techniques break the pipeline "
        "with multiple kernels and materialized flags/intermediates, matching "
        "the paper's Table 4 classification."
    )
    return report
