"""Data-movement experiments: Table 1, Figure 5, Figures 9 & 13."""

from __future__ import annotations

from ..analysis.movement import movement_breakdown, reduction_factor
from ..analysis.passes import affordable_passes, passes_from_result
from ..engines import CompoundEngine, MultiPassEngine, OperatorAtATimeEngine
from ..hardware import GTX970, PCIE3, VirtualCoprocessor
from ..macro import batch_processing_movement, kernel_at_a_time_movement
from ..workloads import ALL_SSB_SET, TABLE1_TPCH_SET, generate_ssb, generate_tpch, ssb_plan, tpch_plan
from .report import ExperimentReport

#: The paper's Table 1 values, for side-by-side comparison.
PAPER_PASSES = {
    "ssb-q1.1": 7.5, "ssb-q1.2": 6.9, "ssb-q1.3": 6.7, "ssb-q2.1": 9.6,
    "ssb-q2.2": 9.2, "ssb-q2.3": 9.1, "ssb-q3.1": 11.0, "ssb-q3.2": 7.9,
    "ssb-q3.3": 7.5, "ssb-q3.4": 2.2, "ssb-q4.1": 7.4, "ssb-q4.2": 3.9,
    "ssb-q4.3": 3.5,
    "tpch-q1": 15.5, "tpch-q2": 14.5, "tpch-q3": 5.2, "tpch-q4": 6.6,
    "tpch-q5": 7.2, "tpch-q6": 6.2, "tpch-q7": 9.0, "tpch-q9": 9.0,
    "tpch-q10": 5.8, "tpch-q15": 6.3, "tpch-q18": 38.5, "tpch-q20": 10.5,
}


def _gpu() -> VirtualCoprocessor:
    return VirtualCoprocessor(GTX970, interconnect=PCIE3)


def table1_passes(scale_factor: float = 0.02, seed: int = 7) -> ExperimentReport:
    """Table 1: GPU global memory volume / PCIe volume per query."""
    ssb = generate_ssb(scale_factor, seed=seed)
    tpch = generate_tpch(scale_factor, seed=seed + 4)
    engine = OperatorAtATimeEngine()
    threshold = affordable_passes(GTX970)
    report = ExperimentReport(
        "table1_passes",
        f"Table 1 — number of passes, operator-at-a-time, SF {scale_factor} "
        f"(memory-limited beyond {threshold:.1f} passes)",
    )
    rows = []
    limited = 0
    for prefix, database, names, planner in (
        ("ssb", ssb, ALL_SSB_SET, ssb_plan),
        ("tpch", tpch, TABLE1_TPCH_SET, tpch_plan),
    ):
        for name in names:
            result = engine.execute(planner(name, database), database, _gpu())
            count = passes_from_result(f"{prefix}-{name}", result)
            flag = "memory-limited" if count.passes > threshold else ""
            limited += count.passes > threshold
            rows.append(
                [count.query, round(count.passes, 1),
                 PAPER_PASSES.get(count.query, "-"), flag]
            )
    report.add(
        "passes per query",
        ["query", "passes (measured)", "passes (paper)", ""],
        rows,
        float_format="{:.1f}",
    )
    report.note(f"{limited} of {len(rows)} queries are definitely memory-limited.")
    return report


def fig5_macro_movement(scale_factor: float = 0.02, seed: int = 7) -> ExperimentReport:
    """Figure 5: kernel-at-a-time vs batch processing for SSB Q3.1."""
    database = generate_ssb(scale_factor, seed=seed)
    device = _gpu()
    result = OperatorAtATimeEngine().execute(ssb_plan("q3.1", database), database, device)
    kaat = kernel_at_a_time_movement(result, device)
    batch = batch_processing_movement(result, device)
    report = ExperimentReport(
        "fig5_macro_movement",
        f"Figure 5 — data movement for SSB Q3.1 "
        f"(operator-at-a-time micro model, SF {scale_factor})",
    )
    report.add(
        "macro models",
        ["macro model", "PCIe (MB)", "PCIe (ms)", "GPU global (MB)", "GPU global (ms)"],
        [
            [m.model, round(m.pcie_bytes / 1e6, 2), round(m.pcie_ms, 3),
             round(m.global_bytes / 1e6, 2), round(m.global_ms, 3)]
            for m in (kaat, batch)
        ],
        float_format="{:.3f}",
    )
    report.add(
        "GPU global memory per kernel kind (the figure's arrows)",
        ["kernel kind", "launches", "GPU global (MB)"],
        [
            [kind, entry["launches"], round(entry["global_bytes"] / 1e6, 2)]
            for kind, entry in sorted(
                result.profile.by_kind().items(),
                key=lambda item: -item[1]["global_bytes"],
            )
        ],
    )
    report.note(
        f"Batch processing reduces PCIe transfers by "
        f"{kaat.pcie_bytes / batch.pcie_bytes:.1f}x (paper: 8.8x)."
    )

    # The executable version of Figure 3: per-kernel PCIe streaming.
    from ..macro import KernelAtATimeExecutor

    executed = KernelAtATimeExecutor().execute(
        ssb_plan("q3.1", database), database, _gpu()
    )
    report.add(
        "executed kernel-at-a-time (per-kernel streaming) vs run-to-finish",
        ["execution", "kernel (ms)", "transfers (ms)", "end-to-end (ms)"],
        [
            ["kernel-at-a-time", round(executed.kernel_ms, 3),
             round(executed.transfer_ms, 3), round(executed.total_ms, 3)],
            ["run-to-finish", round(result.kernel_ms, 3),
             round(result.transfer_ms, 3), round(result.total_ms, 3)],
        ],
        float_format="{:.3f}",
    )
    report.note(
        "In the executed kernel-at-a-time model the streamed transfers exceed "
        "the kernel time — the PCIe bottleneck of Figure 5a, end to end."
    )
    return report


def fig9_fig13_micro_movement(scale_factor: float = 0.02, seed: int = 7) -> ExperimentReport:
    """Figures 9 & 13: data movement per micro execution model."""
    database = generate_ssb(scale_factor, seed=seed)
    plan = ssb_plan("q3.1", database)
    breakdowns = {}
    for label, engine in (
        ("operator-at-a-time", OperatorAtATimeEngine()),
        ("multi-pass (Fig. 9)", MultiPassEngine()),
        ("compound (Fig. 13)", CompoundEngine("lrgp_simd")),
    ):
        device = _gpu()
        result = engine.execute(plan, database, device)
        breakdowns[label] = movement_breakdown(label, result, device)
    report = ExperimentReport(
        "fig9_fig13_movement",
        f"Figures 9 & 13 — data movement for SSB Q3.1 per micro model (SF {scale_factor})",
    )
    report.add(
        "micro models",
        ["micro model", "PCIe (MB)", "GPU global (MB)", "on-chip (MB)", "global (ms)"],
        [
            [label, round(m.pcie_bytes / 1e6, 2), round(m.global_bytes / 1e6, 2),
             round(m.onchip_bytes / 1e6, 2), round(m.global_ms, 3)]
            for label, m in breakdowns.items()
        ],
        float_format="{:.3f}",
    )
    base = breakdowns["operator-at-a-time"]
    multipass = breakdowns["multi-pass (Fig. 9)"]
    compound = breakdowns["compound (Fig. 13)"]
    report.note(
        "GPU global memory reduction vs operator-at-a-time: "
        f"multi-pass {reduction_factor(base, multipass):.1f}x, "
        f"compound {reduction_factor(base, compound):.1f}x (paper: 4.7x), "
        f"compound vs multi-pass {reduction_factor(multipass, compound):.1f}x "
        "(paper: 2.4x)."
    )
    return report
