"""Micro-benchmark experiments: Figures 17, 18, and 27."""

from __future__ import annotations

from ..engines import CompoundEngine, MultiPassEngine, OperatorAtATimeEngine
from ..hardware import PCIE3, TABLE2_DEVICES, VirtualCoprocessor
from ..workloads import (
    aggregation_query,
    generate_ssb,
    group_by_query,
    projection_query,
    selectivity_of,
)
from .report import ExperimentReport

#: Selectivity knob sweep (x values; selectivity ~ (2x+1)/50).
DEFAULT_X_SWEEP = (0, 3, 6, 12, 18, 25)

#: Group-count sweep of Experiment 2.
DEFAULT_GROUPS = (2, 8, 32, 128, 512, 2048, 8192, 16384)


def _reduction_roster():
    return {
        "Multi-pass": MultiPassEngine,
        "Pipelined": lambda: CompoundEngine("atomic"),
        "Resolution:WE": lambda: CompoundEngine("lrgp_we"),
        "Resolution:SIMD": lambda: CompoundEngine("lrgp_simd"),
    }


def _device_sweep(report, database, plan_factory, sweep, sweep_label):
    roster = _reduction_roster()
    for profile in TABLE2_DEVICES:
        rows = []
        for knob in sweep:
            plan = plan_factory(knob)
            row = [round(selectivity_of(knob), 2)]
            pcie_ms = memory_ms = 0.0
            for factory in roster.values():
                device = VirtualCoprocessor(profile, interconnect=PCIE3)
                result = factory().execute(plan, database, device)
                row.append(round(result.kernel_ms, 4))
                pcie_ms, memory_ms = result.pcie_ms, result.memory_bound_ms
            row.extend([round(pcie_ms, 4), round(memory_ms, 4)])
            rows.append(row)
        report.add(
            f"{profile.name} — kernel time (ms)",
            [sweep_label, *roster.keys(), "PCIe transfer", "Memory bound"],
            rows,
        )


def fig17_prefix_sum(
    scale_factor: float = 0.02, seed: int = 7, x_sweep=DEFAULT_X_SWEEP
) -> ExperimentReport:
    """Experiment 1: the projection query across selectivities/devices."""
    database = generate_ssb(scale_factor, seed=seed)
    report = ExperimentReport(
        "fig17_prefix_sum",
        f"Figure 17 — projection query (Figure 16) across selectivities, SF {scale_factor}",
    )
    _device_sweep(report, database, projection_query, x_sweep, "selectivity")
    return report


def fig27_single_aggregation(
    scale_factor: float = 0.02, seed: int = 7, x_sweep=(0, 6, 12, 25)
) -> ExperimentReport:
    """Appendix G.1: Query 1 + SUM across selectivities/devices."""
    database = generate_ssb(scale_factor, seed=seed)
    report = ExperimentReport(
        "fig27_single_aggregation",
        f"Figure 27 — Query 1 + SUM across all coprocessors, SF {scale_factor}",
    )
    _device_sweep(report, database, aggregation_query, x_sweep, "selectivity")

    from ..hardware import GTX970

    agg = CompoundEngine("atomic").execute(
        aggregation_query(25), database, VirtualCoprocessor(GTX970, interconnect=PCIE3)
    )
    prefix = CompoundEngine("atomic").execute(
        projection_query(25), database, VirtualCoprocessor(GTX970, interconnect=PCIE3)
    )
    report.note(
        f"Pipelined at selectivity 1.0 on GTX970: aggregation {agg.kernel_ms:.4f} ms "
        f"vs prefix-sum projection {prefix.kernel_ms:.4f} ms (plain adds combine in "
        "hardware; fetch-adds do not — Appendix G.1)."
    )
    return report


def fig18_group_by(
    scale_factor: float = 0.02, seed: int = 7, groups=DEFAULT_GROUPS
) -> ExperimentReport:
    """Experiment 2: grouped aggregation across group counts (GTX970)."""
    from ..hardware import GTX970

    database = generate_ssb(scale_factor, seed=seed)
    roster = {
        "Op.-at-a-time": OperatorAtATimeEngine,
        "Pipelined (C2)": lambda: CompoundEngine("atomic"),
        "Resolution (C3)": lambda: CompoundEngine("lrgp_simd"),
    }
    report = ExperimentReport(
        "fig18_group_by",
        f"Figure 18 — grouped aggregation on GTX970 (kernel ms, SF {scale_factor})",
    )
    rows = []
    pcie_ms = memory_ms = 0.0
    for count in groups:
        plan = group_by_query(count)
        row = [count]
        for factory in roster.values():
            result = factory().execute(
                plan, database, VirtualCoprocessor(GTX970, interconnect=PCIE3)
            )
            row.append(round(result.kernel_ms, 4))
            pcie_ms, memory_ms = result.pcie_ms, result.memory_bound_ms
        rows.append(row)
    report.add("group sweep", ["groups", *roster.keys()], rows)
    report.note(
        f"PCIe transfer baseline: {pcie_ms:.4f} ms   memory bound: {memory_ms:.4f} ms"
    )
    small, big = rows[0], rows[-1]
    report.note(
        f"At {small[0]} groups Resolution beats Pipelined by "
        f"{small[2] / small[3]:.0f}x (paper: up to 126x; the factor scales with SF)."
    )
    report.note(
        f"At {big[0]} groups Pipelined beats op.-at-a-time by "
        f"{big[1] / big[2]:.1f}x (paper: up to 11.1x)."
    )
    return report
