"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``devices``
    List the built-in coprocessor profiles (Table 2).
``query``
    Run a SQL query against a generated SSB or TPC-H database on a
    chosen device/engine; prints rows plus the paper's metrics.
``explain``
    Show the fusion-operator (pipeline) decomposition of a query.
``bench``
    Run one named SSB/TPC-H benchmark query under all three micro
    execution models and print the Figure 19/20-style row.
``generate``
    Generate an SSB/TPC-H database once and persist it; ``query``/
    ``explain``/``bench`` accept ``--data-dir`` to reuse it.
``experiment``
    Regenerate one of the paper's tables/figures by name
    (``table1``..``table4``, ``fig5``..``fig27``), or ``all``.
``serve-bench``
    Run the serving-runtime benchmark: cold vs. warm plan/kernel
    caches and multi-worker throughput on the mixed SSB workload;
    ``--metrics-out`` writes the server's Prometheus exposition.
``metrics``
    Run a small SSB workload through a server and print its
    Prometheus text exposition (latency histograms, cache counters).
``log``
    Tail a structured event-log JSONL file (written by
    ``query --events-out`` / ``serve-bench --events-out``), with
    ``--kind`` / ``--query`` filters.
``baseline``
    Record (``baseline record``) or check (``baseline check``) the
    perf-regression sentinel's committed per-query fingerprints.
``replay``
    Re-execute a post-mortem bundle's query deterministically and
    verify the outcome byte-for-byte against the recorded checksums.

``query --trace-out trace.json`` records the execution's span tree as
Chrome trace-event JSON (open in Perfetto / ``chrome://tracing``);
``explain --analyze`` runs the query and prints the per-pipeline
rows/bytes/time table.  See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import format_table
from .api import ENGINE_FACTORIES, Session
from .errors import ConfigurationError, ReproError
from .engines import CompoundEngine, MultiPassEngine, OperatorAtATimeEngine
from .hardware import list_profiles
from .storage import load_database, save_database
from .workloads import SSB_QUERIES, TPCH_PLANS, generate_ssb, generate_tpch, ssb_plan, tpch_plan


def _engine_choices() -> list:
    """Engine aliases plus the adaptive optimizer's ``auto``."""
    return sorted(ENGINE_FACTORIES) + ["auto"]


def _devices_arg(value: str):
    """``--devices`` accepts an integer or ``auto``."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be an integer >= 1 or 'auto', got {value!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HorseQC reproduction: pipelined query processing on a simulated coprocessor",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list built-in device profiles")

    for name, description in (
        ("query", "run a SQL query and print rows + metrics"),
        ("explain", "show the fusion-operator pipeline decomposition"),
    ):
        cmd = sub.add_parser(name, help=description)
        cmd.add_argument("sql", help="the SQL text (quote it)")
        _add_common(cmd)
        if name == "query":
            cmd.add_argument(
                "--trace-out", default=None, metavar="PATH",
                help="write the execution's span tree as Chrome "
                "trace-event JSON (open in Perfetto)",
            )
            _add_recorder_options(cmd)
        else:
            cmd.add_argument(
                "--analyze", action="store_true",
                help="run the query and show per-pipeline rows, bytes, "
                "and simulated vs host time",
            )

    bench = sub.add_parser(
        "bench", help="run one SSB/TPC-H query under all three micro models"
    )
    bench.add_argument(
        "query",
        help=f"query name: one of {', '.join(sorted(SSB_QUERIES))} (SSB) "
        f"or {', '.join(sorted(TPCH_PLANS))} (TPC-H, --workload tpch)",
    )
    _add_common(bench)

    generate = sub.add_parser(
        "generate", help="generate a database once and persist it to disk"
    )
    generate.add_argument("out", help="output directory")
    generate.add_argument("--workload", choices=("ssb", "tpch"), default="ssb")
    generate.add_argument("--scale-factor", type=float, default=0.01)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument(
        "--skew", type=float, default=0.0,
        help="Zipf skew for SSB foreign keys (default: 0 = uniform)",
    )

    from .experiments import EXPERIMENTS

    experiment = sub.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment.add_argument(
        "name", choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment name (or 'all')",
    )
    experiment.add_argument(
        "--scale-factor", type=float, default=None,
        help="workload scale factor (default: each experiment's default)",
    )

    serve = sub.add_parser(
        "serve-bench",
        help="benchmark the serving runtime (cache warmup + worker scaling)",
    )
    serve.add_argument(
        "--scale-factor", type=float, default=0.005,
        help="SSB scale factor (default: 0.005)",
    )
    serve.add_argument(
        "--workers", default="1,2,4,8",
        help="comma-separated worker counts (default: 1,2,4,8)",
    )
    serve.add_argument(
        "--repeats", type=int, default=3,
        help="warm latency passes per query (default: 3)",
    )
    serve.add_argument(
        "--passes", type=int, default=4,
        help="workload repetitions in the throughput phase (default: 4)",
    )
    serve.add_argument(
        "--device", default="gtx970", help="device profile (default: gtx970)",
    )
    serve.add_argument(
        "--engine", default="resolution", choices=_engine_choices(),
        help="execution engine; 'auto' enables the adaptive "
        "cost-based optimizer (default: resolution)",
    )
    serve.add_argument(
        "--devices", type=_devices_arg, default=1,
        help="simulated devices per worker; > 1 runs every query "
        "through the scale-out fleet; 'auto' lets the optimizer "
        "pick per query (default: 1)",
    )
    serve.add_argument(
        "--partitioning", choices=("range", "hash"), default="range",
        help="fact-table partitioning scheme for --devices > 1 "
        "(default: range)",
    )
    _add_fault_options(serve)
    serve.add_argument(
        "--tiny", action="store_true",
        help="CI smoke mode: tiny scale factor, fewer workers/passes",
    )
    serve.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the latency server's Prometheus text exposition",
    )
    serve.add_argument(
        "--recorder", action="store_true",
        help="run the benchmark servers with the flight recorder on "
        "(failures write post-mortem bundles)",
    )
    _add_recorder_options(serve)

    metrics = sub.add_parser(
        "metrics",
        help="run a small SSB workload through a server and print "
        "Prometheus metrics",
    )
    metrics.add_argument(
        "--scale-factor", type=float, default=0.001,
        help="SSB scale factor (default: 0.001)",
    )
    metrics.add_argument(
        "--passes", type=int, default=2,
        help="passes over the 13 SSB queries (default: 2)",
    )
    metrics.add_argument(
        "--workers", type=int, default=2,
        help="server worker threads (default: 2)",
    )
    metrics.add_argument(
        "--device", default="gtx970", help="device profile (default: gtx970)",
    )
    metrics.add_argument(
        "--engine", default="resolution", choices=_engine_choices(),
        help="execution engine; 'auto' enables the adaptive "
        "cost-based optimizer (default: resolution)",
    )
    metrics.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the exposition to a file",
    )

    log = sub.add_parser(
        "log", help="tail a structured event-log JSONL file"
    )
    log.add_argument("path", help="event-log JSONL file (see --events-out)")
    log.add_argument(
        "-n", "--tail", type=int, default=20, metavar="N",
        help="show the last N events (default: 20; 0 = all)",
    )
    log.add_argument(
        "--kind", default=None,
        help="only events of this kind (e.g. query.executed)",
    )
    log.add_argument(
        "--query", default=None,
        help="only events with this correlation id (e.g. q-000003)",
    )
    log.add_argument(
        "--json", action="store_true",
        help="print raw JSON lines instead of the aligned view",
    )

    baseline = sub.add_parser(
        "baseline",
        help="record or check the perf-regression sentinel's baselines",
    )
    baseline.add_argument(
        "action", choices=("record", "check"),
        help="'record' re-measures and writes the store; 'check' "
        "re-measures and diffs against it",
    )
    baseline.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline store (default: benchmarks/baselines/"
        "perf_baselines.json)",
    )
    baseline.add_argument(
        "--tolerance", type=float, default=1.0, metavar="SCALE",
        help="scale every metric's tolerance band (default: 1.0)",
    )
    baseline.add_argument(
        "--scale-factor", type=float, default=0.002,
        help="workload scale factor for 'record' (default: 0.002)",
    )

    replay = sub.add_parser(
        "replay",
        help="re-execute a post-mortem bundle and verify byte-identity",
    )
    replay.add_argument("bundle", help="bundle directory (see postmortems/)")
    replay.add_argument(
        "--data-dir", default=None,
        help="load a persisted database instead of the bundle's "
        "generator recipe",
    )
    replay.add_argument(
        "--device", default=None,
        help="override the bundle's device profile name",
    )
    return parser


def _add_common(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--workload", choices=("ssb", "tpch"), default="ssb",
        help="which database to generate (default: ssb)",
    )
    cmd.add_argument(
        "--scale-factor", type=float, default=0.01,
        help="workload scale factor (default: 0.01)",
    )
    cmd.add_argument(
        "--device", default="gtx970",
        help="device profile name (default: gtx970)",
    )
    cmd.add_argument(
        "--engine", default="resolution", choices=_engine_choices(),
        help="execution engine; 'auto' enables the adaptive "
        "cost-based optimizer (default: resolution)",
    )
    cmd.add_argument(
        "--limit", type=int, default=20, help="max rows to print (default: 20)"
    )
    cmd.add_argument(
        "--data-dir", default=None,
        help="load a persisted database (see 'generate') instead of generating",
    )
    cmd.add_argument(
        "--residency", action="store_true",
        help="keep base columns device-resident between queries (buffer "
        "pool with cost-aware eviction and out-of-core fallback)",
    )
    cmd.add_argument(
        "--devices", type=_devices_arg, default=1,
        help="simulated device count; > 1 partitions the fact table "
        "across a scale-out fleet and merges partials; 'auto' lets "
        "the optimizer pick per query (default: 1)",
    )
    cmd.add_argument(
        "--partitioning", choices=("range", "hash"), default="range",
        help="fact-table partitioning scheme for --devices > 1 "
        "(default: range)",
    )
    cmd.add_argument(
        "--compression", default="off", metavar="MODE",
        help="wire compression for host<->device transfers: 'auto' "
        "samples a codec per column, a codec name (rle, forpack, "
        "delta, dictionary, passthrough) pins it, 'off' disables "
        "(default: off)",
    )
    _add_fault_options(cmd)


def _add_fault_options(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="arm a deterministic fault-injection plan (JSON, see "
        "docs/fault-tolerance.md); queries route through the "
        "scale-out executor's recovery path",
    )
    cmd.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="same-device retries per morsel before redistribution "
        "(default: 2)",
    )
    cmd.add_argument(
        "--backoff-ms", type=float, default=None, metavar="MS",
        help="base of the capped exponential retry backoff "
        "(default: 1.0)",
    )
    cmd.add_argument(
        "--morsel-timeout-ms", type=float, default=None, metavar="MS",
        help="treat a morsel stalled past this simulated delay as "
        "failed (default: no timeout)",
    )


def _add_recorder_options(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--events-out", default=None, metavar="PATH",
        help="write the structured event log as JSONL (tail it with "
        "'repro log')",
    )
    cmd.add_argument(
        "--postmortem-dir", default=None, metavar="DIR",
        help="flight-recorder bundle directory (default: postmortems/); "
        "implies the recorder is on",
    )


def _recorder(args, database_recipe: dict):
    """A :class:`~repro.telemetry.FlightRecorder` when any recorder
    flag is set, else None."""
    if not (
        getattr(args, "recorder", False)
        or args.events_out
        or args.postmortem_dir
    ):
        return None
    from .telemetry import FlightRecorder

    return FlightRecorder(
        postmortem_dir=args.postmortem_dir or "postmortems",
        database_recipe=database_recipe,
    )


def _database_recipe(args) -> dict:
    """Replay recipe matching :func:`_database` for bundle manifests."""
    if getattr(args, "data_dir", None):
        return {"data_dir": args.data_dir}
    if args.workload == "tpch":
        return {"workload": "tpch", "scale_factor": args.scale_factor, "seed": 11}
    return {"workload": "ssb", "scale_factor": args.scale_factor, "seed": 7}


def _finish_recorder(recorder, args) -> None:
    """Flush ``--events-out``, surface bundle paths, detach the log."""
    if recorder is None:
        return
    if args.events_out:
        recorder.events.write_jsonl(args.events_out)
        print(f"wrote event log to {args.events_out}", file=sys.stderr)
    for record in recorder.records(status="failed"):
        bundle = record.strategy.get("bundle")
        if bundle:
            print(f"wrote post-mortem bundle to {bundle}", file=sys.stderr)
    recorder.uninstall()


def _fault_kwargs(args) -> dict:
    """Build the Session/benchmark fault keywords from CLI flags
    (:class:`~repro.faults.RetryPolicy` validates the knobs and raises
    :class:`~repro.errors.ConfigurationError` on bad values)."""
    kwargs: dict = {"fault_plan": args.fault_plan, "retry_policy": None}
    overrides = {
        key: value
        for key, value in (
            ("max_retries", args.max_retries),
            ("backoff_base_ms", args.backoff_ms),
            ("morsel_timeout_ms", args.morsel_timeout_ms),
        )
        if value is not None
    }
    if overrides:
        from .faults import RetryPolicy

        kwargs["retry_policy"] = RetryPolicy(**overrides)
    return kwargs


def _database(args):
    if getattr(args, "data_dir", None):
        return load_database(args.data_dir)
    if args.workload == "tpch":
        return generate_tpch(args.scale_factor)
    return generate_ssb(args.scale_factor)


def _cmd_devices(_args) -> int:
    rows = [
        [
            profile.name, profile.kind, profile.architecture,
            profile.compute_units, profile.scratchpad_per_unit // 1024,
            round(profile.global_bandwidth, 1),
            round(profile.memory_capacity / 1e9, 1),
        ]
        for profile in list_profiles()
    ]
    print(
        format_table(
            ["name", "kind", "architecture", "cores", "scratchpad (KB)",
             "bandwidth (GB/s)", "memory (GB)"],
            rows,
            title="Built-in device profiles",
        )
    )
    return 0


def _cmd_query(args) -> int:
    recorder = _recorder(args, _database_recipe(args))
    session = Session(
        _database(args),
        device=args.device,
        engine=args.engine,
        residency=args.residency,
        devices=args.devices,
        partitioning=args.partitioning,
        recorder=recorder,
        compression=args.compression,
        **_fault_kwargs(args),
    )
    try:
        if args.trace_out:
            from .telemetry import tracing

            with tracing():
                result = session.execute(args.sql)
        else:
            result = session.execute(args.sql)
    finally:
        _finish_recorder(recorder, args)
    for row in result.table.head(args.limit):
        print(row)
    if result.table.num_rows > args.limit:
        print(f"... ({result.table.num_rows} rows total)")
    print()
    print(result.summary())
    if result.optimizer is not None:
        decision = result.optimizer
        print(
            f"optimizer: {decision.describe()}  "
            f"(predicted {decision.predicted_ms:.3f} ms, "
            f"observed {decision.observed_ms:.3f} ms)"
        )
    if result.compression is not None:
        print(f"compression: {result.compression.summary()}")
    if result.scaleout is not None:
        print(f"scaleout: {result.scaleout.summary()}")
        recovery = result.scaleout.recovery
        if recovery is not None and recovery.faulted:
            print(f"recovery: {recovery.summary()}")
    if args.residency:
        stats = session.placement_stats()
        if stats is not None:
            print(f"placement: {stats.summary()}")
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(result.trace.chrome_json())
        print(
            f"wrote Chrome trace ({len(result.trace.timeline())} spans) "
            f"to {args.trace_out}"
        )
    return 0


def _cmd_explain(args) -> int:
    session = Session(
        _database(args),
        device=args.device,
        engine=args.engine,
        residency=args.residency,
        devices=args.devices,
        partitioning=args.partitioning,
        compression=args.compression,
        **_fault_kwargs(args),
    )
    print(session.explain(args.sql, analyze=args.analyze))
    return 0


def _cmd_bench(args) -> int:
    database = _database(args)
    if args.workload == "tpch":
        plan = tpch_plan(args.query, database)
    else:
        plan = ssb_plan(args.query, database)
    rows = []
    pcie = membound = 0.0
    for label, engine in (
        ("Operator-at-a-time", OperatorAtATimeEngine()),
        ("HorseQC: Multi-pass", MultiPassEngine()),
        ("HorseQC: Fully pipelined", CompoundEngine("lrgp_simd")),
    ):
        session = Session(
            database,
            device=args.device,
            engine=engine,
            devices=args.devices,
            partitioning=args.partitioning,
            compression=args.compression,
            **_fault_kwargs(args),
        )
        result = session.execute(plan)
        rows.append(
            [
                label,
                round(result.kernel_ms, 4),
                round(result.global_memory_bytes / 1e6, 2),
                f"{result.kernel_ms / result.pcie_ms * 100:.0f}%",
            ]
        )
        pcie, membound = result.pcie_ms, result.memory_bound_ms
    print(
        format_table(
            ["engine", "kernel (ms)", "GPU global (MB)", "of PCIe time"],
            rows,
            title=(
                f"{args.workload} {args.query} on {args.device} "
                f"(SF {args.scale_factor}; PCIe {pcie:.4f} ms, "
                f"memory bound {membound:.4f} ms)"
            ),
            float_format="{:.4f}",
        )
    )
    return 0


def _cmd_generate(args) -> int:
    if args.workload == "tpch":
        if args.skew:
            raise SystemExit("--skew is only supported for the SSB workload")
        database = generate_tpch(args.scale_factor, seed=args.seed)
    else:
        database = generate_ssb(args.scale_factor, seed=args.seed, skew=args.skew)
    catalog = save_database(database, args.out)
    total_rows = sum(database[name].num_rows for name in database.table_names)
    print(
        f"wrote {len(database.table_names)} tables, {total_rows} rows, "
        f"{database.nbytes / 1e6:.1f} MB to {catalog.parent}"
    )
    return 0


def _cmd_experiment(args) -> int:
    import inspect

    from .experiments import EXPERIMENTS

    names = sorted(EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        function, title = EXPERIMENTS[name]
        kwargs = {}
        if (
            args.scale_factor is not None
            and "scale_factor" in inspect.signature(function).parameters
        ):
            kwargs["scale_factor"] = args.scale_factor
        print("=" * 78)
        print(f"{name}: {title}")
        print("=" * 78)
        print(function(**kwargs).text())
    return 0


def _cmd_serve_bench(args) -> int:
    from .serving.bench import run_serving_benchmark

    if args.tiny:
        scale_factor = min(args.scale_factor, 0.001)
        worker_counts: tuple[int, ...] = (1, 2)
        repeats, passes = 2, 2
    else:
        scale_factor = args.scale_factor
        worker_counts = tuple(
            int(part) for part in args.workers.split(",") if part.strip()
        )
        repeats, passes = args.repeats, args.passes
    recorder = _recorder(
        args, {"workload": "ssb", "scale_factor": scale_factor, "seed": 7}
    )
    try:
        report = run_serving_benchmark(
            scale_factor=scale_factor,
            worker_counts=worker_counts,
            repeats=repeats,
            passes=passes,
            device=args.device,
            engine=args.engine,
            devices=args.devices,
            partitioning=args.partitioning,
            recorder=recorder,
            **_fault_kwargs(args),
        )
    finally:
        _finish_recorder(recorder, args)
    print(report.text())
    if args.metrics_out and report.metrics_text is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(report.metrics_text)
        print(f"\nwrote Prometheus metrics to {args.metrics_out}")
    return 0 if report.passed else 1


def _cmd_metrics(args) -> int:
    from .serving import Server

    database = generate_ssb(args.scale_factor)
    names = sorted(SSB_QUERIES)
    workload = [SSB_QUERIES[name] for name in names]
    with Server(
        database,
        device=args.device,
        engine=args.engine,
        workers=args.workers,
        queue_size=len(workload) + 1,
    ) as server:
        for _ in range(max(1, args.passes)):
            server.execute_many(workload)
        text = server.metrics_text()
        summary = server.stats().summary()
    print(text)
    print(f"# {summary}".replace("\n", "\n# "), file=sys.stderr)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
    return 0


def _cmd_log(args) -> int:
    from .telemetry.events import load_jsonl

    try:
        events = load_jsonl(args.path)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.kind:
        events = [event for event in events if event.kind == args.kind]
    if args.query:
        events = [event for event in events if event.query == args.query]
    if args.tail > 0:
        events = events[-args.tail:]
    for event in events:
        if args.json:
            print(event.to_json())
        else:
            attrs = " ".join(
                f"{key}={value}" for key, value in sorted(event.attrs.items())
            )
            print(
                f"{event.seq:>6}  {event.query or '-':<10} "
                f"{event.kind:<22} {attrs}"
            )
    return 0


def _cmd_baseline(args) -> int:
    from .telemetry.baseline import (
        DEFAULT_BASELINE_PATH,
        check_baselines,
        record_baselines,
    )

    path = args.baseline or DEFAULT_BASELINE_PATH
    if args.action == "record":
        store = record_baselines(path=path, scale_factor=args.scale_factor)
        print(f"recorded {len(store['queries'])} query baselines to {path}")
        return 0
    report = check_baselines(path, tolerance_scale=args.tolerance)
    print(report.render())
    return 0 if report.passed else 1


def _cmd_replay(args) -> int:
    from .telemetry.recorder import replay_bundle

    report = replay_bundle(
        args.bundle, data_dir=args.data_dir, device=args.device
    )
    print(report.render())
    return 0 if report.matched else 1


_COMMANDS = {
    "devices": _cmd_devices,
    "query": _cmd_query,
    "explain": _cmd_explain,
    "bench": _cmd_bench,
    "generate": _cmd_generate,
    "experiment": _cmd_experiment,
    "serve-bench": _cmd_serve_bench,
    "metrics": _cmd_metrics,
    "log": _cmd_log,
    "baseline": _cmd_baseline,
    "replay": _cmd_replay,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
