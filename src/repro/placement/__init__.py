"""Device placement: cross-query column residency, eviction, spill.

This package is the data-placement layer the paper's analysis calls
for (and systems like Theseus build in production): device memory is a
managed cache over the host-resident database, so repeated queries run
at device speed instead of re-paying the interconnect, and working
sets larger than device memory spill to the streaming out-of-core
executor instead of failing.

* :class:`BufferPool` — per-device residency manager (see
  :mod:`repro.placement.pool`);
* :func:`execute_with_placement` — working-set check, engine run,
  transparent out-of-core fallback;
* :class:`PlacementStats` / :class:`QueryPlacement` — counters
  surfaced through ``Server.stats()`` and ``ExecutionResult.placement``.
"""

from .executor import base_column_bytes, execute_with_placement
from .policy import POLICIES, cost_aware_lru, lru, resolve_policy
from .pool import BufferPool, ResidentColumn
from .stats import PlacementStats, QueryPlacement

__all__ = [
    "POLICIES",
    "BufferPool",
    "PlacementStats",
    "QueryPlacement",
    "ResidentColumn",
    "base_column_bytes",
    "cost_aware_lru",
    "execute_with_placement",
    "lru",
    "resolve_policy",
]
