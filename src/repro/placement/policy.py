"""Eviction policies for the device buffer pool.

The pool evicts when an allocation (a new resident column, a hash
table, per-query scratch) would exceed device capacity.  Victims are
always *unpinned* resident columns — buffers acquired by an in-flight
query are never candidates.

The default policy is cost-aware: the price of evicting a column is
what it costs to bring it back, i.e. its modeled host->device transfer
time (bytes x the link's per-byte cost, plus setup latency).  Columns
that are cheap to restore go first; ties — including every column on a
zero-copy device, where re-transfer is free — break least recently
used first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pool import ResidentColumn

#: A policy orders eviction candidates, cheapest-to-evict first.
PolicyFn = Callable[[Iterable["ResidentColumn"]], List["ResidentColumn"]]


def cost_aware_lru(candidates: Iterable["ResidentColumn"]) -> List["ResidentColumn"]:
    """Evict the column with the lowest re-transfer cost first; break
    ties (equal cost, e.g. equal size or a zero-copy link) by least
    recently used."""
    return sorted(candidates, key=lambda entry: (entry.retransfer_cost, entry.last_used))


def lru(candidates: Iterable["ResidentColumn"]) -> List["ResidentColumn"]:
    """Plain least-recently-used ordering (cost-blind baseline)."""
    return sorted(candidates, key=lambda entry: entry.last_used)


#: Policy aliases accepted by :class:`~repro.placement.BufferPool`.
POLICIES: dict[str, PolicyFn] = {
    "cost": cost_aware_lru,
    "lru": lru,
}


def resolve_policy(policy: "str | PolicyFn") -> PolicyFn:
    """Resolve a policy alias or pass a callable through."""
    if callable(policy):
        return policy
    try:
        return POLICIES[policy]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ValueError(
            f"unknown eviction policy {policy!r}; known policies: {known}"
        ) from None
