"""The device buffer pool: cross-query base-column residency.

The serving runtime re-executes the same dashboard queries over the
same base tables; without placement management every execution
re-charges a full PCIe transfer for every input column (the engine
layer's "no caching between queries" stance, Section 8.9 of the
paper).  A :class:`BufferPool` wraps one
:class:`~repro.hardware.device.VirtualCoprocessor` and makes residency
a first-class, cross-query concern:

* **First use** of a base column transfers it host->device (charged
  against the interconnect model, exactly as before) and keeps the
  buffer resident (a *pooled* allocation).
* **Subsequent queries** on the same worker acquire the resident
  buffer without touching the link — a placement *hit*.
* **Capacity pressure** (a new column, a hash table, per-query
  scratch) evicts unpinned resident columns by a cost-aware policy
  (modeled re-transfer cost, LRU tiebreak).  Buffers pinned by an
  in-flight query are never evicted.
* **Staleness** is impossible: entries carry the database fingerprint
  (catalog serial + mutation version) they were loaded under; any
  catalog mutation invalidates the entry on next acquire.

The pool does not decide *whether* a query can run on the device —
that is the working-set check in :mod:`repro.placement.executor`,
which routes provably oversized plans to the streaming out-of-core
executor instead.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..errors import PlacementError
from ..hardware.device import DeviceBuffer, VirtualCoprocessor
from ..telemetry.events import record_event
from .policy import PolicyFn, resolve_policy
from .stats import PlacementStats


@dataclass
class ResidentColumn:
    """One base column resident in device global memory."""

    #: (catalog serial, table name, column name) — stable across versions.
    key: tuple
    buffer: DeviceBuffer
    #: Database fingerprint (serial, version) the column was loaded under.
    fingerprint: tuple
    #: Modeled host->device re-transfer time in seconds (0 on zero-copy
    #: devices) — the eviction policy's cost input.
    retransfer_cost: float
    #: Logical clock of the most recent acquire (LRU ordering).
    last_used: int = 0
    #: Number of in-flight queries holding this column.
    pins: int = field(default=0)

    @property
    def nbytes(self) -> int:
        return self.buffer.nbytes

    @property
    def pinned(self) -> bool:
        return self.pins > 0


class BufferPool:
    """Cross-query column residency manager for one virtual device.

    Parameters
    ----------
    device:
        The coprocessor whose memory this pool manages.  The pool
        installs itself as ``device.placement_pool`` and hooks the
        device's allocation-pressure and reset callbacks.
    policy:
        Eviction policy: ``"cost"`` (default, re-transfer cost with LRU
        tiebreak), ``"lru"``, or a callable ordering candidates
        cheapest-to-evict first.
    """

    def __init__(self, device: VirtualCoprocessor, policy: "str | PolicyFn" = "cost"):
        self.device = device
        self.policy = resolve_policy(policy)
        self._entries: dict[tuple, ResidentColumn] = {}
        self._clock = 0
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._fallbacks = 0
        self._hit_bytes = 0
        self._transferred_bytes = 0
        self._evicted_bytes = 0
        device.placement_pool = self
        device.pressure_callback = self._on_pressure
        device.reset_callback = self._on_reset

    # ------------------------------------------------------------------
    # acquisition / release
    # ------------------------------------------------------------------
    def acquire(
        self, table: str, column_name: str, column, fingerprint: tuple
    ) -> tuple[ResidentColumn, bool]:
        """Make ``table.column_name`` resident and pin it; returns
        ``(entry, hit)``.

        A hit pays no transfer; a miss charges the H2D transfer through
        the device's interconnect model.  An entry whose fingerprint no
        longer matches the catalog is invalidated and re-transferred.
        Pins are released by :meth:`release` at the end of the query.
        """
        key = (fingerprint[0], table, column_name)
        with self._lock:
            self._clock += 1
            entry = self._entries.get(key)
            if entry is not None and entry.fingerprint != fingerprint:
                self._invalidate(entry)
                entry = None
            if entry is not None:
                entry.pins += 1
                entry.last_used = self._clock
                self._hits += 1
                self._hit_bytes += entry.nbytes
                return entry, True
            # Miss: transfer (allocation pressure may evict through
            # _on_pressure, re-entrant under this RLock).  With a
            # compression policy on the device, the resident buffer is
            # the *wire image*: more columns fit per device, eviction
            # and re-transfer are charged at the compressed size, and
            # each query decodes into transient scratch (the runtime
            # charges that decode kernel).  Under ``compression="lazy"``
            # pooled columns are *decoded on demand*: the runtime defers
            # the decode entirely and predicates scan the resident wire
            # image in place (see :mod:`repro.compression.lazy`).
            policy = self.device.compression
            encoded = policy.encoded(column) if policy is not None else None
            if encoded is not None and encoded.codec != "passthrough":
                buffer = self.device.transfer_to_device(
                    encoded.wire_array,
                    label=f"{table}.{column_name}",
                    pooled=True,
                    raw_nbytes=column.nbytes,
                    codec=encoded.codec,
                )
            else:
                buffer = self.device.transfer_to_device(
                    column.values, label=f"{table}.{column_name}", pooled=True
                )
            entry = ResidentColumn(
                key=key,
                buffer=buffer,
                fingerprint=fingerprint,
                retransfer_cost=self._retransfer_cost(buffer.nbytes),
                last_used=self._clock,
                pins=1,
            )
            self._entries[key] = entry
            self._misses += 1
            self._transferred_bytes += buffer.nbytes
            return entry, False

    def release(self, entries: "list[ResidentColumn]") -> None:
        """Unpin entries acquired by a finished (or failed) query."""
        with self._lock:
            for entry in entries:
                if entry.pins > 0:
                    entry.pins -= 1

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def evict(self, nbytes: int) -> int:
        """Evict unpinned resident columns until ``nbytes`` are freed
        (or no candidates remain); returns the bytes actually freed."""
        freed = 0
        with self._lock:
            candidates = [e for e in self._entries.values() if not e.pinned]
            for entry in self.policy(candidates):
                if freed >= nbytes:
                    break
                freed += entry.nbytes
                self._evict(entry)
        return freed

    def _evict(self, entry: ResidentColumn) -> None:
        if entry.pinned:
            raise PlacementError(
                f"attempt to evict pinned resident column {entry.key!r}"
            )
        del self._entries[entry.key]
        if not entry.buffer.freed:
            self.device.free(entry.buffer)
        self._evictions += 1
        self._evicted_bytes += entry.nbytes
        record_event(
            "placement.evicted",
            key=".".join(str(part) for part in entry.key)
            if isinstance(entry.key, tuple)
            else str(entry.key),
            bytes=entry.nbytes,
        )

    def _invalidate(self, entry: ResidentColumn) -> None:
        if entry.pinned:
            raise PlacementError(
                f"resident column {entry.key!r} mutated while pinned by an "
                "in-flight query"
            )
        del self._entries[entry.key]
        if not entry.buffer.freed:
            self.device.free(entry.buffer)
        self._invalidations += 1

    def _on_pressure(self, shortfall: int) -> int:
        """Device allocation-pressure hook: reclaim ``shortfall`` bytes."""
        return self.evict(shortfall)

    def _on_reset(self) -> None:
        """Device ``reset_all`` hook: residency is gone; drop bookkeeping."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # maintenance & stats
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every unpinned resident column (e.g. between workloads)."""
        with self._lock:
            for entry in list(self._entries.values()):
                if not entry.pinned:
                    self._evict(entry)

    def record_fallback(self) -> None:
        """Count one query routed to the out-of-core streaming path."""
        with self._lock:
            self._fallbacks += 1

    def _retransfer_cost(self, nbytes: int) -> float:
        link = self.device.interconnect
        return link.transfer_time(nbytes, "h2d") if link is not None else 0.0

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return sum(entry.nbytes for entry in self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> PlacementStats:
        with self._lock:
            return PlacementStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                fallbacks=self._fallbacks,
                hit_bytes=self._hit_bytes,
                transferred_bytes=self._transferred_bytes,
                evicted_bytes=self._evicted_bytes,
                resident_bytes=sum(e.nbytes for e in self._entries.values()),
                resident_columns=len(self._entries),
                capacity_bytes=self.device.profile.memory_capacity,
            )
