"""Placement-aware execution: working-set check + out-of-core fallback.

The run-to-finish engines need every input column (plus hash tables
and scratch) in device memory at once; historically a working set
larger than the device raised
:class:`~repro.errors.DeviceMemoryError` unless the caller hand-picked
the streaming :class:`~repro.macro.batch.BatchExecutor`.  With a
:class:`~repro.placement.BufferPool` attached, execution becomes
transparent:

1. If the plan's base input columns *provably* exceed device capacity
   (no eviction schedule can help: the columns alone do not fit), the
   query is routed directly to the streaming batch executor.
2. Otherwise the normal engine runs; the pool evicts cold resident
   columns under pressure.  If the device still runs out (hash tables
   or scratch pushed it over), the query transparently retries on the
   streaming path.

Either way the caller gets an ordinary
:class:`~repro.engines.base.ExecutionResult` whose ``placement``
records whether the out-of-core path ran.
"""

from __future__ import annotations

from ..engines.base import Engine, ExecutionResult
from ..engines.compound import CompoundEngine
from ..errors import DeviceMemoryError, PlanError
from ..hardware.device import VirtualCoprocessor
from ..plan.physical import PhysicalQuery
from ..storage.database import Database


def base_column_bytes(query: PhysicalQuery, database: Database) -> int:
    """Total bytes of the distinct base columns the plan reads — the
    provable lower bound on the run-to-finish device working set."""
    seen: set[tuple[str, str]] = set()
    total = 0
    for pipeline in query.pipelines:
        if pipeline.source_is_virtual:
            continue
        table = database.table(pipeline.source)
        for name in pipeline.required_columns:
            base = pipeline.source_rename.get(name, name)
            key = (pipeline.source, base)
            if key not in seen:
                seen.add(key)
                total += table.column(base).nbytes
    return total


def execute_with_placement(
    engine: Engine,
    query: PhysicalQuery,
    database: Database,
    device: VirtualCoprocessor,
    seed: int = 42,
) -> ExecutionResult:
    """Run ``query`` with residency management and automatic fallback.

    Requires a :class:`~repro.placement.BufferPool` attached to
    ``device`` (``device.placement_pool``).
    """
    pool = device.placement_pool
    if pool is None:
        return engine.execute(query, database, device, seed=seed)
    if base_column_bytes(query, database) > device.profile.memory_capacity:
        return _fallback(engine, query, database, device, seed, original=None)
    try:
        return engine.execute(query, database, device, seed=seed)
    except DeviceMemoryError as error:
        return _fallback(engine, query, database, device, seed, original=error)


def _fallback(
    engine: Engine,
    query: PhysicalQuery,
    database: Database,
    device: VirtualCoprocessor,
    seed: int,
    original: DeviceMemoryError | None,
) -> ExecutionResult:
    from ..macro.batch import execute_out_of_core

    device.placement_pool.record_fallback()
    mode = engine.mode if isinstance(engine, CompoundEngine) else "lrgp_simd"
    try:
        return execute_out_of_core(query, database, device, seed=seed, mode=mode)
    except PlanError:
        # The plan cannot stream (e.g. the final pipeline reads a
        # virtual table, or AVG partials cannot merge).  Surface the
        # capacity problem, not the fallback's limitation.
        if original is not None:
            raise original from None
        raise
