"""Placement metrics: per-query and per-pool residency counters.

This module is import-free (dataclasses only) so that the engine layer
can reference :class:`QueryPlacement` without creating an import cycle
with the rest of the placement package.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class QueryPlacement:
    """Residency outcome of one query, on ``ExecutionResult.placement``."""

    #: Base-column loads served from device-resident buffers (no PCIe).
    hits: int = 0
    #: Base-column loads that paid a host->device transfer.
    misses: int = 0
    #: Bytes the resident hits would otherwise have moved over PCIe.
    hit_bytes: int = 0
    #: Bytes actually transferred for the misses.
    transferred_bytes: int = 0
    #: True when the query ran through the streaming out-of-core path.
    out_of_core: bool = False

    @property
    def hit_rate(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0


@dataclass
class PlacementStats:
    """A snapshot of one :class:`~repro.placement.BufferPool` (or the
    sum over several per-worker pools)."""

    #: Column acquisitions served without a PCIe transfer.
    hits: int = 0
    #: Column acquisitions that transferred (first use or re-fetch).
    misses: int = 0
    #: Resident columns dropped under capacity pressure.
    evictions: int = 0
    #: Resident columns dropped because the database fingerprint moved.
    invalidations: int = 0
    #: Queries that fell back to the streaming out-of-core executor.
    fallbacks: int = 0
    #: PCIe bytes saved by hits.
    hit_bytes: int = 0
    #: PCIe bytes paid by misses.
    transferred_bytes: int = 0
    #: PCIe bytes given back by evictions.
    evicted_bytes: int = 0
    #: Bytes currently resident on the device(s).
    resident_bytes: int = 0
    #: Number of columns currently resident.
    resident_columns: int = 0
    #: Device memory capacity (summed over pools when aggregated).
    capacity_bytes: int = 0
    #: Number of pools summed into this snapshot.
    pools: int = field(default=1)

    @property
    def hit_rate(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    @classmethod
    def aggregate(cls, snapshots: "list[PlacementStats]") -> "PlacementStats":
        """Sum per-worker pool snapshots into one server-wide view."""
        total = cls(pools=0)
        for snap in snapshots:
            total.hits += snap.hits
            total.misses += snap.misses
            total.evictions += snap.evictions
            total.invalidations += snap.invalidations
            total.fallbacks += snap.fallbacks
            total.hit_bytes += snap.hit_bytes
            total.transferred_bytes += snap.transferred_bytes
            total.evicted_bytes += snap.evicted_bytes
            total.resident_bytes += snap.resident_bytes
            total.resident_columns += snap.resident_columns
            total.capacity_bytes += snap.capacity_bytes
            total.pools += snap.pools
        return total

    def summary(self) -> str:
        return (
            f"resident {self.resident_bytes / 1e6:.1f} MB in "
            f"{self.resident_columns} columns  "
            f"hits {self.hits}/{self.hits + self.misses} "
            f"({self.hit_rate * 100:.0f}%)  "
            f"saved {self.hit_bytes / 1e6:.1f} MB PCIe  "
            f"evictions {self.evictions}  "
            f"invalidations {self.invalidations}  "
            f"out-of-core {self.fallbacks}"
        )
