"""Analysis: pass counting, movement breakdowns, report formatting."""

from .movement import MovementBreakdown, movement_breakdown, reduction_factor
from .passes import (
    PassCount,
    affordable_passes,
    count_passes,
    memory_limited,
    passes_from_result,
)
from .report import format_factor, format_table

__all__ = [
    "MovementBreakdown",
    "PassCount",
    "affordable_passes",
    "count_passes",
    "format_factor",
    "format_table",
    "memory_limited",
    "movement_breakdown",
    "passes_from_result",
    "reduction_factor",
]
