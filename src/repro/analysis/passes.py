"""Pass counting (Table 1): GPU global memory volume / PCIe volume.

"We look at the ratio of memory access to PCIe traffic as *number of
passes* to assess the load on memory and bus links" (Section 2.3).
Queries above the affordable-pass threshold are memory-bound before the
PCIe link ever saturates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engines.base import Engine, ExecutionResult
from ..hardware.device import VirtualCoprocessor
from ..hardware.profiles import DeviceProfile
from ..plan.logical import LogicalPlan
from ..storage.database import Database


@dataclass
class PassCount:
    """Number of passes of one query under operator-at-a-time."""

    query: str
    passes: float
    global_bytes: int
    pcie_bytes: int

    def row(self) -> str:
        return f"{self.query:<8s} {self.passes:6.1f}"


def affordable_passes(profile: DeviceProfile, pcie_per_direction: float = 16.0) -> float:
    """How many passes the device affords before memory binds first.

    With a symmetric load both PCIe directions stream concurrently
    (2 x 16 GB/s against 146 GB/s ~ 4.5 passes); in the worst
    (fully asymmetric) case one direction carries everything
    (146/16 ~ 9 passes) — the thresholds of Section 2.3.
    """
    return profile.global_bandwidth / pcie_per_direction


def count_passes(
    query_name: str,
    plan: LogicalPlan,
    database: Database,
    engine: Engine,
    device: VirtualCoprocessor,
) -> PassCount:
    """Execute ``plan`` and report its Table 1 pass count."""
    result = engine.execute(plan, database, device)
    return passes_from_result(query_name, result)


def passes_from_result(query_name: str, result: ExecutionResult) -> PassCount:
    pcie = result.input_bytes + result.output_bytes
    return PassCount(
        query=query_name,
        passes=result.passes,
        global_bytes=result.global_memory_bytes,
        pcie_bytes=pcie,
    )


def memory_limited(count: PassCount, profile: DeviceProfile) -> bool:
    """Is this query *definitely* memory-limited (worst-case threshold,
    Section 2.3's '9 out of 24 queries')?"""
    return count.passes > affordable_passes(profile)
