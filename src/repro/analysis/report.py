"""Plain-text table formatting for benchmark harnesses."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned plain-text table.

    Numbers are right-aligned, strings left-aligned; floats use
    ``float_format``.
    """
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)

    widths = [len(str(header)) for header in headers]
    for cells in rendered:
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))

    def is_numeric(column: int) -> bool:
        return all(
            not row or _numeric(row[column])
            for row in rows
            if column < len(row)
        )

    numeric_columns = [is_numeric(index) for index in range(len(headers))]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if numeric_columns[index]:
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("-" * max(len(title), 8))
    lines.append(fmt_row([str(header) for header in headers]))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt_row(cells) for cells in rendered)
    return "\n".join(lines)


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def format_factor(value: float) -> str:
    """Render a speedup/reduction factor, e.g. '4.7x'."""
    if value == float("inf"):
        return "inf"
    return f"{value:.1f}x"
