"""Data-movement breakdowns (Figures 5, 9, and 13).

These reports decompose an execution profile into the per-kernel-kind
volumes the paper's movement figures show: how many GB the scans,
probes, prefix sums, gathers, and compound kernels each move at every
memory level, plus the PCIe volumes of the macro model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engines.base import ExecutionResult
from ..hardware.device import VirtualCoprocessor
from ..hardware.traffic import MemoryLevel


@dataclass
class MovementBreakdown:
    """One engine's data movement for one query (a Figure 5/9/13 panel)."""

    label: str
    pcie_bytes: int
    pcie_ms: float
    global_bytes: int
    global_ms: float
    onchip_bytes: int
    onchip_ms: float
    by_kind: dict[str, dict] = field(default_factory=dict)

    def format(self) -> str:
        lines = [f"== {self.label} =="]
        for kind, entry in sorted(
            self.by_kind.items(), key=lambda item: -item[1]["global_bytes"]
        ):
            lines.append(
                f"  {kind:<12s} {entry['launches']:4d} launches   "
                f"global {entry['global_bytes'] / 1e6:10.2f} MB   "
                f"on-chip {entry['onchip_bytes'] / 1e6:10.2f} MB   "
                f"{entry['time_ms']:8.3f} ms"
            )
        lines.append(
            f"  PCIe {self.pcie_bytes / 1e6:10.2f} MB ~{self.pcie_ms:8.3f} ms   "
            f"GPU global {self.global_bytes / 1e6:10.2f} MB ~{self.global_ms:8.3f} ms   "
            f"on-chip {self.onchip_bytes / 1e6:10.2f} MB ~{self.onchip_ms:8.3f} ms"
        )
        return "\n".join(lines)


def movement_breakdown(
    label: str, result: ExecutionResult, device: VirtualCoprocessor
) -> MovementBreakdown:
    """Decompose an execution into the paper's movement metrics.

    PCIe volume is the batch-processing macro volume (input columns +
    result); GPU global and on-chip volumes come from the kernel
    traces.
    """
    profile = result.profile
    global_bytes = profile.bytes_at(MemoryLevel.GLOBAL)
    onchip_bytes = profile.bytes_at(MemoryLevel.ONCHIP)
    pcie_bytes = result.input_bytes + result.output_bytes
    return MovementBreakdown(
        label=label,
        pcie_bytes=pcie_bytes,
        pcie_ms=result.pcie_ms,
        global_bytes=global_bytes,
        global_ms=device.memory_bound_ms(global_bytes),
        onchip_bytes=onchip_bytes,
        onchip_ms=onchip_bytes / (device.profile.onchip_bandwidth * 1e9) * 1e3,
        by_kind=profile.by_kind(),
    )


def reduction_factor(baseline: MovementBreakdown, improved: MovementBreakdown) -> float:
    """GPU-global-memory reduction factor (the paper's headline "4.7x")."""
    if improved.global_bytes == 0:
        return float("inf")
    return baseline.global_bytes / improved.global_bytes
