"""Simulated coprocessor hardware: profiles, traffic, cost model, device.

This package replaces the paper's physical testbed (Table 2) with an
instrumented simulation.  See ``DESIGN.md`` for the substitution
rationale.
"""

from .costmodel import CostBreakdown, KernelCostModel
from .device import DeviceBuffer, VirtualCoprocessor
from .interconnect import NVLINK1, OPENCAPI, PCIE3, Interconnect
from .profiles import (
    A10,
    GTX770,
    GTX970,
    RX480,
    TABLE2_DEVICES,
    XEON_E5,
    DeviceProfile,
    get_profile,
    list_profiles,
)
from .traffic import (
    AtomicBatch,
    KernelTrace,
    MemoryLevel,
    Profile,
    TrafficMeter,
    TransferRecord,
)

__all__ = [
    "A10",
    "AtomicBatch",
    "CostBreakdown",
    "DeviceBuffer",
    "DeviceProfile",
    "GTX770",
    "GTX970",
    "Interconnect",
    "KernelCostModel",
    "KernelTrace",
    "MemoryLevel",
    "NVLINK1",
    "OPENCAPI",
    "PCIE3",
    "Profile",
    "RX480",
    "TABLE2_DEVICES",
    "TrafficMeter",
    "TransferRecord",
    "VirtualCoprocessor",
    "XEON_E5",
    "get_profile",
    "list_profiles",
]
