"""Traffic accounting for the simulated memory hierarchy.

The paper's entire argument rests on *bytes moved per memory level*
(Figures 5, 9, 13) and on pressure on the atomic functional units
(Sections 5.3 and 6).  This module provides the bookkeeping that replaces
the paper's nvprof/CodeXL DRAM counters: every primitive and every
generated kernel reports its reads, writes, atomics, and instruction
counts to a :class:`TrafficMeter`, and a :class:`KernelTrace` snapshots
one kernel launch for the profiler.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MemoryLevel(enum.Enum):
    """The memory levels of Figure 1, from host RAM down to registers."""

    HOST = "host"
    #: GPU global memory (device DRAM); main memory for an APU.
    GLOBAL = "global"
    #: On-chip scratchpad memory, registers, and caches, aggregated — the
    #: paper reports these together as "on-chip memory" (Figure 9).
    ONCHIP = "onchip"


#: Atomic operation kinds, ordered by same-address cost:
#:
#: * ``"add"``       — atomic adds whose return value is unused; the
#:   hardware combines same-address adds (single-tuple aggregation,
#:   Appendix G.1 observes these are the cheapest);
#: * ``"fetch_add"`` — adds whose old value must be returned to the
#:   thread (the atomic prefix sum of Section 5.1);
#: * ``"rmw"``       — data-dependent read-modify-write chains that
#:   cannot combine (hash-table inserts and aggregation-table updates);
#:   their serialization is the contention cliff of Experiment 2.
ATOMIC_KINDS = ("add", "fetch_add", "rmw")


@dataclass
class AtomicBatch:
    """A batch of atomic operations issued by one kernel.

    ``count`` is the total number of atomic operations; ``max_chain`` is
    the length of the longest same-address conflict chain, which bounds
    the serialized portion of the batch (e.g. for an atomic prefix sum on
    a single counter, ``max_chain == count``; for a hash aggregate it is
    the population of the hottest group).  ``kind`` selects the
    serialization rate (see :data:`ATOMIC_KINDS`).
    """

    count: int
    max_chain: int
    kind: str = "fetch_add"

    def __post_init__(self) -> None:
        if self.count < 0 or self.max_chain < 0:
            raise ValueError("atomic counts must be non-negative")
        if self.max_chain > self.count:
            raise ValueError("max_chain cannot exceed count")
        if self.kind not in ATOMIC_KINDS:
            raise ValueError(f"unknown atomic kind {self.kind!r}")


class TrafficMeter:
    """Accumulates traffic for one kernel launch (or one scope).

    All byte counts are exact: they are derived from the actual numpy
    array sizes touched by the simulated primitives, not estimated.
    """

    def __init__(self) -> None:
        self.reads: dict[MemoryLevel, int] = {level: 0 for level in MemoryLevel}
        self.writes: dict[MemoryLevel, int] = {level: 0 for level in MemoryLevel}
        self.atomic_count = 0
        self.atomic_chains: dict[str, int] = {kind: 0 for kind in ATOMIC_KINDS}
        self.instructions = 0
        self.barriers = 0
        #: Portion of GLOBAL traffic that targets device-resident hash
        #: tables (slots, entries, aggregation tables).  Kernel-at-a-time
        #: execution keeps this on the device while everything else moves
        #: over PCIe (Section 2.2).
        self.table_read_bytes = 0
        self.table_write_bytes = 0

    def record_read(self, level: MemoryLevel, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.reads[level] += int(nbytes)

    def record_write(self, level: MemoryLevel, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.writes[level] += int(nbytes)

    def record_table_read(self, nbytes: int) -> None:
        """A GLOBAL read that targets a device-resident hash table."""
        self.record_read(MemoryLevel.GLOBAL, nbytes)
        self.table_read_bytes += int(nbytes)

    def record_table_write(self, nbytes: int) -> None:
        """A GLOBAL write that targets a device-resident hash table."""
        self.record_write(MemoryLevel.GLOBAL, nbytes)
        self.table_write_bytes += int(nbytes)

    @property
    def table_bytes(self) -> int:
        """Total hash-table traffic (reads + writes)."""
        return self.table_read_bytes + self.table_write_bytes

    def record_atomics(self, batch: AtomicBatch) -> None:
        self.atomic_count += batch.count
        self.atomic_chains[batch.kind] = max(
            self.atomic_chains[batch.kind], batch.max_chain
        )

    @property
    def atomic_max_chain(self) -> int:
        """Longest same-address chain across all atomic kinds."""
        return max(self.atomic_chains.values())

    def record_instructions(self, count: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self.instructions += int(count)

    def record_barrier(self, count: int = 1) -> None:
        self.barriers += int(count)

    def bytes_at(self, level: MemoryLevel) -> int:
        """Total read + write volume at one memory level."""
        return self.reads[level] + self.writes[level]

    def merge(self, other: "TrafficMeter") -> None:
        """Fold another meter's counts into this one."""
        for level in MemoryLevel:
            self.reads[level] += other.reads[level]
            self.writes[level] += other.writes[level]
        self.atomic_count += other.atomic_count
        for kind in ATOMIC_KINDS:
            self.atomic_chains[kind] = max(
                self.atomic_chains[kind], other.atomic_chains[kind]
            )
        self.instructions += other.instructions
        self.barriers += other.barriers
        self.table_read_bytes += other.table_read_bytes
        self.table_write_bytes += other.table_write_bytes

    def snapshot(self) -> dict:
        """A plain-dict copy, convenient for reports and assertions."""
        return {
            "reads": {level.value: nbytes for level, nbytes in self.reads.items()},
            "writes": {level.value: nbytes for level, nbytes in self.writes.items()},
            "atomic_count": self.atomic_count,
            "atomic_max_chain": self.atomic_max_chain,
            "atomic_chains": dict(self.atomic_chains),
            "instructions": self.instructions,
            "barriers": self.barriers,
            "table_bytes": self.table_bytes,
        }


@dataclass
class KernelTrace:
    """The profiler record of a single simulated kernel launch."""

    name: str
    #: Coarse kernel category used when aggregating movement figures,
    #: e.g. "scan", "prefix_sum", "gather", "build", "probe", "compound".
    kind: str
    elements: int
    meter: TrafficMeter
    #: Simulated execution time in milliseconds (filled by the device).
    time_ms: float = 0.0
    #: Which cost-model component dominated ("memory", "compute",
    #: "atomics", "onchip", "launch") — used by tests and reports.
    bound_by: str = ""

    @property
    def global_bytes(self) -> int:
        return self.meter.bytes_at(MemoryLevel.GLOBAL)

    @property
    def onchip_bytes(self) -> int:
        return self.meter.bytes_at(MemoryLevel.ONCHIP)


@dataclass
class TransferRecord:
    """The profiler record of one host<->device transfer.

    ``nbytes`` is what crossed the link — for a compressed transfer
    that is the *wire* size, with ``raw_nbytes`` holding the decoded
    size and ``codec`` naming the wire encoding (``raw_nbytes == 0``
    means the transfer was uncompressed).
    """

    nbytes: int
    direction: str  # "h2d" or "d2h"
    time_ms: float
    label: str = ""
    raw_nbytes: int = 0
    codec: str = ""


@dataclass
class Profile:
    """Everything observed while executing a query on a virtual device."""

    kernels: list[KernelTrace] = field(default_factory=list)
    transfers: list[TransferRecord] = field(default_factory=list)

    @property
    def kernel_time_ms(self) -> float:
        return sum(trace.time_ms for trace in self.kernels)

    @property
    def transfer_time_ms(self) -> float:
        return sum(record.time_ms for record in self.transfers)

    @property
    def total_time_ms(self) -> float:
        return self.kernel_time_ms + self.transfer_time_ms

    def transfer_bytes(self, direction: str | None = None) -> int:
        return sum(
            record.nbytes
            for record in self.transfers
            if direction is None or record.direction == direction
        )

    def bytes_at(self, level: MemoryLevel) -> int:
        return sum(trace.meter.bytes_at(level) for trace in self.kernels)

    def reads_at(self, level: MemoryLevel) -> int:
        return sum(trace.meter.reads[level] for trace in self.kernels)

    def writes_at(self, level: MemoryLevel) -> int:
        return sum(trace.meter.writes[level] for trace in self.kernels)

    @property
    def atomic_count(self) -> int:
        return sum(trace.meter.atomic_count for trace in self.kernels)

    @property
    def table_bytes(self) -> int:
        return sum(trace.meter.table_bytes for trace in self.kernels)

    def kernels_of_kind(self, kind: str) -> list[KernelTrace]:
        return [trace for trace in self.kernels if trace.kind == kind]

    def by_kind(self) -> dict[str, dict]:
        """Aggregate volumes and times per kernel kind (Figure 5 style)."""
        summary: dict[str, dict] = {}
        for trace in self.kernels:
            entry = summary.setdefault(
                trace.kind,
                {"launches": 0, "global_bytes": 0, "onchip_bytes": 0, "time_ms": 0.0},
            )
            entry["launches"] += 1
            entry["global_bytes"] += trace.global_bytes
            entry["onchip_bytes"] += trace.onchip_bytes
            entry["time_ms"] += trace.time_ms
        return summary

    def merge(self, other: "Profile") -> None:
        self.kernels.extend(other.kernels)
        self.transfers.extend(other.transfers)
