"""Kernel cost model: traffic + atomics + compute -> simulated time.

The paper's experiments report *kernel execution times* that are, for
well-behaved kernels, explained by GPU global memory traffic divided by
bandwidth, and for atomic-heavy kernels by pressure on the atomic
functional units (Sections 5.3 and 8.4).  We model one kernel launch as
a set of concurrently streaming resources; the slowest resource
determines execution time:

``time = launch_overhead + barrier_cost + max(memory, onchip, compute, atomics)``

where

* ``memory``  = global-memory bytes / global bandwidth,
* ``onchip``  = on-chip bytes / on-chip bandwidth,
* ``compute`` = instruction count / compute throughput,
* ``atomics`` = max(total atomics / atomic throughput,
  longest same-address conflict chain / same-address rate).

The max() mirrors how a GPU overlaps memory, ALU, and atomic traffic
across thousands of resident threads; the same-address chain term is the
serialization the paper attributes to pipelined prefix sums (Section
5.3) and contended aggregation hash tables (Experiment 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .profiles import DeviceProfile
from .traffic import MemoryLevel, TrafficMeter

#: Fraction of peak DRAM bandwidth each kernel kind achieves.
#:
#: The paper's operator-at-a-time baseline launches many small,
#: latency-bound primitive kernels; its kernel times exceed the pure
#: bandwidth estimate by factors of 2-4 ("compute and latencies further
#: increase the problem", Experiment 3).  Generated fused kernels
#: (count/write/compound) stream coalesced and reach close to peak —
#: Experiment 1 shows Resolution:SIMD hitting the memory-bound line.
#: These factors are calibration parameters (see DESIGN.md).
MEMORY_EFFICIENCY = {
    "compound": 1.0,
    "count": 0.95,
    "write": 0.95,
    "scan": 0.45,
    "map": 0.55,
    "probe": 0.40,
    "gather": 0.40,
    "build": 0.50,
    "prefix_sum": 0.50,
    "reduce": 0.50,
    "sort": 0.45,
}

DEFAULT_EFFICIENCY = 0.9


@dataclass(frozen=True)
class CostBreakdown:
    """Per-resource seconds for one kernel launch."""

    memory: float
    onchip: float
    compute: float
    atomics: float
    launch: float
    barriers: float

    @property
    def total(self) -> float:
        return self.launch + self.barriers + max(
            self.memory, self.onchip, self.compute, self.atomics
        )

    @property
    def bound_by(self) -> str:
        """Which streaming resource dominates the launch."""
        resources = {
            "memory": self.memory,
            "onchip": self.onchip,
            "compute": self.compute,
            "atomics": self.atomics,
        }
        dominant = max(resources, key=resources.get)
        if resources[dominant] < self.launch:
            return "launch"
        return dominant


class KernelCostModel:
    """Turns a :class:`TrafficMeter` into simulated seconds for a device."""

    def __init__(self, profile: DeviceProfile):
        self.profile = profile

    def breakdown(
        self, meter: TrafficMeter, kind: str = "compound", occupancy: float = 1.0
    ) -> CostBreakdown:
        """``occupancy`` < 1 models an under-subscribed launch: too few
        threads to hide memory latency (the reason cache-sized vectors
        fail on GPUs, Section 3).  Memory and compute terms slow down
        proportionally."""
        if not 0 < occupancy <= 1.0:
            raise ValueError("occupancy must be in (0, 1]")
        profile = self.profile
        efficiency = MEMORY_EFFICIENCY.get(kind, DEFAULT_EFFICIENCY)
        if profile.kind == "cpu":
            # CPU operators are tight loops with hardware prefetching —
            # they do not suffer the latency-bound underutilization of
            # small GPU kernels (this is what lets MonetDB win the
            # cheapest queries in Experiment 6).
            efficiency = max(efficiency, 0.85)
        memory = meter.bytes_at(MemoryLevel.GLOBAL) / (
            profile.global_bandwidth * 1e9 * efficiency * occupancy
        )
        onchip = meter.bytes_at(MemoryLevel.ONCHIP) / (
            profile.onchip_bandwidth * 1e9 * occupancy
        )
        compute = meter.instructions / (profile.compute_throughput * occupancy)
        atomics = 0.0
        if meter.atomic_count:
            throughput_term = meter.atomic_count / profile.atomic_throughput
            chain_terms = (
                meter.atomic_chains["add"]
                / (profile.same_address_atomic_rate * profile.plain_add_speedup),
                meter.atomic_chains["fetch_add"] / profile.same_address_atomic_rate,
                meter.atomic_chains["rmw"] / profile.contended_rmw_rate,
            )
            atomics = max(throughput_term, *chain_terms)
        return CostBreakdown(
            memory=memory,
            onchip=onchip,
            compute=compute,
            atomics=atomics,
            launch=profile.kernel_launch_overhead,
            barriers=meter.barriers * profile.barrier_overhead,
        )

    def kernel_time(self, meter: TrafficMeter) -> float:
        """Simulated seconds for one kernel launch."""
        return self.breakdown(meter).total

    def memory_bound_time(self, nbytes: int) -> float:
        """Lower bound: streaming ``nbytes`` through global memory.

        This is the solid "memory bound" baseline drawn in every
        evaluation figure (Section 8.2).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / (self.profile.global_bandwidth * 1e9)
