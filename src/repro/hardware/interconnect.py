"""Host <-> coprocessor interconnect models (PCIe, NVLink, zero-copy).

Section 1 of the paper identifies the interconnect as the first
bandwidth wall; Section 2 quantifies it (16 GB/s per PCIe 3.0 direction,
12.1 GB/s measured bidirectional).  The model here is deliberately
simple — a directional bandwidth plus a fixed per-transfer latency —
because that is exactly the granularity at which the paper reasons.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Interconnect:
    """A host-device link with per-direction bandwidths in GB/s."""

    name: str
    h2d_bandwidth: float
    d2h_bandwidth: float
    #: Achievable bandwidth when both directions are active at once; the
    #: paper measured 12.1 GB/s bidirectional on PCIe 3.0 (Section 8.3).
    bidirectional_bandwidth: float
    #: Fixed setup latency per transfer, in seconds (DMA setup, driver).
    latency: float = 10e-6

    def transfer_time(self, nbytes: int, direction: str) -> float:
        """Seconds to move ``nbytes`` in one direction ("h2d"/"d2h")."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if direction == "h2d":
            bandwidth = self.h2d_bandwidth
        elif direction == "d2h":
            bandwidth = self.d2h_bandwidth
        else:
            raise ConfigurationError(
                f"unknown transfer direction {direction!r}; "
                "valid choices: 'h2d', 'd2h'"
            )
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / (bandwidth * 1e9)

    def balanced_time(self, h2d_bytes: int, d2h_bytes: int) -> float:
        """Seconds to move a bidirectional workload, assuming overlap.

        This is the paper's dashed "PCIe transfer" baseline.  While both
        directions are active they share the measured bidirectional
        bandwidth (12.1 GB/s in the paper's testbed); once the smaller
        direction drains, the remainder streams at the unidirectional
        rate.
        """
        if h2d_bytes < 0 or d2h_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        if h2d_bytes + d2h_bytes == 0:
            return 0.0
        small = min(h2d_bytes, d2h_bytes)
        big = max(h2d_bytes, d2h_bytes)
        solo_bandwidth = self.h2d_bandwidth if big == h2d_bytes else self.d2h_bandwidth
        overlap = 2 * small / (self.bidirectional_bandwidth * 1e9)
        remainder = (big - small) / (solo_bandwidth * 1e9)
        return overlap + remainder


#: PCIe 3.0 x16 as measured in the paper's testbed.
PCIE3 = Interconnect(
    name="PCIe 3.0 x16",
    h2d_bandwidth=16.0,
    d2h_bandwidth=16.0,
    bidirectional_bandwidth=12.1,
)

#: A first-generation NVLink-style link — used by the forward-looking
#: example to study how the bottleneck shifts (Section 9 discussion).
NVLINK1 = Interconnect(
    name="NVLink 1.0",
    h2d_bandwidth=40.0,
    d2h_bandwidth=40.0,
    bidirectional_bandwidth=70.0,
    latency=5e-6,
)

#: An OpenCAPI-style coherent link.
OPENCAPI = Interconnect(
    name="OpenCAPI",
    h2d_bandwidth=25.0,
    d2h_bandwidth=25.0,
    bidirectional_bandwidth=45.0,
    latency=5e-6,
)
