"""The virtual coprocessor: allocator, transfer engine, kernel launcher.

This is the substrate that stands in for the paper's physical GPUs.  It
does three jobs:

1. **Capacity accounting** — device buffers are allocated against the
   profile's memory capacity; exceeding it raises
   :class:`~repro.errors.DeviceMemoryError`, which is how the
   run-to-finish macro model fails to scale (Section 2.1).
2. **Transfer simulation** — host<->device copies are timed with the
   interconnect model and logged (the PCIe volumes of Figure 5).
3. **Kernel launch simulation** — a kernel is a completed
   :class:`TrafficMeter`; the cost model converts it into simulated
   milliseconds and the launch is appended to the device profile log.

The actual *data* lives in ordinary numpy arrays; "device resident" is a
bookkeeping property.  That keeps computation exact while the memory
system is simulated.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import AllocationError, DeviceLostError, DeviceMemoryError
from ..telemetry.trace import active_tracer
from .costmodel import KernelCostModel
from .interconnect import PCIE3, Interconnect
from .profiles import DeviceProfile
from .traffic import KernelTrace, Profile, TrafficMeter, TransferRecord


@dataclass
class DeviceBuffer:
    """A numpy array accounted as resident in device global memory.

    ``pooled`` marks buffers owned by a cross-query
    :class:`~repro.placement.BufferPool`: they survive
    :meth:`VirtualCoprocessor.begin_query` /
    :meth:`VirtualCoprocessor.release_transient`, which reclaim all
    per-query (transient) allocations.
    """

    array: np.ndarray
    device: "VirtualCoprocessor"
    label: str = ""
    freed: bool = field(default=False, compare=False)
    pooled: bool = field(default=False, compare=False)

    @property
    def nbytes(self) -> int:
        return self.array.nbytes

    def __len__(self) -> int:
        return len(self.array)

    def free(self) -> None:
        self.device.free(self)


class VirtualCoprocessor:
    """A simulated GPU-style coprocessor with a memory hierarchy.

    Parameters
    ----------
    profile:
        Static hardware description (bandwidths, capacities, ...).
    interconnect:
        Host link model.  Ignored (forced to ``None``) for zero-copy
        devices such as the A10 APU, which access host memory directly.
    """

    def __init__(self, profile: DeviceProfile, interconnect: Interconnect | None = PCIE3):
        self.profile = profile
        self.interconnect = None if profile.zero_copy else interconnect
        self.cost_model = KernelCostModel(profile)
        #: False once the device has dropped out (injected fault or real
        #: failure): allocations, transfers, and launches raise
        #: :class:`~repro.errors.DeviceLostError`; the cleanup paths
        #: (``free``/``release_transient``) keep working so failure
        #: handling can reclaim transient buffers.
        self.alive = True
        self.allocated_bytes = 0
        self.peak_allocated = 0
        #: Bytes held by pooled (cross-query resident) buffers.
        self.pooled_bytes = 0
        self.log = Profile()
        self._live_buffers: dict[int, DeviceBuffer] = {}
        #: Buffer pool attached to this device (set by
        #: :class:`~repro.placement.BufferPool`); engines route base
        #: column loads through it when present.
        self.placement_pool = None
        #: Called with the byte shortfall when an allocation would
        #: exceed capacity; a buffer pool hooks this to evict resident
        #: columns before the allocation is retried.
        self.pressure_callback = None
        #: Called by :meth:`reset_all` so an attached pool can drop its
        #: residency bookkeeping along with the device accounting.
        self.reset_callback = None
        #: Optional :class:`~repro.compression.CompressionPolicy`: when
        #: set, transfer points ship compressed wire bytes over the
        #: interconnect and charge decode kernels on arrival.  ``None``
        #: (the default) moves raw bytes, exactly as before.
        self.compression = None

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, array: np.ndarray, label: str = "", pooled: bool = False) -> DeviceBuffer:
        """Account ``array`` as a device-resident buffer.

        When the allocation would exceed capacity and a
        ``pressure_callback`` is installed, it is given one chance to
        reclaim memory (evict unpinned pooled buffers) before
        :class:`~repro.errors.DeviceMemoryError` is raised.
        """
        self._check_alive()
        nbytes = array.nbytes
        available = self.profile.memory_capacity - self.allocated_bytes
        if nbytes > available and self.pressure_callback is not None:
            self.pressure_callback(nbytes - available)
            available = self.profile.memory_capacity - self.allocated_bytes
        if nbytes > available:
            raise DeviceMemoryError(nbytes, available, self.profile.memory_capacity)
        buffer = DeviceBuffer(array=array, device=self, label=label, pooled=pooled)
        self.allocated_bytes += nbytes
        if pooled:
            self.pooled_bytes += nbytes
        self.peak_allocated = max(self.peak_allocated, self.allocated_bytes)
        self._live_buffers[id(buffer)] = buffer
        return buffer

    def allocate_empty(self, shape, dtype, label: str = "") -> DeviceBuffer:
        return self.allocate(np.empty(shape, dtype=dtype), label=label)

    def free(self, buffer: DeviceBuffer) -> None:
        if buffer.freed:
            raise AllocationError(f"double free of device buffer {buffer.label!r}")
        if id(buffer) not in self._live_buffers:
            raise AllocationError("buffer does not belong to this device")
        buffer.freed = True
        del self._live_buffers[id(buffer)]
        self.allocated_bytes -= buffer.nbytes
        if buffer.pooled:
            self.pooled_bytes -= buffer.nbytes

    @property
    def resident_bytes(self) -> int:
        """Bytes pinned across queries by an attached buffer pool."""
        return self.pooled_bytes

    def release_transient(self, keep: frozenset | None = None) -> None:
        """Free every live buffer that is not pool-owned.

        Engines call this at the end of a query: hash-table slots,
        payload columns, and any other per-query scratch are reclaimed,
        while pooled base columns stay resident for the next query.

        ``keep`` (a :meth:`transient_snapshot`) limits the sweep to
        buffers allocated *after* the snapshot — the failure-path
        cleanup of one morsel attempt, which must not reclaim the
        build-side hash tables earlier pipelines left on the device.
        """
        for buffer in [b for b in self._live_buffers.values() if not b.pooled]:
            if keep is not None and id(buffer) in keep:
                continue
            self.free(buffer)

    def transient_snapshot(self) -> frozenset:
        """An opaque snapshot of the currently live buffers, for
        scoped failure cleanup via ``release_transient(keep=...)``."""
        return frozenset(self._live_buffers)

    @contextlib.contextmanager
    def scoped(self, *buffers: DeviceBuffer):
        """Free the given buffers when the scope exits."""
        try:
            yield buffers
        finally:
            for buffer in buffers:
                if not buffer.freed:
                    self.free(buffer)

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def transfer_to_device(
        self,
        array: np.ndarray,
        label: str = "",
        pooled: bool = False,
        wire_nbytes: int | None = None,
        raw_nbytes: int = 0,
        codec: str = "",
    ) -> DeviceBuffer:
        """Move a host array onto the device (PCIe h2d, or free on APUs).

        ``wire_nbytes`` charges the link for fewer bytes than the
        allocated array (a compressed transfer whose raw decode buffer
        materializes on-device); ``raw_nbytes``/``codec`` label a
        transfer whose *allocated array* is the compressed wire image
        (pooled resident columns stored compressed).
        """
        buffer = self.allocate(array, label=label, pooled=pooled)
        if wire_nbytes is not None:
            self._record_transfer(
                wire_nbytes, "h2d", label, raw_nbytes=array.nbytes, codec=codec
            )
        else:
            self._record_transfer(
                array.nbytes, "h2d", label, raw_nbytes=raw_nbytes, codec=codec
            )
        return buffer

    def transfer_to_host(self, buffer: DeviceBuffer, label: str = "") -> np.ndarray:
        """Move a device buffer back to the host and free it."""
        array = buffer.array
        self._record_transfer(array.nbytes, "d2h", label or buffer.label)
        self.free(buffer)
        return array

    def record_stream_transfer(
        self,
        nbytes: int,
        direction: str,
        label: str = "",
        raw_nbytes: int = 0,
        codec: str = "",
    ) -> None:
        """Log a streaming transfer that is not device-resident afterwards
        (batch processing blocks, which are consumed and discarded)."""
        self._record_transfer(nbytes, direction, label, raw_nbytes=raw_nbytes, codec=codec)

    def _record_transfer(
        self,
        nbytes: int,
        direction: str,
        label: str,
        raw_nbytes: int = 0,
        codec: str = "",
    ) -> None:
        self._check_alive()
        if self.interconnect is None:
            # Zero-copy device: data never crosses a link.
            record = TransferRecord(
                nbytes=0, direction=direction, time_ms=0.0, label=label
            )
        else:
            seconds = self.interconnect.transfer_time(nbytes, direction)
            record = TransferRecord(
                nbytes=nbytes,
                direction=direction,
                time_ms=seconds * 1e3,
                label=label,
                raw_nbytes=raw_nbytes,
                codec=codec,
            )
        self.log.transfers.append(record)
        tracer = active_tracer()
        if tracer is not None:
            attrs = dict(
                sim_ms=record.time_ms,
                nbytes=record.nbytes,
                direction=direction,
            )
            if codec:
                attrs["codec"] = codec
                attrs["raw_nbytes"] = raw_nbytes
            tracer.event(
                f"transfer {label}" if label else "transfer",
                "transfer",
                **attrs,
            )

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def new_meter(self) -> TrafficMeter:
        return TrafficMeter()

    def launch(
        self,
        name: str,
        kind: str,
        elements: int,
        meter: TrafficMeter,
        occupancy: float = 1.0,
    ) -> KernelTrace:
        """Record one kernel launch and assign its simulated time."""
        self._check_alive()
        breakdown = self.cost_model.breakdown(meter, kind, occupancy=occupancy)
        trace = KernelTrace(
            name=name,
            kind=kind,
            elements=elements,
            meter=meter,
            time_ms=breakdown.total * 1e3,
            bound_by=breakdown.bound_by,
        )
        self.log.kernels.append(trace)
        tracer = active_tracer()
        if tracer is not None:
            tracer.event(
                f"kernel {name}",
                "kernel",
                sim_ms=trace.time_ms,
                kind=kind,
                elements=elements,
                global_bytes=trace.global_bytes,
                onchip_bytes=trace.onchip_bytes,
                atomics=meter.atomic_count,
                bound_by=trace.bound_by,
            )
        return trace

    # ------------------------------------------------------------------
    # liveness (fault injection / recovery)
    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if not self.alive:
            raise DeviceLostError(self.profile.name)

    def mark_lost(self, detail: str = "") -> None:
        """Drop the device out of service: every subsequent allocation,
        transfer, or launch raises :class:`~repro.errors.DeviceLostError`
        until :meth:`revive` (a new query on a recovered fleet)."""
        self.alive = False

    def revive(self) -> None:
        """Return a lost device to service (fleet recovery between
        queries); allocation accounting is left untouched."""
        self.alive = True

    def stall(self, delay_ms: float, label: str = "stall") -> None:
        """Charge an artificial delay to this device's simulated clock
        (a zero-byte log entry: stragglers slow the device down without
        moving data).  Used by the fault-injection layer."""
        self._check_alive()
        if delay_ms < 0:
            raise ValueError(f"stall delay must be >= 0, got {delay_ms}")
        self.log.transfers.append(
            TransferRecord(nbytes=0, direction="stall", time_ms=delay_ms, label=label)
        )
        tracer = active_tracer()
        if tracer is not None:
            tracer.event(f"stall {label}", "fault", sim_ms=delay_ms)

    # ------------------------------------------------------------------
    # baselines & bookkeeping
    # ------------------------------------------------------------------
    def pcie_baseline_ms(self, h2d_bytes: int, d2h_bytes: int) -> float:
        """The dashed 'PCIe transfer' baseline of every evaluation figure.

        Zero-copy devices stream the same volume through main memory
        instead, so the baseline uses their memory bandwidth.
        """
        if self.interconnect is None:
            total = h2d_bytes + d2h_bytes
            return total / (self.profile.global_bandwidth * 1e9) * 1e3
        return self.interconnect.balanced_time(h2d_bytes, d2h_bytes) * 1e3

    def memory_bound_ms(self, nbytes: int) -> float:
        """The solid 'memory bound' baseline (input+output streamed once)."""
        return self.cost_model.memory_bound_time(nbytes) * 1e3

    def reset(self) -> None:
        """Clear the profiler log (allocations are left untouched)."""
        self.log = Profile()

    def begin_query(self) -> None:
        """Start a fresh query: clear the profiler log and reclaim
        transient allocations, keeping pooled buffers resident."""
        self.release_transient()
        self.log = Profile()
        self.peak_allocated = self.allocated_bytes

    def reset_all(self) -> None:
        """Clear the profiler log and ALL allocation accounting —
        including pool-resident buffers (the attached pool, if any, is
        notified so its bookkeeping stays consistent)."""
        self.log = Profile()
        self.allocated_bytes = 0
        self.peak_allocated = 0
        self.pooled_bytes = 0
        for buffer in self._live_buffers.values():
            buffer.freed = True
        self._live_buffers.clear()
        if self.reset_callback is not None:
            self.reset_callback()
