"""Device profiles for the coprocessors evaluated in the paper (Table 2).

A :class:`DeviceProfile` carries everything the cost model needs to turn
measured traffic into simulated kernel time: memory bandwidths, compute
and atomic throughputs, scratchpad geometry, and launch overheads.

The bandwidth, core-count, and scratchpad numbers are the published
values from Table 2 of the paper.  The compute and atomic throughputs
are *calibration parameters*: they are not printed in the paper, but the
paper's observations pin them qualitatively —

* the GTX770 becomes compute-bound before the GTX970 (Experiment 1);
* atomic throughput improved from Kepler to Maxwell (Appendix G.1), yet
  the GTX770's higher memory clock gives it fast same-address atomics,
  letting plain ``Pipelined`` beat ``Resolution:SIMD`` below ~10%
  selectivity on that card;
* the A10 APU has no PCIe link and a 18.7 GB/s shared-memory budget.

Changing these constants re-calibrates every experiment consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError

GB = 1_000_000_000
KB = 1024


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of one (co)processor.

    Bandwidths are in GB/s (decimal), capacities in bytes, throughputs in
    operations per second.
    """

    name: str
    architecture: str
    kind: str  # "gpu", "apu", or "cpu"
    compute_units: int
    #: Scratchpad memory available per compute unit, in bytes.
    scratchpad_per_unit: int
    #: SIMD scheduling width (warp on NVIDIA = 32, wavefront on AMD = 64).
    simd_width: int
    #: GPU global memory bandwidth for GPUs; main-memory bandwidth for
    #: APUs and CPUs (Table 2, "B/W" column).
    global_bandwidth: float
    #: Aggregate on-chip (scratchpad/register/cache) bandwidth; the paper
    #: cites 1.2 TB/s for scratchpad on the GTX970 (Section 4.4).
    onchip_bandwidth: float
    #: Device memory capacity (4 GB for the GTX970, Appendix A).
    memory_capacity: int
    #: Aggregate throughput for data-independent atomic operations.
    atomic_throughput: float
    #: Serialized rate for same-address fetch-and-add atomics (the
    #: atomic prefix sum, which must return the old value; Section 5.3).
    same_address_atomic_rate: float
    #: Effective scalar-instruction throughput for generated kernel code.
    compute_throughput: float
    #: Fixed cost per kernel launch, in seconds (the reason
    #: vector-at-a-time does not pay off on GPUs, Section 3).
    kernel_launch_overhead: float = 5e-6
    #: Serialized rate for non-combinable read-modify-write chains on a
    #: single address (hash-table entry updates).  Orders of magnitude
    #: slower than combinable adds — this produces the small-group
    #: contention cliff of Experiment 2.
    contended_rmw_rate: float = 8.0e7
    #: Rate multiplier for plain adds whose return value is unused; the
    #: hardware aggregates these (Appendix G.1).
    plain_add_speedup: float = 2.0
    #: Cost of one workgroup-wide synchronization barrier, in seconds,
    #: multiplied by the number of barrier generations executed.
    barrier_overhead: float = 1e-9
    #: Last-level (L2) cache capacity in bytes.  Randomly indexed
    #: structures larger than this suffer 32-byte transaction
    #: amplification in DRAM (the dram_*_transactions counters the
    #: paper profiles, Appendix A).
    l2_capacity: int = 2 * 1024 * 1024
    #: Whether the device shares memory with the host (APU): transfers
    #: become no-ops and there is no PCIe link.
    zero_copy: bool = False

    @property
    def scratchpad_total(self) -> int:
        return self.scratchpad_per_unit * self.compute_units

    @property
    def threads_resident(self) -> int:
        """Rough number of hardware threads for oversubscription math."""
        return self.compute_units * self.simd_width * 32

    def with_overrides(self, **kwargs) -> "DeviceProfile":
        """A copy of this profile with selected fields replaced."""
        return replace(self, **kwargs)


#: NVIDIA GTX970 — the paper's primary device (Maxwell, Table 2).
GTX970 = DeviceProfile(
    name="GTX970",
    architecture="Maxwell",
    kind="gpu",
    compute_units=13,
    scratchpad_per_unit=96 * KB,
    simd_width=32,
    global_bandwidth=146.1,
    onchip_bandwidth=1200.0,
    memory_capacity=4 * GB,
    atomic_throughput=8.0e9,
    same_address_atomic_rate=2.2e9,
    compute_throughput=220.0e9,
    contended_rmw_rate=8.0e7,
    l2_capacity=1792 * KB,
)

#: NVIDIA GTX770 (Kepler).  Higher memory clock than the GTX970 but
#: becomes compute-bound earlier (Experiment 1 observations).
GTX770 = DeviceProfile(
    name="GTX770",
    architecture="Kepler",
    kind="gpu",
    compute_units=8,
    scratchpad_per_unit=48 * KB,
    simd_width=32,
    global_bandwidth=167.6,
    onchip_bandwidth=1000.0,
    memory_capacity=2 * GB,
    atomic_throughput=6.0e9,
    same_address_atomic_rate=3.0e9,
    compute_throughput=110.0e9,
    contended_rmw_rate=6.0e7,
    l2_capacity=512 * KB,
)

#: AMD RX480 (Ellesmere).
RX480 = DeviceProfile(
    name="RX480",
    architecture="Ellesmere",
    kind="gpu",
    compute_units=32,
    scratchpad_per_unit=32 * KB,
    simd_width=64,
    global_bandwidth=104.9,
    onchip_bandwidth=900.0,
    memory_capacity=8 * GB,
    atomic_throughput=4.0e9,
    same_address_atomic_rate=1.0e9,
    compute_throughput=180.0e9,
    contended_rmw_rate=4.0e7,
    l2_capacity=2048 * KB,
)

#: AMD A10-7890K APU (Godavari) — integrated GPU sharing main memory
#: with the CPU; no PCIe transfers, 18.7 GB/s shared bandwidth.
A10 = DeviceProfile(
    name="A10",
    architecture="Godavari",
    kind="apu",
    compute_units=8,
    scratchpad_per_unit=32 * KB,
    simd_width=64,
    global_bandwidth=18.7,
    onchip_bandwidth=400.0,
    memory_capacity=2 * GB,
    atomic_throughput=1.5e9,
    same_address_atomic_rate=0.5e9,
    compute_throughput=60.0e9,
    contended_rmw_rate=1.5e7,
    l2_capacity=512 * KB,
    zero_copy=True,
)

#: A workstation CPU standing in for the paper's MonetDB host (Intel
#: Xeon E5-1607, 32 GB RAM) in Experiment 6.  Modeled as a coprocessor
#: whose "global memory" is main memory and which needs no transfers.
#: The low instruction throughput reflects an interpreting columnar
#: engine (~a few ns of bookkeeping per tuple per operator), which is
#: what makes the CPU fall behind on operator-rich queries while
#: staying competitive on cheap scans (Figure 22's Q19).
XEON_E5 = DeviceProfile(
    name="XeonE5-1607",
    architecture="SandyBridge",
    kind="cpu",
    compute_units=4,
    scratchpad_per_unit=256 * KB,
    simd_width=8,
    global_bandwidth=25.0,
    onchip_bandwidth=300.0,
    memory_capacity=32 * GB,
    atomic_throughput=1.0e9,
    same_address_atomic_rate=0.2e9,
    compute_throughput=6.0e9,
    contended_rmw_rate=5.0e7,
    kernel_launch_overhead=2e-7,
    l2_capacity=10 * 1024 * KB,
    zero_copy=True,
)

#: The four coprocessors of Table 2, in the paper's order.
TABLE2_DEVICES = (GTX970, GTX770, RX480, A10)

_REGISTRY = {profile.name.lower(): profile for profile in TABLE2_DEVICES}
_REGISTRY[XEON_E5.name.lower()] = XEON_E5
_REGISTRY["cpu"] = XEON_E5


def get_profile(name: str) -> DeviceProfile:
    """Look up a built-in device profile by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown device {name!r}; known devices: {known}"
        ) from None


def list_profiles() -> list[DeviceProfile]:
    """All registered device profiles."""
    seen: dict[str, DeviceProfile] = {}
    for profile in _REGISTRY.values():
        seen[profile.name] = profile
    return list(seen.values())
