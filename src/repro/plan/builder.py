"""Fluent construction of logical plans.

The builder is the Python-native counterpart of the paper's two
front-ends (SQL and JSON plans, Section 7); all TPC-H plans that need
manual unnesting are written with it.
"""

from __future__ import annotations

from ..errors import PlanError
from ..expressions.expr import ColumnRef, Expr, col, wrap
from .logical import (
    Aggregate,
    AggSpec,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Map,
    Project,
    Scan,
    Sort,
    SortKey,
)


class PlanBuilder:
    """Builds a :class:`LogicalPlan` by chaining relational operators."""

    def __init__(self, plan: LogicalPlan | None = None):
        self._plan = plan

    # ------------------------------------------------------------------
    @classmethod
    def scan(cls, table: str, rename: dict[str, str] | None = None) -> "PlanBuilder":
        return cls(Scan(table=table, rename=dict(rename or {})))

    def _require_plan(self) -> LogicalPlan:
        if self._plan is None:
            raise PlanError("builder has no plan yet; start with PlanBuilder.scan()")
        return self._plan

    # ------------------------------------------------------------------
    def filter(self, predicate: Expr) -> "PlanBuilder":
        return PlanBuilder(Filter(self._require_plan(), predicate))

    def map(self, name: str, expr: Expr) -> "PlanBuilder":
        return PlanBuilder(Map(self._require_plan(), name, expr))

    def project(self, outputs) -> "PlanBuilder":
        """Project to named outputs.

        ``outputs`` is a list whose entries are either plain column
        names or ``(name, expr)`` pairs.
        """
        normalized: list[tuple[str, Expr]] = []
        for output in outputs:
            if isinstance(output, str):
                normalized.append((output, col(output)))
            else:
                name, expr = output
                normalized.append((name, wrap(expr)))
        return PlanBuilder(Project(self._require_plan(), normalized))

    def join(
        self,
        build: "PlanBuilder | LogicalPlan",
        build_keys,
        probe_keys,
        payload: list[str] | None = None,
        kind: str = "inner",
        payload_defaults: dict[str, float] | None = None,
        residual: Expr | None = None,
    ) -> "PlanBuilder":
        """Hash-join this plan (probe side) against ``build``."""
        build_plan = build._require_plan() if isinstance(build, PlanBuilder) else build
        return PlanBuilder(
            Join(
                build=build_plan,
                probe=self._require_plan(),
                build_keys=[_as_key(key) for key in build_keys],
                probe_keys=[_as_key(key) for key in probe_keys],
                payload=list(payload or []),
                kind=kind,
                payload_defaults=dict(payload_defaults or {}),
                residual=residual,
            )
        )

    def aggregate(self, group_by=None, aggregates=None) -> "PlanBuilder":
        """Group by ``group_by`` (names or ``(name, expr)``) computing
        ``aggregates`` (:class:`AggSpec` or ``(op, expr, name)`` tuples)."""
        keys: list[tuple[str, Expr]] = []
        for key in group_by or []:
            if isinstance(key, str):
                keys.append((key, col(key)))
            else:
                name, expr = key
                keys.append((name, wrap(expr)))
        specs: list[AggSpec] = []
        for aggregate in aggregates or []:
            if isinstance(aggregate, AggSpec):
                specs.append(aggregate)
            else:
                op, expr, name = aggregate
                specs.append(AggSpec(op, wrap(expr) if expr is not None else None, name))
        return PlanBuilder(Aggregate(self._require_plan(), keys, specs))

    def distinct(self, columns: list[str]) -> "PlanBuilder":
        """Distinct values of ``columns`` (an aggregate with no measures)."""
        return self.aggregate(group_by=columns, aggregates=[])

    def order_by(self, keys) -> "PlanBuilder":
        """Sort by ``keys``: names (ascending) or ``(name, ascending)``."""
        sort_keys = []
        for key in keys:
            if isinstance(key, str):
                sort_keys.append(SortKey(key, True))
            else:
                name, ascending = key
                sort_keys.append(SortKey(name, bool(ascending)))
        return PlanBuilder(Sort(self._require_plan(), sort_keys))

    def limit(self, count: int) -> "PlanBuilder":
        return PlanBuilder(Limit(self._require_plan(), count))

    def build(self) -> LogicalPlan:
        return self._require_plan()


def _as_key(key) -> Expr:
    if isinstance(key, str):
        return ColumnRef(key)
    return wrap(key)
