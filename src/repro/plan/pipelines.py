"""Produce/consume pipeline extraction (the translation layer).

HorseQC's translation layer "applies the produce/consume model to the
query plan to determine fusion operators" (Section 7).  This module is
that layer: it walks a logical plan bottom-up, opening a pipeline at
every scan, absorbing filters/maps/join-probes into the open pipeline,
and closing pipelines at pipeline breakers (hash-table builds,
aggregations, result materialization).

All string predicates are resolved to dictionary codes here, so the
pipelines handed to engines are purely numeric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PlanError
from ..expressions.expr import ColumnRef, Expr
from ..expressions.resolve import resolve_strings
from ..expressions.schema import infer_dtype
from ..storage.database import Database
from ..storage.dtypes import DType
from .logical import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Map,
    PlanSchema,
    Project,
    Scan,
    Sort,
    SortKey,
    aggregate_dtype,
)
from .physical import (
    RESULT_NAME,
    AggregateSink,
    BuildSink,
    FilterStage,
    MapStage,
    MaterializeSink,
    PhysicalQuery,
    Pipeline,
    ProbeStage,
)


@dataclass
class _Draft:
    """An open (not yet closed) pipeline under construction."""

    source: str
    source_is_virtual: bool
    schema: PlanSchema
    stages: list = field(default_factory=list)
    #: scope name -> base table column name (for renamed scans)
    source_rename: dict[str, str] = field(default_factory=dict)


def extract_pipelines(plan: LogicalPlan, database: Database) -> PhysicalQuery:
    """Translate a logical plan into an ordered list of pipelines."""
    return _Extractor(database).run(plan)


class _Extractor:
    def __init__(self, database: Database):
        self.database = database
        self.pipelines: list[Pipeline] = []
        self._counter = 0

    # ------------------------------------------------------------------
    def run(self, plan: LogicalPlan) -> PhysicalQuery:
        sort_keys: list[SortKey] = []
        limit: int | None = None
        node = plan
        if isinstance(node, Limit):
            limit = node.count
            node = node.child
        if isinstance(node, Sort):
            sort_keys = list(node.keys)
            node = node.child
        if isinstance(node, (Sort, Limit)):
            raise PlanError("Sort/Limit are only supported at the top of a plan")

        draft = self._walk(node)
        if (
            not draft.stages
            and draft.source_is_virtual
            and self.pipelines
            and self.pipelines[-1].output_name == draft.source
        ):
            # The root operator was itself a pipeline breaker (e.g. a
            # top-level aggregation): its pipeline IS the final one.
            final = self.pipelines[-1]
            final.output_name = RESULT_NAME
            output_schema = final.output_schema
        else:
            outputs = list(draft.schema.dtypes)
            output_schema = PlanSchema(
                {name: draft.schema.dtypes[name] for name in outputs},
                {
                    name: draft.schema.dictionaries[name]
                    for name in outputs
                    if name in draft.schema.dictionaries
                },
            )
            self._close(draft, MaterializeSink(outputs), RESULT_NAME, output_schema)

        assert output_schema is not None
        for key in sort_keys:
            if key.column not in output_schema.dtypes:
                raise PlanError(f"sort key {key.column!r} not in query output")
        return PhysicalQuery(
            pipelines=self.pipelines,
            sort_keys=sort_keys,
            limit=limit,
            output_columns=list(output_schema.dtypes),
            output_schema=output_schema,
        )

    # ------------------------------------------------------------------
    def _next_id(self) -> int:
        self._counter += 1
        return self._counter

    def _walk(self, node: LogicalPlan) -> _Draft:
        if isinstance(node, Scan):
            schema = node.schema(self.database)
            rename = {out: base for base, out in node.rename.items()}
            return _Draft(
                source=node.table,
                source_is_virtual=False,
                schema=schema,
                source_rename=rename,
            )
        if isinstance(node, Filter):
            draft = self._walk(node.child)
            predicate = resolve_strings(node.predicate, draft.schema.dictionaries)
            self._check_columns(predicate, draft.schema, "filter predicate")
            draft.stages.append(FilterStage(predicate))
            return draft
        if isinstance(node, Map):
            draft = self._walk(node.child)
            self._append_map(draft, node.name, node.expr)
            return draft
        if isinstance(node, Project):
            draft = self._walk(node.child)
            names: list[str] = []
            for name, expr in node.outputs:
                if isinstance(expr, ColumnRef) and expr.name == name:
                    if name not in draft.schema.dtypes:
                        raise PlanError(f"projected column {name!r} not in scope")
                else:
                    self._append_map(draft, name, expr)
                names.append(name)
            draft.schema = PlanSchema(
                {name: draft.schema.dtypes[name] for name in names},
                {
                    name: draft.schema.dictionaries[name]
                    for name in names
                    if name in draft.schema.dictionaries
                },
            )
            return draft
        if isinstance(node, Join):
            return self._walk_join(node)
        if isinstance(node, Aggregate):
            return self._walk_aggregate(node)
        if isinstance(node, (Sort, Limit)):
            raise PlanError("Sort/Limit are only supported at the top of a plan")
        raise PlanError(f"unsupported plan node {type(node).__name__}")

    # ------------------------------------------------------------------
    def _append_map(self, draft: _Draft, name: str, expr: Expr) -> None:
        resolved = resolve_strings(expr, draft.schema.dictionaries)
        self._check_columns(resolved, draft.schema, f"map {name!r}")
        if name in draft.schema.dtypes:
            raise PlanError(f"map output {name!r} shadows an existing column")
        draft.stages.append(MapStage(name, resolved))
        draft.schema.dtypes[name] = infer_dtype(resolved, draft.schema.dtypes)
        if isinstance(resolved, ColumnRef) and resolved.name in draft.schema.dictionaries:
            draft.schema.dictionaries[name] = draft.schema.dictionaries[resolved.name]

    def _walk_join(self, node: Join) -> _Draft:
        build_draft = self._walk(node.build)
        build_schema = build_draft.schema
        build_keys = [
            resolve_strings(key, build_schema.dictionaries) for key in node.build_keys
        ]
        for key in build_keys:
            self._check_columns(key, build_schema, "build key")
            self._check_join_key_type(key, build_schema)
        for name in node.payload:
            if name not in build_schema.dtypes:
                raise PlanError(f"join payload column {name!r} not in build side")
        table_id = f"ht{self._next_id()}"
        # Capture the build schema before closing (the draft is consumed).
        saved_build_schema = build_schema.copy()
        self._close(
            build_draft,
            BuildSink(table_id=table_id, keys=build_keys, payload=list(node.payload)),
            table_id,
            None,
        )

        probe_draft = self._walk(node.probe)
        probe_keys = [
            resolve_strings(key, probe_draft.schema.dictionaries)
            for key in node.probe_keys
        ]
        for key in probe_keys:
            self._check_columns(key, probe_draft.schema, "probe key")
            self._check_join_key_type(key, probe_draft.schema)
        for name in node.payload:
            if name in probe_draft.schema.dtypes:
                raise PlanError(f"payload column {name!r} collides with probe scope")
        stage = ProbeStage(
            table_id=table_id,
            probe_keys=probe_keys,
            payload=list(node.payload),
            kind=node.kind,
            payload_defaults=dict(node.payload_defaults),
        )
        probe_draft.stages.append(stage)
        for name in node.payload:
            probe_draft.schema.dtypes[name] = saved_build_schema.dtypes[name]
            if name in saved_build_schema.dictionaries:
                probe_draft.schema.dictionaries[name] = saved_build_schema.dictionaries[name]
        if node.residual is not None:
            residual = resolve_strings(node.residual, probe_draft.schema.dictionaries)
            self._check_columns(residual, probe_draft.schema, "join residual")
            stage.residual = residual
        return probe_draft

    def _walk_aggregate(self, node: Aggregate) -> _Draft:
        draft = self._walk(node.child)
        schema = draft.schema
        group_keys: list[tuple[str, Expr]] = []
        for name, expr in node.group_keys:
            resolved = resolve_strings(expr, schema.dictionaries)
            self._check_columns(resolved, schema, f"group key {name!r}")
            group_keys.append((name, resolved))
        aggregates = []
        for spec in node.aggregates:
            if spec.expr is not None:
                resolved = resolve_strings(spec.expr, schema.dictionaries)
                self._check_columns(resolved, schema, f"aggregate {spec.name!r}")
                spec = type(spec)(spec.op, resolved, spec.name)
            aggregates.append(spec)

        out_dtypes: dict[str, DType] = {}
        out_dicts = {}
        for name, expr in group_keys:
            out_dtypes[name] = infer_dtype(expr, schema.dtypes)
            if isinstance(expr, ColumnRef) and expr.name in schema.dictionaries:
                out_dicts[name] = schema.dictionaries[expr.name]
        for spec in aggregates:
            out_dtypes[spec.name] = aggregate_dtype(spec, schema.dtypes)
        output_schema = PlanSchema(out_dtypes, out_dicts)

        name = f"agg{self._next_id()}"
        self._close(
            draft,
            AggregateSink(group_keys=group_keys, aggregates=aggregates),
            name,
            output_schema,
        )
        return _Draft(source=name, source_is_virtual=True, schema=output_schema.copy())

    # ------------------------------------------------------------------
    def _close(
        self,
        draft: _Draft,
        sink,
        output_name: str,
        output_schema: PlanSchema | None,
    ) -> Pipeline:
        required = self._required_columns(draft, sink)
        pipeline = Pipeline(
            name=f"pipeline{len(self.pipelines)}",
            source=draft.source,
            source_is_virtual=draft.source_is_virtual,
            stages=draft.stages,
            sink=sink,
            required_columns=required,
            scope_schema=draft.schema,
            output_name=output_name,
            output_schema=output_schema,
            source_rename=draft.source_rename,
        )
        self.pipelines.append(pipeline)
        return pipeline

    def _required_columns(self, draft: _Draft, sink) -> list[str]:
        produced: set[str] = set()
        needed: dict[str, None] = {}

        def need(expr: Expr) -> None:
            for column in sorted(expr.columns()):
                if column not in produced:
                    needed.setdefault(column)

        for stage in draft.stages:
            if isinstance(stage, FilterStage):
                need(stage.predicate)
            elif isinstance(stage, MapStage):
                need(stage.expr)
                produced.add(stage.name)
            elif isinstance(stage, ProbeStage):
                for key in stage.probe_keys:
                    need(key)
                produced.update(stage.payload)
                if stage.residual is not None:
                    need(stage.residual)
        if isinstance(sink, MaterializeSink):
            for name in sink.outputs:
                if name not in produced:
                    needed.setdefault(name)
        elif isinstance(sink, BuildSink):
            for key in sink.keys:
                need(key)
            for name in sink.payload:
                if name not in produced:
                    needed.setdefault(name)
        elif isinstance(sink, AggregateSink):
            for _, expr in sink.group_keys:
                need(expr)
            for spec in sink.aggregates:
                if spec.expr is not None:
                    need(spec.expr)
        else:
            raise PlanError(f"unknown sink {type(sink).__name__}")
        return list(needed)

    # ------------------------------------------------------------------
    @staticmethod
    def _check_columns(expr: Expr, schema: PlanSchema, context: str) -> None:
        missing = expr.columns() - set(schema.dtypes)
        if missing:
            raise PlanError(f"{context} references unknown columns: {sorted(missing)}")

    @staticmethod
    def _check_join_key_type(key: Expr, schema: PlanSchema) -> None:
        if isinstance(key, ColumnRef) and schema.dtypes.get(key.name) is DType.STRING:
            raise PlanError(
                f"join key {key.name!r} is a dictionary-compressed string column; "
                "joins on string columns are not supported (codes are "
                "dictionary-local)"
            )
