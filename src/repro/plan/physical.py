"""Physical pipelines (fusion operators).

The translation layer replaces a sequence of conventional operators
with *fusion operators* (Section 4.1).  A :class:`Pipeline` is one
fusion operator: a source table streamed through cardinality-changing
and mapping stages into a sink.  Sinks are the pipeline breakers of
the produce/consume model: hash-table builds, aggregations, and result
materialization.

Engines interpret (or compile kernels for) these structures; the
structures themselves are engine-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..expressions.expr import Expr
from .logical import AggSpec, PlanSchema, SortKey

#: Name under which the final pipeline's output is registered.
RESULT_NAME = "__result__"


@dataclass
class FilterStage:
    """Drop rows failing ``predicate`` (a `select` relational primitive)."""

    predicate: Expr


@dataclass
class MapStage:
    """Extend the scope with ``name = expr`` (a `map` primitive)."""

    name: str
    expr: Expr


@dataclass
class ProbeStage:
    """Probe a hash table built by an earlier pipeline (`join probe`).

    ``payload`` columns are fetched from the matched build row into the
    probe scope.  ``kind`` gives the join semantics; ``residual`` is an
    optional predicate evaluated after payload columns are in scope.
    """

    table_id: str
    probe_keys: list[Expr]
    payload: list[str] = field(default_factory=list)
    kind: str = "inner"
    payload_defaults: dict[str, float] = field(default_factory=dict)
    residual: Expr | None = None


@dataclass
class MaterializeSink:
    """Aligned write of the scope's output columns to a dense result."""

    outputs: list[str]


@dataclass
class BuildSink:
    """Build a join hash table over the pipeline's surviving rows."""

    table_id: str
    keys: list[Expr]
    payload: list[str] = field(default_factory=list)


@dataclass
class AggregateSink:
    """Grouped (or single-tuple) aggregation of the surviving rows."""

    group_keys: list[tuple[str, Expr]]
    aggregates: list[AggSpec]


Stage = FilterStage | MapStage | ProbeStage
Sink = MaterializeSink | BuildSink | AggregateSink


@dataclass
class Pipeline:
    """One fusion operator: source -> stages -> sink."""

    name: str
    source: str
    source_is_virtual: bool
    stages: list[Stage]
    sink: Sink
    #: Source columns the pipeline actually reads.
    required_columns: list[str]
    #: Scope schema after all stages (pre-sink).
    scope_schema: PlanSchema
    #: Name of the produced artifact: a hash-table id for builds, a
    #: virtual-table name for intermediate results, RESULT_NAME for the
    #: final pipeline.
    output_name: str
    #: Schema of the produced table (None for hash-table builds).
    output_schema: PlanSchema | None = None
    #: scope column name -> base table column name, for renamed scans.
    source_rename: dict[str, str] = field(default_factory=dict)

    @property
    def is_final(self) -> bool:
        return self.output_name == RESULT_NAME

    def describe(self) -> str:
        """A one-line summary, e.g. ``lineorder |filter|probe|probe| -> agg``."""
        parts = []
        for stage in self.stages:
            if isinstance(stage, FilterStage):
                parts.append("filter")
            elif isinstance(stage, MapStage):
                parts.append(f"map:{stage.name}")
            else:
                parts.append(f"probe:{stage.table_id}")
        sink = type(self.sink).__name__.replace("Sink", "").lower()
        chain = "|".join(parts) or "-"
        return f"{self.source} |{chain}| -> {sink}({self.output_name})"


@dataclass
class PhysicalQuery:
    """A full query: an ordered list of pipelines plus host post-ops.

    Pipelines execute in order; later pipelines may probe hash tables
    or scan virtual tables produced earlier.  Sorting and limiting run
    host-side afterwards, as in the paper's CoGaDB integration
    (Section 7).
    """

    pipelines: list[Pipeline]
    sort_keys: list[SortKey] = field(default_factory=list)
    limit: int | None = None
    output_columns: list[str] = field(default_factory=list)
    output_schema: PlanSchema | None = None

    @property
    def final_pipeline(self) -> Pipeline:
        return self.pipelines[-1]

    def describe(self) -> str:
        lines = [pipeline.describe() for pipeline in self.pipelines]
        if self.sort_keys:
            keys = ", ".join(
                f"{key.column}{'' if key.ascending else ' desc'}" for key in self.sort_keys
            )
            lines.append(f"host sort: {keys}")
        if self.limit is not None:
            lines.append(f"host limit: {self.limit}")
        return "\n".join(lines)
