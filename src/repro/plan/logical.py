"""Logical query plans.

A logical plan is a tree of relational operators.  The translation
layer (Section 7) turns it into *fusion operators* — pipelines — via
the produce/consume model; see :mod:`repro.plan.pipelines`.

Join nodes are hash joins with an explicit build side (the side that
becomes a hash table in GPU global memory) and probe side (the side
that streams through the pipeline).  ``kind`` distinguishes inner,
semi, anti, and left joins; semi/anti are what the paper's Appendix F
rewrites ``EXISTS`` / ``NOT EXISTS`` into.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PlanError, SchemaError
from ..expressions.expr import ColumnRef, Expr
from ..expressions.schema import infer_dtype
from ..storage.database import Database
from ..storage.dictionary import Dictionary
from ..storage.dtypes import DType

JOIN_KINDS = ("inner", "semi", "anti", "left")
AGG_OPS = ("sum", "count", "min", "max", "avg")


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: ``op(expr) AS name`` (``expr`` None for COUNT(*))."""

    op: str
    expr: Expr | None
    name: str

    def __post_init__(self) -> None:
        if self.op not in AGG_OPS:
            raise PlanError(f"unknown aggregate op {self.op!r}")
        if self.expr is None and self.op != "count":
            raise PlanError(f"aggregate {self.op} requires an input expression")


@dataclass(frozen=True)
class SortKey:
    """One ORDER BY key."""

    column: str
    ascending: bool = True


@dataclass
class PlanSchema:
    """Column types plus dictionaries flowing out of a plan node."""

    dtypes: dict[str, DType]
    dictionaries: dict[str, Dictionary]

    def copy(self) -> "PlanSchema":
        return PlanSchema(dict(self.dtypes), dict(self.dictionaries))


class LogicalPlan:
    """Base class of logical operator nodes."""

    def schema(self, database: Database) -> PlanSchema:
        raise NotImplementedError

    def children(self) -> tuple["LogicalPlan", ...]:
        return ()


@dataclass
class Scan(LogicalPlan):
    """Read a base table (optionally renaming columns for self-joins)."""

    table: str
    rename: dict[str, str] = field(default_factory=dict)

    def schema(self, database: Database) -> PlanSchema:
        table = database.table(self.table)
        dtypes: dict[str, DType] = {}
        dictionaries: dict[str, Dictionary] = {}
        for name, column in table.columns.items():
            out = self.rename.get(name, name)
            dtypes[out] = column.dtype
            if column.dictionary is not None:
                dictionaries[out] = column.dictionary
        return PlanSchema(dtypes, dictionaries)


@dataclass
class Filter(LogicalPlan):
    """Keep rows satisfying a predicate."""

    child: LogicalPlan
    predicate: Expr

    def schema(self, database: Database) -> PlanSchema:
        return self.child.schema(database)

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)


@dataclass
class Map(LogicalPlan):
    """Extend the scope with a computed column ``name = expr``."""

    child: LogicalPlan
    name: str
    expr: Expr

    def schema(self, database: Database) -> PlanSchema:
        schema = self.child.schema(database).copy()
        schema.dtypes[self.name] = infer_dtype(self.expr, schema.dtypes)
        if isinstance(self.expr, ColumnRef) and self.expr.name in schema.dictionaries:
            schema.dictionaries[self.name] = schema.dictionaries[self.expr.name]
        return schema

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)


@dataclass
class Project(LogicalPlan):
    """Restrict (and optionally compute) output columns, in order."""

    child: LogicalPlan
    outputs: list[tuple[str, Expr]]

    def schema(self, database: Database) -> PlanSchema:
        child = self.child.schema(database)
        dtypes: dict[str, DType] = {}
        dictionaries: dict[str, Dictionary] = {}
        for name, expr in self.outputs:
            dtypes[name] = infer_dtype(expr, child.dtypes)
            if isinstance(expr, ColumnRef) and expr.name in child.dictionaries:
                dictionaries[name] = child.dictionaries[expr.name]
        return PlanSchema(dtypes, dictionaries)

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)


@dataclass
class Join(LogicalPlan):
    """Hash join: build a table over ``build``, probe from ``probe``.

    ``payload`` lists build-side columns carried into the probe scope
    (empty for semi/anti joins).  For ``kind="left"``, probe rows
    without a match survive with ``payload_defaults`` values.
    ``residual`` is an optional post-probe predicate over the combined
    scope (for non-equi conditions such as Q21's ``suppkey <>``).
    """

    build: LogicalPlan
    probe: LogicalPlan
    build_keys: list[Expr]
    probe_keys: list[Expr]
    payload: list[str] = field(default_factory=list)
    kind: str = "inner"
    payload_defaults: dict[str, float] = field(default_factory=dict)
    residual: Expr | None = None

    def __post_init__(self) -> None:
        if self.kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {self.kind!r}")
        if len(self.build_keys) != len(self.probe_keys):
            raise PlanError("build/probe key counts differ")
        if not self.build_keys:
            raise PlanError("joins need at least one key")
        if self.kind in ("semi", "anti") and self.payload:
            raise PlanError(f"{self.kind} joins cannot carry payload columns")
        if self.kind == "left":
            missing = [name for name in self.payload if name not in self.payload_defaults]
            if missing:
                raise PlanError(f"left join payload columns need defaults: {missing}")
        if self.residual is not None and self.kind != "inner":
            raise PlanError(
                "residual predicates are only supported on inner joins "
                "(they drop rows after payload fetch)"
            )

    def schema(self, database: Database) -> PlanSchema:
        build = self.build.schema(database)
        probe = self.probe.schema(database).copy()
        for name in self.payload:
            if name not in build.dtypes:
                raise SchemaError(f"payload column {name!r} not in build side")
            if name in probe.dtypes:
                raise SchemaError(f"payload column {name!r} collides with probe side")
            probe.dtypes[name] = build.dtypes[name]
            if name in build.dictionaries:
                probe.dictionaries[name] = build.dictionaries[name]
        return probe

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.build, self.probe)


@dataclass
class Aggregate(LogicalPlan):
    """Grouped (or, with no keys, single-tuple) aggregation."""

    child: LogicalPlan
    group_keys: list[tuple[str, Expr]]
    aggregates: list[AggSpec]

    def __post_init__(self) -> None:
        if not self.group_keys and not self.aggregates:
            raise PlanError("aggregate needs group keys or aggregates")
        names = [name for name, _ in self.group_keys] + [
            spec.name for spec in self.aggregates
        ]
        if len(names) != len(set(names)):
            raise PlanError(f"duplicate output names in aggregate: {names}")

    def schema(self, database: Database) -> PlanSchema:
        child = self.child.schema(database)
        dtypes: dict[str, DType] = {}
        dictionaries: dict[str, Dictionary] = {}
        for name, expr in self.group_keys:
            dtypes[name] = infer_dtype(expr, child.dtypes)
            if isinstance(expr, ColumnRef) and expr.name in child.dictionaries:
                dictionaries[name] = child.dictionaries[expr.name]
        for spec in self.aggregates:
            dtypes[spec.name] = aggregate_dtype(spec, child.dtypes)
        return PlanSchema(dtypes, dictionaries)

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)


@dataclass
class Sort(LogicalPlan):
    """ORDER BY — executed host-side by the original engine (Section 7)."""

    child: LogicalPlan
    keys: list[SortKey]

    def schema(self, database: Database) -> PlanSchema:
        return self.child.schema(database)

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)


@dataclass
class Limit(LogicalPlan):
    """Keep the first ``count`` rows (after any sort)."""

    child: LogicalPlan
    count: int

    def schema(self, database: Database) -> PlanSchema:
        return self.child.schema(database)

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)


def aggregate_dtype(spec: AggSpec, schema: dict[str, DType]) -> DType:
    if spec.op == "count":
        return DType.INT64
    assert spec.expr is not None
    input_dtype = infer_dtype(spec.expr, schema)
    if spec.op == "avg":
        return DType.FLOAT64
    if spec.op == "sum":
        if input_dtype in (DType.FLOAT32, DType.FLOAT64):
            return DType.FLOAT64
        return DType.INT64
    return input_dtype


def walk(plan: LogicalPlan):
    """Pre-order traversal of a plan tree."""
    yield plan
    for child in plan.children():
        yield from walk(child)
