"""Logical plans, the fluent builder, and pipeline extraction."""

from .builder import PlanBuilder
from .json_plan import load_json_plan
from .logical import (
    Aggregate,
    AggSpec,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Map,
    PlanSchema,
    Project,
    Scan,
    Sort,
    SortKey,
    walk,
)
from .physical import (
    RESULT_NAME,
    AggregateSink,
    BuildSink,
    FilterStage,
    MapStage,
    MaterializeSink,
    PhysicalQuery,
    Pipeline,
    ProbeStage,
)
from .pipelines import extract_pipelines

__all__ = [
    "Aggregate",
    "AggSpec",
    "AggregateSink",
    "BuildSink",
    "Filter",
    "FilterStage",
    "Join",
    "Limit",
    "LogicalPlan",
    "Map",
    "MapStage",
    "MaterializeSink",
    "PhysicalQuery",
    "Pipeline",
    "PlanBuilder",
    "PlanSchema",
    "ProbeStage",
    "Project",
    "RESULT_NAME",
    "Scan",
    "Sort",
    "SortKey",
    "extract_pipelines",
    "load_json_plan",
    "walk",
]
