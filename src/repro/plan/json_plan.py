"""JSON query plans (the paper's workflow 2).

"The translation layer parses a JSON file that describes the query
plan including the fusion operators.  This enables us to process
queries when [the SQL front-end] cannot handle the queries via SQL"
(Section 7).  The format mirrors the logical plan nodes; expressions
are SQL expression strings.

Example::

    {
      "plan": {
        "op": "aggregate",
        "group_by": ["d_year"],
        "aggregates": [["sum", "lo_revenue", "revenue"]],
        "input": {
          "op": "join",
          "build": {"op": "filter", "predicate": "d_year = 1993",
                     "input": {"op": "scan", "table": "date"}},
          "probe": {"op": "scan", "table": "lineorder"},
          "build_keys": ["d_datekey"], "probe_keys": ["lo_orderdate"],
          "payload": ["d_year"]
        }
      },
      "order_by": [["d_year", "asc"]],
      "limit": 10
    }
"""

from __future__ import annotations

import json

from ..errors import PlanError
from ..expressions.expr import Expr, wrap
from .logical import (
    Aggregate,
    AggSpec,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Map,
    Project,
    Scan,
    Sort,
    SortKey,
)


def load_json_plan(document: str | dict) -> LogicalPlan:
    """Build a logical plan from a JSON document (string or dict)."""
    if isinstance(document, str):
        document = json.loads(document)
    if not isinstance(document, dict):
        raise PlanError("JSON plan document must be an object")
    if "plan" not in document:
        raise PlanError("JSON plan document needs a 'plan' entry")
    plan = _node(document["plan"])
    order_by = document.get("order_by", [])
    if order_by:
        keys = []
        for entry in order_by:
            if isinstance(entry, str):
                keys.append(SortKey(entry, True))
            elif isinstance(entry, dict):
                keys.append(SortKey(entry["column"], bool(entry.get("ascending", True))))
            else:
                column, direction = entry
                keys.append(SortKey(column, str(direction).lower() != "desc"))
        plan = Sort(plan, keys)
    if "limit" in document and document["limit"] is not None:
        plan = Limit(plan, int(document["limit"]))
    return plan


def _expr(text) -> Expr:
    if isinstance(text, (int, float, bool)):
        return wrap(text)
    if not isinstance(text, str):
        raise PlanError(f"expected expression string, got {type(text).__name__}")
    # Imported lazily to avoid a package-initialization cycle between
    # repro.plan and repro.sql.
    from ..sql.parser import parse_expression

    return parse_expression(text)


def _node(spec: dict) -> LogicalPlan:
    if not isinstance(spec, dict) or "op" not in spec:
        raise PlanError("each JSON plan node needs an 'op' field")
    op = spec["op"]
    if op == "scan":
        return Scan(table=spec["table"], rename=dict(spec.get("rename", {})))
    if op == "filter":
        return Filter(_node(spec["input"]), _expr(spec["predicate"]))
    if op == "map":
        return Map(_node(spec["input"]), spec["name"], _expr(spec["expr"]))
    if op == "project":
        outputs = []
        for entry in spec["outputs"]:
            if isinstance(entry, str):
                outputs.append((entry, _expr(entry)))
            else:
                name, expression = entry
                outputs.append((name, _expr(expression)))
        return Project(_node(spec["input"]), outputs)
    if op == "join":
        residual = spec.get("residual")
        return Join(
            build=_node(spec["build"]),
            probe=_node(spec["probe"]),
            build_keys=[_expr(key) for key in spec["build_keys"]],
            probe_keys=[_expr(key) for key in spec["probe_keys"]],
            payload=list(spec.get("payload", [])),
            kind=spec.get("kind", "inner"),
            payload_defaults=dict(spec.get("payload_defaults", {})),
            residual=_expr(residual) if residual is not None else None,
        )
    if op == "aggregate":
        group_keys = []
        for entry in spec.get("group_by", []):
            if isinstance(entry, str):
                group_keys.append((entry, _expr(entry)))
            else:
                name, expression = entry
                group_keys.append((name, _expr(expression)))
        aggregates = []
        for entry in spec.get("aggregates", []):
            agg_op, expression, name = entry
            aggregates.append(
                AggSpec(agg_op, _expr(expression) if expression is not None else None, name)
            )
        return Aggregate(_node(spec["input"]), group_keys, aggregates)
    raise PlanError(f"unknown JSON plan op {op!r}")
