"""Tables: ordered collections of equal-length columns."""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from ..errors import SchemaError
from .column import Column
from .dtypes import DType


class Table:
    """An immutable columnar table.

    Column order is meaningful (it is the projection order of query
    results).  Rows are only materialized on demand, for result
    comparison and display.
    """

    def __init__(self, columns: Mapping[str, Column]):
        if not columns:
            raise SchemaError("a table needs at least one column")
        lengths = {name: len(column) for name, column in columns.items()}
        distinct = set(lengths.values())
        if len(distinct) > 1:
            raise SchemaError(f"column lengths differ: {lengths}")
        self._columns: dict[str, Column] = dict(columns)
        self._num_rows = distinct.pop()

    # ------------------------------------------------------------------
    # shape & access
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    @property
    def columns(self) -> dict[str, Column]:
        return dict(self._columns)

    def __len__(self) -> int:
        return self._num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            known = ", ".join(self._columns)
            raise SchemaError(f"no column {name!r}; table has: {known}") from None

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    @property
    def nbytes(self) -> int:
        """Total physical size of all columns."""
        return sum(column.nbytes for column in self._columns.values())

    def schema(self) -> dict[str, DType]:
        return {name: column.dtype for name, column in self._columns.items()}

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def select(self, names: Iterable[str]) -> "Table":
        """Keep only the given columns, in the given order."""
        return Table({name: self.column(name) for name in names})

    def take(self, indices: np.ndarray) -> "Table":
        """Row gather by position across all columns."""
        return Table({name: column.take(indices) for name, column in self._columns.items()})

    def slice(self, start: int, stop: int) -> "Table":
        return Table(
            {name: column.slice(start, stop) for name, column in self._columns.items()}
        )

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns; names absent from ``mapping`` are kept."""
        return Table(
            {mapping.get(name, name): column for name, column in self._columns.items()}
        )

    def with_column(self, name: str, column: Column) -> "Table":
        if len(column) != self._num_rows:
            raise SchemaError(
                f"column length {len(column)} does not match table rows {self._num_rows}"
            )
        merged = dict(self._columns)
        merged[name] = column
        return Table(merged)

    # ------------------------------------------------------------------
    # row-wise views (for result comparison / display)
    # ------------------------------------------------------------------
    def to_rows(self) -> list[tuple]:
        """Materialize as Python rows (strings decoded)."""
        decoded = [column.decoded() for column in self._columns.values()]
        return list(zip(*decoded)) if decoded else []

    def sorted_rows(self) -> list[tuple]:
        """Rows in a canonical order, for order-insensitive comparison.

        Engines that use atomic prefix sums emit rows in an undefined
        order (Section 5.1), so result equality is multiset equality.
        """
        return sorted(self.to_rows(), key=_row_sort_key)

    def head(self, count: int = 10) -> list[tuple]:
        return self.to_rows()[:count]

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{name}:{column.dtype.value}" for name, column in self._columns.items()
        )
        return f"Table(rows={self._num_rows}, [{cols}])"


def _row_sort_key(row: tuple) -> tuple:
    """Sort key tolerating mixed str/number columns."""
    return tuple(
        (0, value) if isinstance(value, str) else (1, float(value)) for value in row
    )


def rows_approx_equal(
    left: list[tuple], right: list[tuple], rel_tol: float = 1e-4, abs_tol: float = 1e-2
) -> bool:
    """Compare two sorted row lists allowing float rounding differences.

    Atomic reduction orders differ between engines, so float aggregates
    can differ by accumulation order; this comparison allows a small
    relative tolerance on numeric fields and requires exact equality on
    strings and integers.
    """
    if len(left) != len(right):
        return False
    for lrow, rrow in zip(left, right):
        if len(lrow) != len(rrow):
            return False
        for lval, rval in zip(lrow, rrow):
            if isinstance(lval, str) or isinstance(rval, str):
                if lval != rval:
                    return False
            else:
                lf, rf = float(lval), float(rval)
                if abs(lf - rf) > max(abs_tol, rel_tol * max(abs(lf), abs(rf))):
                    return False
    return True
