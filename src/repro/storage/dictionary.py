"""Dictionary compression for string columns.

CoGaDB stores string columns dictionary-compressed; HorseQC operates on
the int32 codes and leaves decompression to the host engine (Section 7).
A :class:`Dictionary` is an order-preserving code assignment so that
range predicates on codes correspond to lexicographic ranges on values —
the feature whose absence made the paper skip SSB Q2.2 ("we do not
support range predicates on dictionary compressed columns yet"); we do
support them.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..errors import SchemaError


class Dictionary:
    """An immutable, order-preserving string dictionary.

    Codes are assigned in sorted value order, so ``code(a) < code(b)``
    iff ``a < b``; equality and range predicates can therefore be pushed
    down onto the integer codes.
    """

    def __init__(self, values: Sequence[str]):
        unique = sorted(set(values))
        self._values: tuple[str, ...] = tuple(unique)
        self._codes: dict[str, int] = {value: code for code, value in enumerate(unique)}

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: str) -> bool:
        return value in self._codes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dictionary):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    @property
    def values(self) -> tuple[str, ...]:
        return self._values

    def code(self, value: str) -> int:
        """The int32 code of ``value``; raises if absent."""
        try:
            return self._codes[value]
        except KeyError:
            raise SchemaError(f"value {value!r} not in dictionary") from None

    def code_or_missing(self, value: str) -> int:
        """The code of ``value``, or -1 if the value is absent.

        -1 never matches a valid code, so equality predicates on absent
        constants correctly select nothing.
        """
        return self._codes.get(value, -1)

    def lower_bound(self, value: str) -> int:
        """Smallest code whose value is >= ``value`` (len(dict) if none)."""
        lo, hi = 0, len(self._values)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._values[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def upper_bound(self, value: str) -> int:
        """Smallest code whose value is > ``value``."""
        lo, hi = 0, len(self._values)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._values[mid] <= value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def value(self, code: int) -> str:
        if not 0 <= code < len(self._values):
            raise SchemaError(f"code {code} out of range for dictionary of size {len(self)}")
        return self._values[code]

    def encode(self, values: Iterable[str]) -> np.ndarray:
        """Encode a sequence of strings into int32 codes."""
        return np.fromiter(
            (self.code(value) for value in values), dtype=np.int32, count=-1
        )

    def decode(self, codes: np.ndarray) -> list[str]:
        """Decode an int32 code array back into Python strings."""
        values = self._values
        return [values[int(code)] for code in codes]


def encode_strings(values: Sequence[str]) -> tuple[np.ndarray, Dictionary]:
    """Build a dictionary for ``values`` and encode them in one step."""
    dictionary = Dictionary(values)
    return dictionary.encode(values), dictionary
