"""Typed, numpy-backed columns.

A :class:`Column` is the unit of storage and of PCIe transfer in every
macro execution model: engines move whole columns (run-to-finish) or
column blocks (kernel-at-a-time, batch processing) across the link.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import SchemaError
from .dictionary import Dictionary, encode_strings
from .dtypes import DType


class Column:
    """An immutable typed column of values.

    String columns hold int32 dictionary codes plus a
    :class:`Dictionary`; all other types hold their natural numpy dtype.
    """

    def __init__(self, dtype: DType, values: np.ndarray, dictionary: Dictionary | None = None):
        original = values
        values = np.asarray(values)
        expected = dtype.numpy_dtype
        if values.dtype != expected:
            values = values.astype(expected)
        if values.ndim != 1:
            raise SchemaError(f"columns must be 1-dimensional, got shape {values.shape}")
        if dtype is DType.STRING and dictionary is None:
            raise SchemaError("STRING columns require a dictionary")
        if dtype is not DType.STRING and dictionary is not None:
            raise SchemaError(f"{dtype.value} columns must not carry a dictionary")
        # np.asarray aliases ndarray inputs, and the freeze below would
        # otherwise mark the *caller's* array read-only as a side effect.
        if values is original and values.flags.writeable:
            values = values.copy()
        self.dtype = dtype
        self.values = values
        self.dictionary = dictionary
        self.values.flags.writeable = False

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_strings(cls, values: Sequence[str]) -> "Column":
        codes, dictionary = encode_strings(values)
        return cls(DType.STRING, codes, dictionary)

    @classmethod
    def from_codes(cls, codes: np.ndarray, dictionary: Dictionary) -> "Column":
        return cls(DType.STRING, codes, dictionary)

    @classmethod
    def int32(cls, values) -> "Column":
        return cls(DType.INT32, np.asarray(values, dtype=np.int32))

    @classmethod
    def int64(cls, values) -> "Column":
        return cls(DType.INT64, np.asarray(values, dtype=np.int64))

    @classmethod
    def float32(cls, values) -> "Column":
        return cls(DType.FLOAT32, np.asarray(values, dtype=np.float32))

    @classmethod
    def float64(cls, values) -> "Column":
        return cls(DType.FLOAT64, np.asarray(values, dtype=np.float64))

    @classmethod
    def date(cls, values) -> "Column":
        return cls(DType.DATE, np.asarray(values, dtype=np.int32))

    @classmethod
    def boolean(cls, values) -> "Column":
        return cls(DType.BOOL, np.asarray(values, dtype=np.bool_))

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    @property
    def nbytes(self) -> int:
        """Physical size — the volume this column contributes to traffic."""
        return self.values.nbytes

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Column":
        """Gather by position, keeping dtype and dictionary."""
        gathered = self.values[indices]
        # The gather output is ours alone; freeze it up front so the
        # constructor's copy-on-writable-alias guard does not fire.
        gathered.flags.writeable = False
        return Column(self.dtype, gathered, self.dictionary)

    def slice(self, start: int, stop: int) -> "Column":
        """A contiguous block of this column (for block-wise transfer)."""
        return Column(self.dtype, self.values[start:stop], self.dictionary)

    def decoded(self) -> list:
        """Python-level values: strings are decoded, others listed."""
        if self.dtype is DType.STRING:
            assert self.dictionary is not None
            return self.dictionary.decode(self.values)
        return self.values.tolist()

    def __repr__(self) -> str:
        return f"Column({self.dtype.value}, n={len(self)})"
