"""Columnar storage: typed columns, dictionaries, tables, catalog."""

from .column import Column
from .database import Database
from .dictionary import Dictionary, encode_strings
from .dtypes import DType, common_numeric_type, dtype_from_name
from .io import load_database, save_database
from .table import Table, rows_approx_equal

__all__ = [
    "Column",
    "Database",
    "Dictionary",
    "DType",
    "Table",
    "common_numeric_type",
    "dtype_from_name",
    "encode_strings",
    "load_database",
    "rows_approx_equal",
    "save_database",
]
