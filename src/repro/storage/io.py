"""Database persistence: save/load a catalog to a directory.

Generated benchmark databases take noticeable time to build at larger
scale factors; persisting them lets benchmark runs and notebooks reuse
one generation. Layout::

    <dir>/
      catalog.json          # table -> column -> {dtype, dictionary?}
      <table>.npz           # compressed numpy arrays, one per column

Dictionaries are stored in the catalog (they are small); values are
stored as the physical arrays (codes for strings).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import SchemaError
from .column import Column
from .database import Database
from .dictionary import Dictionary
from .dtypes import DType
from .table import Table

_CATALOG_NAME = "catalog.json"
_FORMAT_VERSION = 1


def save_database(database: Database, directory: str | Path) -> Path:
    """Write every table of ``database`` under ``directory``.

    The directory is created if needed; existing files are overwritten.
    Returns the catalog path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    catalog: dict = {"version": _FORMAT_VERSION, "tables": {}}
    for name in database.table_names:
        table = database.table(name)
        columns: dict[str, dict] = {}
        arrays: dict[str, np.ndarray] = {}
        for column_name, column in table.columns.items():
            entry: dict = {"dtype": column.dtype.value}
            if column.dictionary is not None:
                entry["dictionary"] = list(column.dictionary.values)
            columns[column_name] = entry
            arrays[column_name] = column.values
        catalog["tables"][name] = {"columns": columns, "rows": table.num_rows}
        np.savez_compressed(directory / f"{name}.npz", **arrays)
    catalog_path = directory / _CATALOG_NAME
    catalog_path.write_text(json.dumps(catalog, indent=2))
    return catalog_path


def load_database(directory: str | Path) -> Database:
    """Load a database previously written by :func:`save_database`."""
    directory = Path(directory)
    catalog_path = directory / _CATALOG_NAME
    if not catalog_path.exists():
        raise SchemaError(f"no catalog at {catalog_path}")
    catalog = json.loads(catalog_path.read_text())
    version = catalog.get("version")
    if version != _FORMAT_VERSION:
        raise SchemaError(
            f"unsupported database format version {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    tables: dict[str, Table] = {}
    for name, spec in catalog["tables"].items():
        archive_path = directory / f"{name}.npz"
        if not archive_path.exists():
            raise SchemaError(f"catalog names table {name!r} but {archive_path} is missing")
        with np.load(archive_path) as archive:
            columns: dict[str, Column] = {}
            for column_name, entry in spec["columns"].items():
                dtype = DType(entry["dtype"])
                values = archive[column_name]
                dictionary = None
                if "dictionary" in entry:
                    dictionary = Dictionary(entry["dictionary"])
                columns[column_name] = Column(dtype, values, dictionary)
        table = Table(columns)
        if table.num_rows != spec["rows"]:
            raise SchemaError(
                f"table {name!r} has {table.num_rows} rows on disk, "
                f"catalog says {spec['rows']}"
            )
        tables[name] = table
    return Database(tables)
