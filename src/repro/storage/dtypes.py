"""Logical column types and their physical (numpy) representation.

The paper's engine (CoGaDB + HorseQC) uses a columnar layout with
4-byte integers/floats for measures and dictionary-compressed strings
(Section 7: decompression is done by the host engine).  Traffic
accounting needs exact byte widths, so every logical type maps to a
fixed numpy dtype.
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import SchemaError


class DType(enum.Enum):
    """Logical column types supported by the engine."""

    INT32 = "int32"
    INT64 = "int64"
    FLOAT32 = "float32"
    FLOAT64 = "float64"
    BOOL = "bool"
    #: Dates are stored as int32 ``yyyymmdd`` keys, as in the SSB/TPC-H
    #: date dimensions (e.g. ``d_datekey = 19940101``).
    DATE = "date"
    #: Strings are dictionary-compressed: the column stores int32 codes
    #: and the dictionary lives beside the column.
    STRING = "string"

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(_NUMPY_DTYPES[self])

    @property
    def itemsize(self) -> int:
        """Physical width in bytes of one value."""
        return self.numpy_dtype.itemsize

    @property
    def is_numeric(self) -> bool:
        return self in (DType.INT32, DType.INT64, DType.FLOAT32, DType.FLOAT64)

    @property
    def is_integer(self) -> bool:
        return self in (DType.INT32, DType.INT64, DType.DATE)


_NUMPY_DTYPES = {
    DType.INT32: np.int32,
    DType.INT64: np.int64,
    DType.FLOAT32: np.float32,
    DType.FLOAT64: np.float64,
    DType.BOOL: np.bool_,
    DType.DATE: np.int32,
    DType.STRING: np.int32,  # dictionary codes
}


def dtype_from_name(name: str) -> DType:
    """Parse a logical type name (as used in JSON plans and schemas)."""
    try:
        return DType(name.lower())
    except ValueError:
        known = ", ".join(dtype.value for dtype in DType)
        raise SchemaError(f"unknown dtype {name!r}; known: {known}") from None


def common_numeric_type(left: DType, right: DType) -> DType:
    """Result type of an arithmetic operation between two columns.

    Follows the usual promotion ladder: any float operand promotes the
    result to FLOAT64 if either side is 64-bit, else FLOAT32; pure
    integer arithmetic stays integral (INT64 if either side is INT64).
    """
    numeric = {left, right}
    if not all(side.is_numeric or side is DType.DATE for side in numeric):
        raise SchemaError(f"cannot combine {left.value} and {right.value} numerically")
    if DType.FLOAT64 in numeric:
        return DType.FLOAT64
    if DType.FLOAT32 in numeric:
        if DType.INT64 in numeric:
            return DType.FLOAT64
        return DType.FLOAT32
    if DType.INT64 in numeric:
        return DType.INT64
    return DType.INT32
