"""The database catalog: named tables residing in host memory."""

from __future__ import annotations

import itertools
from collections.abc import Mapping

from ..errors import SchemaError
from .table import Table

#: Process-wide serial numbers: every catalog gets a distinct identity,
#: so cached plans for one database can never be served for another
#: (even one holding tables with identical names and schemas).
_SERIALS = itertools.count()


class Database:
    """A catalog of named tables (the host-side storage layer).

    All base data lives in host main memory before query execution, as
    in the paper's setup (Appendix A); execution engines pull columns or
    blocks from here onto the virtual device.

    Tables are immutable; all catalog mutation goes through
    :meth:`add`/:meth:`replace`/:meth:`drop`, each of which bumps the
    catalog version.  :meth:`fingerprint` combines the catalog's serial
    number with that version, giving the serving layer's plan cache a
    key component that changes whenever a cached plan could be stale.
    """

    def __init__(self, tables: Mapping[str, Table] | None = None):
        self._tables: dict[str, Table] = dict(tables or {})
        self._serial = next(_SERIALS)
        self._version = 0

    def add(self, name: str, table: Table) -> None:
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        self._tables[name] = table
        self._version += 1

    def replace(self, name: str, table: Table) -> None:
        self._tables[name] = table
        self._version += 1

    def drop(self, name: str) -> None:
        try:
            del self._tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r}") from None
        self._version += 1

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic counter, bumped by every catalog mutation."""
        return self._version

    def fingerprint(self) -> tuple[int, int]:
        """Identity + version: the cache-key component for this catalog.

        Two catalogs never share a fingerprint (distinct serials), and a
        catalog's fingerprint changes whenever a table is added,
        replaced (e.g. rows appended), or dropped.
        """
        return (self._serial, self._version)

    def schema_fingerprint(self) -> tuple:
        """A structural digest: table names, column names/dtypes, rows."""
        return tuple(
            (name, table.num_rows, tuple(sorted(table.schema().items())))
            for name, table in sorted(self._tables.items())
        )

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "(none)"
            raise SchemaError(f"no table {name!r}; catalog has: {known}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __getitem__(self, name: str) -> Table:
        return self.table(name)

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    @property
    def nbytes(self) -> int:
        return sum(table.nbytes for table in self._tables.values())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}({table.num_rows})" for name, table in sorted(self._tables.items())
        )
        return f"Database({parts})"
