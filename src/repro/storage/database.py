"""The database catalog: named tables residing in host memory."""

from __future__ import annotations

from collections.abc import Mapping

from ..errors import SchemaError
from .table import Table


class Database:
    """A catalog of named tables (the host-side storage layer).

    All base data lives in host main memory before query execution, as
    in the paper's setup (Appendix A); execution engines pull columns or
    blocks from here onto the virtual device.
    """

    def __init__(self, tables: Mapping[str, Table] | None = None):
        self._tables: dict[str, Table] = dict(tables or {})

    def add(self, name: str, table: Table) -> None:
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        self._tables[name] = table

    def replace(self, name: str, table: Table) -> None:
        self._tables[name] = table

    def drop(self, name: str) -> None:
        try:
            del self._tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r}") from None

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "(none)"
            raise SchemaError(f"no table {name!r}; catalog has: {known}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __getitem__(self, name: str) -> Table:
        return self.table(name)

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    @property
    def nbytes(self) -> int:
        return sum(table.nbytes for table in self._tables.values())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}({table.num_rows})" for name, table in sorted(self._tables.items())
        )
        return f"Database({parts})"
