"""Lightweight table/column statistics for the cost-based optimizer.

The advisor's selectivity and group-count estimates come from per-column
summaries — row count, min/max, null fraction, and a distinct-count
estimate — collected once per catalog version and cached under the
database :meth:`~repro.storage.database.Database.fingerprint` (the same
key the plan cache uses), so a catalog mutation invalidates the stats
exactly when it invalidates cached plans.

Collection is cheap and deterministic: columns larger than
``sample_limit`` values are sampled with a fixed stride (no RNG), and
the distinct count is scaled with the standard saturation heuristic —
if the sample looks mostly-unique the column is assumed key-like and
the distinct count scales with the row count; if the sample's distinct
set is small it is assumed to be the domain.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..storage.database import Database
from ..storage.table import Table


@dataclass(frozen=True)
class ColumnStats:
    """Summary of one base column."""

    rows: int
    minimum: float
    maximum: float
    null_fraction: float
    #: Estimated number of distinct values (>= 1 for non-empty columns).
    distinct: int
    #: True when the distinct estimate came from a full scan (exact).
    exact: bool
    #: True for integer-valued columns (inclusive-range selectivity).
    integral: bool = False

    @property
    def width(self) -> float:
        """Value-domain width (0 for constant columns)."""
        return self.maximum - self.minimum


@dataclass(frozen=True)
class TableStats:
    """Summary of one base table: row count plus per-column stats."""

    name: str
    rows: int
    nbytes: int
    columns: dict

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)


def _collect_column(values: np.ndarray, sample_limit: int) -> ColumnStats:
    rows = len(values)
    integral = values.dtype.kind in "iub"
    if rows == 0:
        return ColumnStats(
            rows=0, minimum=0.0, maximum=0.0, null_fraction=0.0,
            distinct=0, exact=True, integral=integral,
        )
    if rows > sample_limit:
        stride = -(-rows // sample_limit)  # ceil -> <= sample_limit values
        sample = values[::stride]
        exact = False
    else:
        sample = values
        exact = True
    null_fraction = 0.0
    if sample.dtype.kind == "f":
        nan_mask = np.isnan(sample)
        null_fraction = float(nan_mask.mean())
        if null_fraction:
            sample = sample[~nan_mask]
        if len(sample) == 0:
            return ColumnStats(
                rows=rows, minimum=0.0, maximum=0.0,
                null_fraction=1.0, distinct=0, exact=exact,
                integral=integral,
            )
    distinct_sample = int(len(np.unique(sample)))
    if exact:
        distinct = distinct_sample
    elif distinct_sample >= 0.7 * len(sample):
        # Mostly-unique sample: key-like, scale with the row count.
        distinct = int(round(distinct_sample * rows / len(sample)))
    else:
        # Small repeated domain: the sample saw (almost) all of it.
        distinct = distinct_sample
    return ColumnStats(
        rows=rows,
        minimum=float(sample.min()),
        maximum=float(sample.max()),
        null_fraction=null_fraction,
        distinct=max(1, distinct),
        exact=exact,
        integral=integral,
    )


def collect_table_stats(
    name: str, table: Table, sample_limit: int = 65536
) -> TableStats:
    """Scan (or stride-sample) every column of ``table`` once."""
    columns = {
        column_name: _collect_column(table.column(column_name).values, sample_limit)
        for column_name in table.column_names
    }
    return TableStats(
        name=name, rows=table.num_rows, nbytes=table.nbytes, columns=columns
    )


class StatisticsCatalog:
    """Fingerprint-keyed cache of :class:`TableStats` per database.

    ``table_stats`` collects lazily on first use; :meth:`analyze`
    collects eagerly for a whole catalog (the "at load time" hook).
    Entries for stale fingerprints of the same catalog serial are
    dropped, so a mutated database is re-analyzed but the cache never
    grows with dead versions.
    """

    def __init__(self, sample_limit: int = 65536):
        if sample_limit < 1:
            raise ValueError("sample_limit must be >= 1")
        self.sample_limit = sample_limit
        self._lock = threading.Lock()
        #: (serial, version, table name) -> TableStats
        self._entries: dict[tuple, TableStats] = {}
        self.collections = 0
        self.hits = 0

    def table_stats(self, database: Database, name: str) -> TableStats:
        serial, version = database.fingerprint()
        key = (serial, version, name)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                return cached
        stats = collect_table_stats(
            name, database.table(name), sample_limit=self.sample_limit
        )
        with self._lock:
            # Drop stats of older versions of this catalog.
            stale = [
                entry_key
                for entry_key in self._entries
                if entry_key[0] == serial and entry_key[1] != version
            ]
            for entry_key in stale:
                del self._entries[entry_key]
            self._entries[key] = stats
            self.collections += 1
        return stats

    def column_stats(
        self, database: Database, table: str, column: str
    ) -> ColumnStats | None:
        return self.table_stats(database, table).column(column)

    def analyze(self, database: Database) -> dict[str, TableStats]:
        """Eagerly collect stats for every table in the catalog."""
        return {
            name: self.table_stats(database, name)
            for name in database.table_names
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
