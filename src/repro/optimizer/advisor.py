"""Strategy advisor: enumerate the candidate lattice, prune dominated
options, rank the rest by calibrated predicted time.

The advisor turns the paper's hand-run crossover experiments into an
automatic decision.  For a compiled :class:`PhysicalQuery` it builds the
cross product of

* micro engine (:data:`~repro.optimizer.cost.MICRO_ENGINES`),
* macro model (run-to-finish vs. streaming out-of-core),
* device count 1..N with the configured partitioning scheme,
* placement (pooled residency vs. transient transfers),

drops candidates that are *provably* wrong before estimating them
(out-of-core when the working set fits comfortably; multi-device when a
single device already beats the fixed merge overhead; streaming for
engines the batch executor cannot run), prices the rest through the
:class:`~repro.optimizer.cost.CostEstimator`, applies the per-device
calibration factor, and returns an :class:`OptimizerDecision` whose
``candidates`` list is the full explainable breakdown.

Pinned dimensions are respected: a caller that fixes ``engine=
"pipelined"`` but leaves ``devices="auto"`` gets a lattice where only
the free dimensions vary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..hardware.interconnect import Interconnect
from ..hardware.profiles import DeviceProfile
from ..plan.physical import AggregateSink, MaterializeSink, PhysicalQuery
from ..storage.database import Database
from .calibrate import Calibrator
from .cost import (
    MACRO_MODELS,
    MICRO_ENGINES,
    PLACEMENTS,
    STREAMABLE_ENGINES,
    CostEstimate,
    CostEstimator,
    StrategyChoice,
)
from .stats import StatisticsCatalog

#: Fraction of device memory below which out-of-core streaming is
#: provably dominated by run-to-finish (same kernel traffic, plus
#: per-block overhead) and is pruned without estimation.
OOC_PRUNE_FRACTION = 0.5

#: Fraction of device memory above which run-to-finish is considered
#: at risk of failing allocation mid-query; candidates above it are
#: kept only if nothing safer is feasible.
FIT_SAFETY_FRACTION = 0.9


@dataclass
class PrunedCandidate:
    """A lattice point eliminated before (or after) estimation."""

    strategy: StrategyChoice
    reason: str


@dataclass
class OptimizerDecision:
    """The advisor's output: the pick plus the explainable breakdown."""

    chosen: StrategyChoice
    estimate: CostEstimate
    #: Feasible candidates, ranked best-first by calibrated time.
    candidates: list[CostEstimate] = field(default_factory=list)
    pruned: list[PrunedCandidate] = field(default_factory=list)
    #: Advisor wall-clock (ms) — the planning overhead.
    advise_ms: float = 0.0
    #: Observed execution time, attached post-run by the executor.
    observed_ms: float | None = None
    observed_pcie_bytes: int | None = None

    @property
    def predicted_ms(self) -> float:
        return self.estimate.calibrated_ms

    def error_fraction(self) -> float | None:
        """Relative |predicted - observed| / observed, once observed."""
        if not self.observed_ms:
            return None
        return abs(self.predicted_ms - self.observed_ms) / self.observed_ms

    def describe(self) -> str:
        return self.chosen.describe()

    def render(self, limit: int = 8) -> str:
        """Human-readable candidate table for EXPLAIN output."""
        lines = [
            f"strategy: {self.chosen.describe()}  "
            f"(predicted {self.predicted_ms:.3f} ms, "
            f"advise {self.advise_ms:.3f} ms)"
        ]
        if self.observed_ms is not None:
            error = self.error_fraction()
            lines.append(
                f"observed: {self.observed_ms:.3f} ms "
                f"(error {100.0 * error:.1f}%)"
            )
        header = (
            f"  {'candidate':<44} {'pred ms':>9} {'pcie MB':>9} "
            f"{'global MB':>10} {'peak MB':>9}"
        )
        lines.append(header)
        for estimate in self.candidates[:limit]:
            marker = "*" if estimate.strategy == self.chosen else " "
            lines.append(
                f" {marker}{estimate.strategy.describe():<44} "
                f"{estimate.calibrated_ms:>9.3f} "
                f"{estimate.pcie_bytes / 1e6:>9.3f} "
                f"{estimate.global_bytes / 1e6:>10.3f} "
                f"{estimate.peak_device_bytes / 1e6:>9.1f}"
            )
        hidden = len(self.candidates) - limit
        if hidden > 0:
            lines.append(f"  ... {hidden} more candidates")
        for pruned in self.pruned[:limit]:
            lines.append(
                f"  x {pruned.strategy.describe():<43} {pruned.reason}"
            )
        # Late-materialization decisions (compression="lazy"): which
        # predicate columns scan compressed and which decode.
        notes = [
            f"  {pipe.name}: {note}"
            for pipe in self.estimate.pipelines
            for note in pipe.scan_notes
        ]
        if notes:
            lines.append("late materialization:")
            lines.extend(notes[:limit])
            if len(notes) > limit:
                lines.append(f"  ... {len(notes) - limit} more columns")
        return "\n".join(lines)


class Advisor:
    """Ranks execution strategies for compiled queries."""

    def __init__(
        self,
        profile: DeviceProfile,
        interconnect: Interconnect | None = None,
        statistics: StatisticsCatalog | None = None,
        calibrator: Calibrator | None = None,
        max_devices: int = 4,
        block_bytes: int = 2 * 1024 * 1024,
        compression=None,
    ):
        if max_devices < 1:
            raise ConfigurationError(
                f"max_devices must be >= 1, got {max_devices}"
            )
        self.profile = profile
        self.statistics = statistics if statistics is not None else StatisticsCatalog()
        self.calibrator = calibrator if calibrator is not None else Calibrator()
        self.estimator = CostEstimator(
            profile, interconnect, self.statistics, block_bytes=block_bytes,
            compression=compression,
        )
        self.max_devices = max_devices

    # ------------------------------------------------------------------
    def candidate_strategies(
        self,
        query: PhysicalQuery,
        *,
        engine: str | None = None,
        macro: str | None = None,
        devices: int | None = None,
        partitioning: str = "range",
        placement: str | None = None,
    ) -> tuple[list[StrategyChoice], list[PrunedCandidate]]:
        """The lattice for ``query`` with pinned dimensions frozen.

        Returns ``(candidates, pruned)`` where ``pruned`` holds lattice
        points eliminated by static feasibility (no cost estimate
        needed): non-streamable engines under out-of-core, and any
        partitioned macro over a virtual-table final pipeline.
        """
        final = query.final_pipeline
        streaming_ok = not final.source_is_virtual and isinstance(
            final.sink, (MaterializeSink, AggregateSink)
        )
        scaleout_ok = not final.source_is_virtual

        engines = [engine] if engine else list(MICRO_ENGINES)
        macros = [macro] if macro else list(MACRO_MODELS)
        if devices is not None:
            device_counts = [devices]
        else:
            device_counts = list(range(1, self.max_devices + 1))
        placements = [placement] if placement else list(PLACEMENTS)

        candidates: list[StrategyChoice] = []
        pruned: list[PrunedCandidate] = []
        for candidate_engine in engines:
            for candidate_macro in macros:
                for count in device_counts:
                    for candidate_placement in placements:
                        choice = StrategyChoice(
                            engine=candidate_engine,
                            macro=candidate_macro,
                            devices=count,
                            partitioning=partitioning,
                            placement=candidate_placement,
                        )
                        reason = self._static_infeasibility(
                            choice, streaming_ok, scaleout_ok
                        )
                        if reason:
                            pruned.append(PrunedCandidate(choice, reason))
                        else:
                            candidates.append(choice)
        return candidates, pruned

    def _static_infeasibility(
        self, choice: StrategyChoice, streaming_ok: bool, scaleout_ok: bool
    ) -> str | None:
        if choice.macro == "out-of-core":
            if choice.devices > 1:
                return "out-of-core streaming is single-device"
            if not streaming_ok:
                return "plan is not streamable (virtual final pipeline)"
            if choice.engine not in STREAMABLE_ENGINES:
                return "engine has no compound streaming mode"
        if choice.devices > 1 and not scaleout_ok:
            return "virtual-table final pipeline cannot be partitioned"
        return None

    # ------------------------------------------------------------------
    def advise(
        self,
        query: PhysicalQuery,
        database: Database,
        *,
        engine: str | None = None,
        macro: str | None = None,
        devices: int | None = None,
        partitioning: str = "range",
        placement: str | None = None,
        resident_bytes: int = 0,
        device_name: str | None = None,
    ) -> OptimizerDecision:
        """Pick the cheapest feasible strategy for ``query``."""
        started = time.perf_counter()
        capacity = self.profile.memory_capacity
        candidates, pruned = self.candidate_strategies(
            query,
            engine=engine,
            macro=macro,
            devices=devices,
            partitioning=partitioning,
            placement=placement,
        )
        if not candidates and not pruned:
            raise ConfigurationError("no candidate strategies to rank")

        estimates: list[CostEstimate] = []
        fits_comfortably = False
        run_to_finish_available = any(
            choice.macro == "run-to-finish" for choice in candidates
        )
        for choice in candidates:
            estimate = self.estimator.estimate(
                query, database, choice, resident_bytes=resident_bytes
            )
            if not estimate.feasible:
                pruned.append(PrunedCandidate(choice, estimate.reason))
                continue
            if (
                choice.macro == "run-to-finish"
                and estimate.peak_device_bytes
                <= OOC_PRUNE_FRACTION * capacity
            ):
                fits_comfortably = True
            if estimate.peak_device_bytes > capacity:
                if choice.macro == "run-to-finish":
                    pruned.append(PrunedCandidate(
                        choice,
                        f"working set {estimate.peak_device_bytes / 1e6:.0f}MB"
                        f" exceeds device memory {capacity / 1e6:.0f}MB",
                    ))
                    continue
            estimate.calibrated_ms = estimate.total_ms * self.calibrator.factor(
                device_name or self.profile.name, choice
            )
            estimates.append(estimate)

        if fits_comfortably and run_to_finish_available:
            kept: list[CostEstimate] = []
            for estimate in estimates:
                if estimate.strategy.macro == "out-of-core":
                    pruned.append(PrunedCandidate(
                        estimate.strategy,
                        "dominated: working set fits in "
                        f"<{OOC_PRUNE_FRACTION:.0%} of device memory",
                    ))
                else:
                    kept.append(estimate)
            estimates = kept

        if not estimates:
            raise ConfigurationError(
                "no feasible execution strategy for this plan; "
                "pruned: "
                + "; ".join(
                    f"{p.strategy.describe()} ({p.reason})" for p in pruned[:4]
                )
            )

        # Risky run-to-finish candidates (near-capacity working sets)
        # only win if no safer candidate exists at all.
        safe = [
            estimate
            for estimate in estimates
            if estimate.strategy.macro == "out-of-core"
            or estimate.peak_device_bytes <= FIT_SAFETY_FRACTION * capacity
        ]
        pool = safe if safe else estimates
        pool.sort(key=_rank_key)
        best = pool[0]
        ranked = sorted(estimates, key=_rank_key)
        decision = OptimizerDecision(
            chosen=best.strategy,
            estimate=best,
            candidates=ranked,
            pruned=pruned,
            advise_ms=(time.perf_counter() - started) * 1e3,
        )
        return decision


def _rank_key(estimate: CostEstimate) -> tuple:
    """Calibrated time, with deterministic tie-breaks: fewer devices,
    pooled before transient, run-to-finish before streaming."""
    strategy = estimate.strategy
    return (
        round(estimate.calibrated_ms, 9),
        strategy.devices,
        0 if strategy.placement == "pooled" else 1,
        0 if strategy.macro == "run-to-finish" else 1,
        strategy.engine,
    )
