"""Adaptive cost-based optimizer (see ``docs/optimizer.md``).

Turns the paper's hand-run crossover experiments — multi-pass vs.
compound vs. local-resolution, run-to-finish vs. out-of-core, one
device vs. a fleet, pooled vs. transient placement — into an automatic,
self-calibrating decision per query:

* :mod:`~repro.optimizer.stats` — fingerprint-cached table/column
  statistics feeding selectivity and group-count estimates;
* :mod:`~repro.optimizer.cost` — per-strategy predictions of bytes per
  memory level, atomic pressure, and PCIe traffic, priced through the
  same :class:`~repro.hardware.costmodel.KernelCostModel` the simulator
  uses;
* :mod:`~repro.optimizer.advisor` — lattice enumeration, dominance
  pruning, ranked :class:`StrategyChoice` with explainable breakdown;
* :mod:`~repro.optimizer.calibrate` — bounded-EWMA correction of
  predicted vs. observed time after every execution;
* :mod:`~repro.optimizer.auto` — the ``engine="auto"`` executor wiring
  it all into the session/serving paths.
"""

from .advisor import Advisor, OptimizerDecision, PrunedCandidate
from .auto import AUTO, AutoExecutor, resolve_auto
from .calibrate import CalibrationSample, Calibrator
from .cost import (
    MACRO_MODELS,
    MICRO_ENGINES,
    PLACEMENTS,
    CostEstimate,
    CostEstimator,
    PipelineEstimate,
    StrategyChoice,
)
from .stats import (
    ColumnStats,
    StatisticsCatalog,
    TableStats,
    collect_table_stats,
)

__all__ = [
    "AUTO",
    "Advisor",
    "AutoExecutor",
    "CalibrationSample",
    "Calibrator",
    "ColumnStats",
    "CostEstimate",
    "CostEstimator",
    "MACRO_MODELS",
    "MICRO_ENGINES",
    "OptimizerDecision",
    "PLACEMENTS",
    "PipelineEstimate",
    "PrunedCandidate",
    "StatisticsCatalog",
    "StrategyChoice",
    "TableStats",
    "collect_table_stats",
    "resolve_auto",
]
