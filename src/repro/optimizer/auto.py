"""The ``engine="auto"`` execution driver.

:class:`AutoExecutor` owns everything a self-tuning session needs: the
statistics catalog, the advisor, the calibrator, a pooled device (with
a :class:`~repro.placement.BufferPool` attached), a pool-less transient
device, and lazily-built scale-out executors per device count.  For
each compiled query it

1. asks the :class:`~repro.optimizer.advisor.Advisor` for the cheapest
   feasible :class:`~repro.optimizer.cost.StrategyChoice` (discounting
   the h2d charge for columns already pool-resident),
2. dispatches to the matching execution path — the same code paths a
   pinned session would use (``Engine.execute``,
   :func:`~repro.placement.execute_with_placement`,
   :func:`~repro.macro.batch.execute_out_of_core`, or
   :class:`~repro.scaleout.ScaleOutExecutor`) so results are
   byte-identical to pinned runs by construction,
3. feeds the observed time and exact PCIe bytes back into the
   :class:`~repro.optimizer.calibrate.Calibrator`, and attaches the
   full :class:`~repro.optimizer.advisor.OptimizerDecision` to
   ``result.optimizer``.

A safety net guarantees the advisor can never strand a query on an
infeasible pick: any run-to-finish execution that still raises
:class:`~repro.errors.DeviceMemoryError` (the estimate was wrong) is
retried on the streaming out-of-core path, and the miss is recorded so
calibration learns from it.
"""

from __future__ import annotations

import threading

from ..compression import resolve_compression
from ..engines import make_engine
from ..engines.base import Engine, ExecutionResult
from ..errors import ConfigurationError, DeviceMemoryError
from ..hardware.device import VirtualCoprocessor
from ..hardware.interconnect import PCIE3, Interconnect
from ..hardware.profiles import DeviceProfile
from ..plan.physical import PhysicalQuery
from ..storage.database import Database
from ..telemetry.events import record_event
from .advisor import Advisor, OptimizerDecision
from .calibrate import Calibrator
from .cost import StrategyChoice, streamable_mode
from .stats import StatisticsCatalog

#: Sentinel accepted by ``Session(engine=...)`` / ``devices=...``.
AUTO = "auto"


class AutoExecutor:
    """Adaptive executor behind ``engine="auto"`` / ``devices="auto"``.

    ``engine``/``devices``/``placement``/``macro`` pin individual
    lattice dimensions (``None`` leaves them to the advisor); e.g.
    ``engine="auto", devices=2`` fixes the fleet size but lets the
    advisor pick micro model, macro model, and placement.
    """

    def __init__(
        self,
        profile: DeviceProfile,
        interconnect: Interconnect = PCIE3,
        max_devices: int = 4,
        engine: str | None = None,
        devices: int | None = None,
        partitioning: str = "range",
        placement: str | None = None,
        macro: str | None = None,
        statistics: StatisticsCatalog | None = None,
        calibrator: Calibrator | None = None,
        compression=None,
    ):
        self.profile = profile
        self.interconnect = interconnect
        self.compression = resolve_compression(compression)
        self.statistics = statistics if statistics is not None else StatisticsCatalog()
        self.calibrator = calibrator if calibrator is not None else Calibrator()
        self.advisor = Advisor(
            profile,
            interconnect,
            statistics=self.statistics,
            calibrator=self.calibrator,
            max_devices=max_devices,
            compression=self.compression,
        )
        self.pinned_engine = engine
        self.pinned_devices = devices
        self.pinned_placement = placement
        self.pinned_macro = macro
        self.partitioning = partitioning
        self._lock = threading.Lock()
        self._engines: dict[str, Engine] = {}
        self._scaleout: dict[int, object] = {}
        self._pooled_device: VirtualCoprocessor | None = None
        self._transient_device: VirtualCoprocessor | None = None
        self.decisions = 0
        self.fallbacks = 0
        self._last_decision: OptimizerDecision | None = None

    # ------------------------------------------------------------------
    # lazily-built execution resources
    # ------------------------------------------------------------------
    def _engine(self, name: str) -> Engine:
        with self._lock:
            engine = self._engines.get(name)
            if engine is None:
                engine = make_engine(name)
                self._engines[name] = engine
            return engine

    def pooled_device(self) -> VirtualCoprocessor:
        with self._lock:
            if self._pooled_device is None:
                from ..placement import BufferPool

                device = VirtualCoprocessor(
                    self.profile, interconnect=self.interconnect
                )
                device.compression = self.compression
                BufferPool(device)
                self._pooled_device = device
            return self._pooled_device

    def transient_device(self) -> VirtualCoprocessor:
        with self._lock:
            if self._transient_device is None:
                self._transient_device = VirtualCoprocessor(
                    self.profile, interconnect=self.interconnect
                )
                self._transient_device.compression = self.compression
            return self._transient_device

    def _scaleout_executor(self, devices: int):
        with self._lock:
            executor = self._scaleout.get(devices)
            if executor is None:
                from ..scaleout import ScaleOutExecutor

                executor = ScaleOutExecutor(
                    devices,
                    profile=self.profile,
                    interconnect=self.interconnect,
                    partitioning=self.partitioning,
                    residency=True,
                    compression=self.compression,
                )
                self._scaleout[devices] = executor
            return executor

    # ------------------------------------------------------------------
    def _resident_bytes(self, query: PhysicalQuery, database: Database) -> int:
        """Bytes of the plan's base columns already pool-resident.

        With a compression policy the pool stores wire images, so the
        discount (and the peak contribution) is the wire size."""
        device = self._pooled_device
        if device is None or device.placement_pool is None:
            return 0
        pool = device.placement_pool
        serial = database.fingerprint()[0]
        seen: set[tuple[str, str]] = set()
        total = 0
        for pipeline in query.pipelines:
            if pipeline.source_is_virtual:
                continue
            table = database.table(pipeline.source)
            for name in pipeline.required_columns:
                base = pipeline.source_rename.get(name, name)
                key = (pipeline.source, base)
                if key in seen:
                    continue
                seen.add(key)
                if (serial, pipeline.source, base) in pool:
                    column = table.column(base)
                    total += (
                        self.compression.wire_nbytes(column)
                        if self.compression is not None
                        else column.nbytes
                    )
        return total

    # ------------------------------------------------------------------
    def advise(
        self, query: PhysicalQuery, database: Database
    ) -> OptimizerDecision:
        return self.advisor.advise(
            query,
            database,
            engine=self.pinned_engine,
            macro=self.pinned_macro,
            devices=self.pinned_devices,
            partitioning=self.partitioning,
            placement=self.pinned_placement,
            resident_bytes=self._resident_bytes(query, database),
        )

    def execute(
        self, query: PhysicalQuery, database: Database, seed: int = 42
    ) -> ExecutionResult:
        """Advise, run, observe — the full adaptive loop for one query."""
        decision = self.advise(query, database)
        strategy = decision.chosen
        record_event(
            "optimizer.decision",
            strategy=strategy.describe(),
            predicted_ms=round(decision.predicted_ms, 6),
        )
        result = self._dispatch(strategy, query, database, seed, decision)
        observed_ms = result.total_ms
        if result.scaleout is not None:
            observed_ms = result.scaleout.makespan_ms + result.scaleout.merge_ms
        decision.observed_ms = observed_ms
        decision.observed_pcie_bytes = result.input_bytes + result.output_bytes
        self.calibrator.observe(
            self.profile.name,
            strategy,
            predicted_ms=decision.predicted_ms,
            observed_ms=observed_ms,
            predicted_bytes=decision.estimate.pcie_bytes,
            observed_bytes=decision.observed_pcie_bytes,
        )
        # Per-codec decode throughput observed this run feeds both the
        # calibrator and the policy's scan-vs-decode decision factor.
        if result.compression is not None:
            for codec, sim_ms in result.compression.decode_ms_by_codec.items():
                raw = result.compression.decode_bytes_by_codec.get(codec, 0)
                self.calibrator.observe_decode(codec, raw, sim_ms)
                if self.compression is not None:
                    self.compression.observe_decode(codec, raw, sim_ms)
        result.optimizer = decision
        with self._lock:
            self.decisions += 1
            self._last_decision = decision
        return result

    def _dispatch(
        self,
        strategy: StrategyChoice,
        query: PhysicalQuery,
        database: Database,
        seed: int,
        decision: OptimizerDecision,
    ) -> ExecutionResult:
        engine = self._engine(strategy.engine)
        if strategy.devices > 1:
            executor = self._scaleout_executor(strategy.devices)
            return executor.execute(engine, query, database, seed=seed)
        if strategy.macro == "out-of-core":
            from ..macro.batch import execute_out_of_core

            device = (
                self.pooled_device()
                if strategy.placement == "pooled"
                else self.transient_device()
            )
            return execute_out_of_core(
                query, database, device, seed=seed,
                block_bytes=self.advisor.estimator.stream_block_bytes(),
                mode=streamable_mode(strategy.engine),
            )
        if strategy.placement == "pooled":
            from ..placement import execute_with_placement

            # execute_with_placement already owns the DeviceMemoryError
            # -> out-of-core retry, so a wrong fit estimate degrades to
            # streaming instead of failing.
            return execute_with_placement(
                engine, query, database, self.pooled_device(), seed=seed
            )
        try:
            return engine.execute(
                query, database, self.transient_device(), seed=seed
            )
        except DeviceMemoryError:
            # Safety net: the fit estimate was wrong.  Stream instead.
            with self._lock:
                self.fallbacks += 1
            from .advisor import PrunedCandidate

            decision.pruned.append(
                PrunedCandidate(strategy, "ran out of device memory")
            )
            from ..macro.batch import execute_out_of_core

            return execute_out_of_core(
                query, database, self.transient_device(), seed=seed,
                block_bytes=self.advisor.estimator.stream_block_bytes(),
                mode=streamable_mode(strategy.engine),
            )

    # ------------------------------------------------------------------
    def last_decision(self) -> OptimizerDecision | None:
        with self._lock:
            return self._last_decision

    def observe_metrics(self, metrics, **labels) -> None:
        """Export ``repro_optimizer_*`` metrics into ``metrics``."""
        with self._lock:
            decisions = self.decisions
            fallbacks = self.fallbacks
            last = self._last_decision
        metrics.counter(
            "repro_optimizer_decisions_total",
            "Strategy decisions made by the adaptive optimizer",
            **labels,
        ).set_total(decisions)
        metrics.counter(
            "repro_optimizer_oom_fallbacks_total",
            "Auto executions that hit the DeviceMemoryError safety net",
            **labels,
        ).set_total(fallbacks)
        metrics.gauge(
            "repro_optimizer_calibration_samples",
            "Prediction/observation pairs folded into calibration",
            **labels,
        ).set(self.calibrator.samples)
        byte_error = self.calibrator.median_byte_error()
        if byte_error is not None:
            metrics.gauge(
                "repro_optimizer_median_byte_error",
                "Median relative predicted-vs-observed PCIe byte error",
                **labels,
            ).set(byte_error)
        time_error = self.calibrator.median_time_error()
        if time_error is not None:
            metrics.gauge(
                "repro_optimizer_median_time_error",
                "Median relative predicted-vs-observed latency error",
                **labels,
            ).set(time_error)
        if last is not None:
            metrics.counter(
                "repro_optimizer_strategies_total",
                "Executions by chosen strategy",
                strategy=last.chosen.describe(),
                **labels,
            ).inc()
            metrics.histogram(
                "repro_optimizer_advise_ms",
                "Advisor planning overhead per query (ms)",
                **labels,
            ).observe(last.advise_ms)
            error = last.error_fraction()
            if error is not None:
                metrics.histogram(
                    "repro_optimizer_prediction_error",
                    "Relative predicted-vs-observed latency error",
                    **labels,
                ).observe(error)

    def placement_stats(self):
        device = self._pooled_device
        if device is not None and device.placement_pool is not None:
            return device.placement_pool.stats()
        return None


def resolve_auto(value, kind: str):
    """Validate an ``engine``/``devices`` value that may be ``"auto"``.

    Returns ``None`` when the dimension should be decided by the
    advisor, else the pinned value.  Raises
    :class:`~repro.errors.ConfigurationError` naming the valid choices
    (mirroring :func:`repro.engines.make_engine` and
    :func:`repro.scaleout.validate_devices`).
    """
    if kind == "engine":
        if value == AUTO:
            return None
        return value
    if kind == "devices":
        if value == AUTO:
            return None
        if isinstance(value, str):
            raise ConfigurationError(
                f"devices must be an integer >= 1 or 'auto', got {value!r}"
            )
        return value
    raise ConfigurationError(f"unknown auto dimension {kind!r}")
