"""Strategy cost estimation: bytes per memory level, atomic pressure,
PCIe traffic, and simulated time per candidate strategy.

A :class:`StrategyChoice` names one point in the execution lattice the
paper's evaluation explores by hand:

* **macro** — run-to-finish vs. streaming out-of-core batches
  (Section 2, Experiment 5);
* **engine** (micro) — operator-at-a-time vs. multipass vs. compound
  (``pipelined``) vs. local-resolution variants (Sections 3-6);
* **devices** — 1..N with a partitioning scheme (the scale-out layer);
* **placement** — pooled residency vs. transient transfers.

For each candidate the :class:`CostEstimator` predicts the per-pipeline
traffic a real execution would record in its
:class:`~repro.hardware.traffic.TrafficMeter` — GLOBAL/ONCHIP bytes,
atomic batches with conflict-chain lengths, kernel launches — and then
prices that synthetic meter through the *same*
:class:`~repro.hardware.costmodel.KernelCostModel` the simulator uses,
so predicted and observed times share one cost model and the only error
sources are cardinality estimates and the per-engine byte shapes
(which the calibration loop corrects online).

The per-engine byte shapes mirror what the engines actually emit (see
``tests/test_optimizer.py`` for the fidelity checks):

* compound engines stream every required column once and add hash-table
  traffic; ``pipelined`` pays same-address atomic chains (prefix sums,
  contended aggregation), ``resolution`` pays on-chip pre-aggregation
  traffic that grows with the group count;
* multipass adds the count/prefix/write passes (re-reading inputs);
* operator-at-a-time materializes every intermediate and, like
  multipass, falls back to sort-based grouping (~140 bytes/row) —
  the reason compound kernels win grouped aggregation by an order of
  magnitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import PlanError
from ..expressions.expr import (
    Between,
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    Not,
)
from ..hardware.costmodel import KernelCostModel
from ..hardware.interconnect import Interconnect
from ..hardware.profiles import DeviceProfile
from ..hardware.traffic import AtomicBatch, MemoryLevel, TrafficMeter
from ..plan.physical import (
    AggregateSink,
    BuildSink,
    FilterStage,
    MapStage,
    MaterializeSink,
    PhysicalQuery,
    Pipeline,
    ProbeStage,
)
from ..storage.database import Database
from .stats import StatisticsCatalog, TableStats

#: The macro execution models the advisor chooses between.
MACRO_MODELS = ("run-to-finish", "out-of-core")

#: Placement modes: pooled residency vs. stateless transfers.
PLACEMENTS = ("pooled", "transient")

#: Micro execution models enumerated by default (GPU engines with
#: distinct cost shapes; the ``resolution-we`` variant shares the
#: ``resolution`` shape and is left to explicit pinning).
MICRO_ENGINES = ("operator-at-a-time", "multipass", "pipelined", "resolution")

#: Engines the streaming out-of-core executor can run (compound modes).
STREAMABLE_ENGINES = {
    "pipelined": "atomic",
    "resolution": "lrgp_simd",
    "resolution-simd": "lrgp_simd",
    "resolution-we": "lrgp_we",
}

#: Default selectivity when a predicate cannot be estimated from stats.
DEFAULT_SELECTIVITY = 1.0 / 3.0

_GLOBAL = MemoryLevel.GLOBAL
_ONCHIP = MemoryLevel.ONCHIP

#: Per-block scheduling overhead of the streaming executor (seconds),
#: mirrored from :data:`repro.macro.batch.BLOCK_OVERHEAD`.
_BLOCK_OVERHEAD_S = 20e-6

#: Host-side scatter-gather merge overhead for scale-out: a fixed cost
#: plus a per-partial term (wall clock, ms).
_MERGE_BASE_MS = 0.06
_MERGE_PER_PARTIAL_MS = 0.012


@dataclass(frozen=True)
class StrategyChoice:
    """One point in the execution-strategy lattice."""

    engine: str = "resolution"
    macro: str = "run-to-finish"
    devices: int = 1
    partitioning: str = "range"
    placement: str = "pooled"

    def key(self) -> tuple:
        """Hashable identity (used by the plan cache and calibration)."""
        return (self.engine, self.macro, self.devices, self.partitioning,
                self.placement)

    def describe(self) -> str:
        parts = [self.engine, self.macro]
        if self.devices > 1:
            parts.append(f"{self.devices}dev/{self.partitioning}")
        parts.append(self.placement)
        return "+".join(parts)


@dataclass
class PipelineEstimate:
    """Predicted cardinalities and traffic for one pipeline."""

    name: str
    source: str
    rows_in: int
    selectivity: float
    rows_out: int
    #: Exact bytes of the distinct source columns the pipeline reads
    #: (what materializes in device memory for base-table pipelines).
    input_bytes: int
    #: Bytes that cross the link for those columns: the compressed wire
    #: size when a compression policy is set, else ``input_bytes``.
    wire_bytes: int = 0
    global_bytes: int = 0
    onchip_bytes: int = 0
    kernels: int = 1
    kernel_ms: float = 0.0
    #: Estimated result bytes this pipeline ships d2h (final only).
    output_bytes: int = 0
    groups: int = 0
    #: Per-column late-materialization decisions (compressed scan vs
    #: decode-then-scan), surfaced in EXPLAIN under ``compression="lazy"``.
    scan_notes: list = field(default_factory=list)


@dataclass
class CostEstimate:
    """Full cost prediction for one candidate strategy."""

    strategy: StrategyChoice
    pipelines: list[PipelineEstimate] = field(default_factory=list)
    pcie_h2d_bytes: int = 0
    pcie_d2h_bytes: int = 0
    global_bytes: int = 0
    onchip_bytes: int = 0
    kernel_ms: float = 0.0
    transfer_ms: float = 0.0
    #: Scale-out merge + out-of-core block scheduling (host-side).
    overhead_ms: float = 0.0
    #: Predicted peak device allocation (feasibility input).
    peak_device_bytes: int = 0
    feasible: bool = True
    reason: str = ""
    #: ``total_ms`` after the calibration factor (advisor ranking key).
    calibrated_ms: float = 0.0

    @property
    def pcie_bytes(self) -> int:
        return self.pcie_h2d_bytes + self.pcie_d2h_bytes

    @property
    def total_ms(self) -> float:
        """Uncalibrated end-to-end prediction (kernels + transfers +
        host overheads, serialized — matching ``ExecutionResult.total_ms``
        for one device and makespan+merge for a fleet)."""
        return self.kernel_ms + self.transfer_ms + self.overhead_ms


class CostEstimator:
    """Predicts per-strategy traffic and time for a compiled query."""

    def __init__(
        self,
        profile: DeviceProfile,
        interconnect: Interconnect | None,
        statistics: StatisticsCatalog | None = None,
        morsels_per_device: int = 2,
        block_bytes: int = 2 * 1024 * 1024,
        compression=None,
    ):
        self.profile = profile
        self.interconnect = None if profile.zero_copy else interconnect
        self.statistics = statistics if statistics is not None else StatisticsCatalog()
        self.cost_model = KernelCostModel(profile)
        self.morsels_per_device = morsels_per_device
        self.block_bytes = block_bytes
        #: Wire-compression policy execution will run under: the model
        #: learns per-column compressed sizes (cached on the columns, so
        #: estimation shares the encodings execution will use) and
        #: prices the decode kernels that pay for the link savings.
        self.compression = compression if self.interconnect is not None else None

    def stream_block_bytes(self) -> int:
        """Streaming block size, shrunk on small devices so double
        buffering never claims more than a quarter of device memory
        (the out-of-core executor is handed the same value)."""
        return max(64 * 1024, min(self.block_bytes,
                                  self.profile.memory_capacity // 8))

    # ------------------------------------------------------------------
    # selectivity / cardinality estimation
    # ------------------------------------------------------------------
    def predicate_selectivity(
        self, expr: Expr, stats: TableStats | None, renames: dict[str, str]
    ) -> float:
        """Fraction of rows satisfying ``expr`` (clamped to [0, 1])."""
        sel = self._selectivity(expr, stats, renames)
        return min(1.0, max(0.0, sel))

    def _column(self, name: str, stats: TableStats | None, renames):
        if stats is None:
            return None
        return stats.column(renames.get(name, name))

    def _selectivity(self, expr, stats, renames) -> float:
        if isinstance(expr, BooleanOp):
            parts = [
                self._selectivity(operand, stats, renames)
                for operand in expr.operands
            ]
            if expr.op == "and":
                sel = 1.0
                for part in parts:
                    sel *= part
                return sel
            miss = 1.0
            for part in parts:
                miss *= 1.0 - part
            return 1.0 - miss
        if isinstance(expr, Not):
            return 1.0 - self._selectivity(expr.operand, stats, renames)
        if isinstance(expr, Between):
            return self._between_selectivity(expr, stats, renames)
        if isinstance(expr, Comparison):
            return self._comparison_selectivity(expr, stats, renames)
        if isinstance(expr, InList):
            column = (
                self._column(expr.operand.name, stats, renames)
                if isinstance(expr.operand, ColumnRef)
                else None
            )
            if column is not None and column.distinct:
                return len(expr.options) / column.distinct
            return min(1.0, 0.1 * len(expr.options))
        if isinstance(expr, Literal):
            return 1.0 if expr.value else 0.0
        return DEFAULT_SELECTIVITY

    def _comparison_selectivity(self, expr: Comparison, stats, renames) -> float:
        column_side, literal_side, op = expr.left, expr.right, expr.op
        if isinstance(column_side, Literal) and isinstance(literal_side, ColumnRef):
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            column_side, literal_side = literal_side, column_side
            op = flip.get(op, op)
        if not (isinstance(column_side, ColumnRef) and isinstance(literal_side, Literal)):
            return DEFAULT_SELECTIVITY
        column = self._column(column_side.name, stats, renames)
        value = literal_side.value
        if column is None or not isinstance(value, (int, float)):
            return DEFAULT_SELECTIVITY
        if op == "==":
            return 1.0 / max(1, column.distinct)
        if op == "!=":
            return 1.0 - 1.0 / max(1, column.distinct)
        width = column.width
        if width <= 0:
            # Constant column: the comparison is all-or-nothing.
            reference = column.minimum
            outcome = {
                "<": reference < value, "<=": reference <= value,
                ">": reference > value, ">=": reference >= value,
            }[op]
            return 1.0 if outcome else 0.0
        if op in ("<", "<="):
            return (value - column.minimum) / width
        return (column.maximum - value) / width

    def _between_selectivity(self, expr: Between, stats, renames) -> float:
        operand, low, high = expr.operand, expr.low, expr.high
        if not (
            isinstance(operand, ColumnRef)
            and isinstance(low, Literal)
            and isinstance(high, Literal)
        ):
            return DEFAULT_SELECTIVITY
        column = self._column(operand.name, stats, renames)
        if column is None:
            return DEFAULT_SELECTIVITY
        lo = max(column.minimum, float(low.value))
        hi = min(column.maximum, float(high.value))
        if hi < lo:
            return 0.0
        if column.width <= 0:
            return 1.0
        if column.integral:
            # Inclusive integer range: count the values, not the span.
            return (hi - lo + 1.0) / (column.width + 1.0)
        return (hi - lo) / column.width

    def expr_distinct(self, expr: Expr, stats: TableStats | None, renames) -> int:
        """Distinct-value estimate for a group-key expression."""
        if isinstance(expr, ColumnRef):
            column = self._column(expr.name, stats, renames)
            return column.distinct if column is not None else 1024
        if isinstance(expr, BinaryOp):
            operand_distinct = max(
                (self.expr_distinct(child, stats, renames)
                 for child in (expr.left, expr.right)
                 if not isinstance(child, Literal)),
                default=1024,
            )
            if expr.op == "%" and isinstance(expr.right, Literal) and isinstance(
                expr.right.value, (int, float)
            ) and expr.right.value:
                return min(operand_distinct, int(abs(expr.right.value)))
            return operand_distinct
        if isinstance(expr, Literal):
            return 1
        children = [
            self.expr_distinct(child, stats, renames) for child in expr.children()
        ]
        return max(children, default=1024)

    # ------------------------------------------------------------------
    # per-strategy estimation
    # ------------------------------------------------------------------
    def estimate(
        self,
        query: PhysicalQuery,
        database: Database,
        strategy: StrategyChoice,
        resident_bytes: int = 0,
    ) -> CostEstimate:
        """Predict the full cost of executing ``query`` under
        ``strategy``.  ``resident_bytes`` discounts the h2d charge for
        base columns already pooled on the device (pooled placement)."""
        estimate = CostEstimate(strategy=strategy)
        virtual_rows: dict[str, int] = {}
        #: build table id -> (match fraction, payload columns, rows)
        builds: dict[str, tuple[float, int, int]] = {}
        table_budget = 0  # resident hash/aggregation tables
        final = query.final_pipeline
        fact_pipeline_est: PipelineEstimate | None = None
        raw_h2d_bytes = 0  # decoded footprint (device memory, not link)

        for pipeline in query.pipelines:
            pipe = self._estimate_pipeline(
                pipeline, database, strategy, virtual_rows, builds
            )
            estimate.pipelines.append(pipe)
            estimate.global_bytes += pipe.global_bytes
            estimate.onchip_bytes += pipe.onchip_bytes
            estimate.kernel_ms += pipe.kernel_ms
            if not pipeline.source_is_virtual:
                # The link carries wire (possibly compressed) bytes;
                # the decoded columns still occupy raw bytes on device.
                estimate.pcie_h2d_bytes += pipe.wire_bytes
                raw_h2d_bytes += pipe.input_bytes
            if isinstance(pipeline.sink, BuildSink):
                payload = len(pipeline.sink.payload)
                table_budget += pipe.rows_out * (16 + 8 * payload)
            elif isinstance(pipeline.sink, AggregateSink):
                width = 8 * (len(pipeline.sink.group_keys)
                             + len(pipeline.sink.aggregates))
                table_budget += max(pipe.groups, 1) * (8 + width)
            if pipeline is final:
                estimate.pcie_d2h_bytes += pipe.output_bytes
                fact_pipeline_est = pipe
            elif pipeline.output_schema is not None:
                virtual_rows[pipeline.output_name] = pipe.rows_out

        scratch = max(
            (16 * pipe.rows_in for pipe in estimate.pipelines), default=0
        )
        estimate.peak_device_bytes = (
            raw_h2d_bytes + resident_bytes + table_budget + scratch
            + estimate.pcie_d2h_bytes
        )
        if strategy.placement == "pooled":
            estimate.pcie_h2d_bytes = max(
                0, estimate.pcie_h2d_bytes - resident_bytes
            )
        self._apply_macro(estimate, query, strategy, fact_pipeline_est)
        return estimate

    # ------------------------------------------------------------------
    def _estimate_pipeline(
        self, pipeline: Pipeline, database, strategy, virtual_rows, builds
    ) -> PipelineEstimate:
        stats: TableStats | None = None
        renames = pipeline.source_rename
        lazy = self.compression is not None and getattr(
            self.compression, "lazy", False
        )
        column_objs: dict[str, object] = {}
        if pipeline.source_is_virtual:
            rows_in = virtual_rows.get(pipeline.source, 1)
            input_bytes = 8 * rows_in * max(1, len(pipeline.required_columns))
            wire_bytes = input_bytes
        else:
            table = database.table(pipeline.source)
            stats = self.statistics.table_stats(database, pipeline.source)
            rows_in = stats.rows
            seen = set()
            input_bytes = 0
            wire_bytes = 0
            for name in pipeline.required_columns:
                base = renames.get(name, name)
                column = table.column(base)
                column_objs[name] = column
                if base not in seen:
                    seen.add(base)
                    input_bytes += column.nbytes
                    # Per-column compressed wire size (cached on the
                    # column, so the estimator prices the exact
                    # encodings execution will ship).
                    wire_bytes += (
                        self.compression.wire_nbytes(column)
                        if self.compression is not None
                        else column.nbytes
                    )

        #: Single-column predicate conjuncts eligible for a compressed
        #: scan under ``compression="lazy"``: (scope name, conjunct,
        #: estimated selectivity).
        scan_candidates: list[tuple] = []
        selectivity = 1.0
        probe_traffic = 0.0
        map_count = 0
        pred_bytes = 0
        rows = float(rows_in)
        for stage in pipeline.stages:
            if isinstance(stage, FilterStage):
                stage_sel = self.predicate_selectivity(
                    stage.predicate, stats, renames
                )
                selectivity *= stage_sel
                if lazy and column_objs:
                    from ..compression.lazy import flatten_conjuncts

                    for conjunct in flatten_conjuncts(stage.predicate):
                        names = conjunct.columns()
                        if len(names) == 1:
                            cname = next(iter(names))
                            if cname in column_objs:
                                scan_candidates.append((
                                    cname,
                                    conjunct,
                                    self.predicate_selectivity(
                                        conjunct, stats, renames
                                    ),
                                ))
                if stats is not None and not pipeline.source_is_virtual:
                    for name in stage.predicate.columns():
                        base = renames.get(name, name)
                        column = stats.column(base)
                        if column is not None:
                            pred_bytes += 4 * rows_in
                rows = rows_in * selectivity
            elif isinstance(stage, ProbeStage):
                fraction, payload, _build_rows = builds.get(
                    stage.table_id, (1.0, 0, 0)
                )
                # Slot lookups for every surviving probe row; hits also
                # read the entry and fetch the payload columns.
                probe_traffic += rows * (8 + fraction * (16 + 8 * payload))
                if stage.kind == "inner":
                    selectivity *= min(1.0, fraction)
                if stage.residual is not None:
                    selectivity *= self.predicate_selectivity(
                        stage.residual, None, renames
                    )
                rows = rows_in * selectivity
            elif isinstance(stage, MapStage):
                map_count += 1
        rows_out = max(0, int(round(rows_in * selectivity)))

        groups = 0
        sink = pipeline.sink
        if isinstance(sink, AggregateSink):
            if sink.group_keys:
                product = 1
                for _name, expr in sink.group_keys:
                    product *= max(1, self.expr_distinct(expr, stats, renames))
                    product = min(product, max(1, rows_out))
                groups = max(1, product)
            else:
                groups = 1
        output_bytes = self._output_bytes(pipeline, rows_out, groups)
        if isinstance(sink, BuildSink):
            fraction = rows_out / rows_in if rows_in else 0.0
            builds[sink.table_id] = (fraction, len(sink.payload), rows_out)

        pipe = PipelineEstimate(
            name=pipeline.name,
            source=pipeline.source,
            rows_in=rows_in,
            selectivity=selectivity,
            rows_out=rows_out,
            input_bytes=input_bytes,
            wire_bytes=wire_bytes,
            output_bytes=output_bytes,
            groups=groups,
        )
        self._engine_traffic(
            pipe, pipeline, strategy.engine, probe_traffic, pred_bytes,
            map_count,
        )
        if pipe.wire_bytes < pipe.input_bytes:
            if lazy:
                self._price_lazy(
                    pipe, column_objs, scan_candidates, rows_in, rows_out
                )
            else:
                # The link savings are not free: a decompression kernel
                # reads the wire image and writes the raw columns back
                # to global memory before the pipeline proper starts.
                decode = TrafficMeter()
                decode.record_read(_GLOBAL, pipe.wire_bytes)
                decode.record_write(_GLOBAL, pipe.input_bytes)
                decode.record_instructions(2 * rows_in)
                breakdown = self.cost_model.breakdown(decode, kind="decode")
                pipe.kernel_ms += breakdown.total * 1e3
                pipe.global_bytes += pipe.wire_bytes + pipe.input_bytes
                pipe.kernels += 1
        return pipe

    # ------------------------------------------------------------------
    def _price_lazy(
        self,
        pipe: PipelineEstimate,
        column_objs: dict,
        scan_candidates: list,
        rows_in: int,
        rows_out: int,
    ) -> None:
        """Price late materialization (``compression="lazy"``): predicate
        columns are scanned directly on their wire images when cheaper
        than the decode round trip, and the remaining columns gather
        only the selected positions — per-column decisions land in
        ``pipe.scan_notes`` for EXPLAIN."""
        from ..compression.codecs import WIRE_HEADER_BYTES

        policy = self.compression
        meter = TrafficMeter()
        glob = 0
        priced = set()
        for name, column in column_objs.items():
            if id(column) in priced:
                continue
            priced.add(id(column))
            encoded = policy.encoded(column)
            codec = encoded.codec
            if codec == "passthrough":
                continue  # ships raw; nothing to decode
            raw = column.nbytes
            wire = encoded.wire_nbytes
            packed = max(0, wire - WIRE_HEADER_BYTES)
            n = max(1, encoded.length)
            itemsize = max(1, raw // n)
            decode_side = (wire + raw) * policy.decode_factor(codec)
            conjuncts = [
                (conjunct, sel)
                for cname, conjunct, sel in scan_candidates
                if column_objs.get(cname) is column
            ]

            scanned = False
            if conjuncts:
                conjunct, sel = conjuncts[0]
                read, strategy = self._scan_read_estimate(
                    encoded, packed, n, conjunct, sel
                )
                if read < decode_side:
                    meter.record_read(_GLOBAL, int(read))
                    if strategy == "dict-lookup":
                        meter.record_read(_ONCHIP, n)
                    glob += int(read)
                    pipe.scan_notes.append(
                        f"{name}: compressed scan ({strategy}, {codec}) "
                        f"~{read / 1e3:.1f}KB vs decode "
                        f"{decode_side / 1e3:.1f}KB"
                    )
                    scanned = True
                else:
                    pipe.scan_notes.append(
                        f"{name}: decode-then-scan ({codec}; scan "
                        f"~{read / 1e3:.1f}KB not under decode "
                        f"{decode_side / 1e3:.1f}KB)"
                    )
            if scanned:
                continue

            # Downstream (or unprofitable-scan) column: gather only the
            # selected rows unless that would exceed the full decode.
            sel_rows = min(rows_out, n)
            if codec != "delta" and 2 * sel_rows <= n:
                read, write = packed, sel_rows * itemsize
                if not conjuncts:
                    pipe.scan_notes.append(
                        f"{name}: gather-decode {sel_rows} rows ({codec})"
                    )
            else:
                read, write = wire, raw
                if not conjuncts:
                    pipe.scan_notes.append(f"{name}: full decode ({codec})")
            meter.record_read(_GLOBAL, int(read))
            meter.record_write(_GLOBAL, int(write))
            glob += int(read) + int(write)

        if glob:
            meter.record_instructions(2 * rows_in)
            breakdown = self.cost_model.breakdown(meter, kind="decode")
            pipe.kernel_ms += breakdown.total * 1e3
            pipe.global_bytes += int(glob)
            pipe.onchip_bytes += meter.bytes_at(_ONCHIP)
            pipe.kernels += 1

    @staticmethod
    def _scan_read_estimate(encoded, packed, n, conjunct, sel):
        """Modeled GLOBAL read bytes of the compressed-scan strategy
        :func:`repro.compression.lazy.plan_scan` would pick (estimated
        analytically — block survivor counts come from selectivity, not
        from evaluating the predicate)."""
        from ..compression.lazy import (
            BLOCK_META_BYTES,
            LAZY_BLOCK,
            MAX_LUT_DOMAIN,
            interval_analyzer,
        )

        codec = encoded.codec
        if codec == "rle":
            return (
                encoded.parts["values"].nbytes
                + encoded.parts["lengths"].nbytes,
                "rle-runs",
            )
        if codec == "dictionary":
            width = int(encoded.meta.get("width", 0))
            if (1 << width) <= MAX_LUT_DOMAIN:
                return packed, "dict-lookup"
            return packed, "unpack-scan"
        if codec in ("forpack", "cascade") and interval_analyzer(conjunct) is not None:
            blocks = max(1, -(-n // LAZY_BLOCK))
            mixed = min(1.0, 2.0 * min(sel, 1.0 - sel) + 0.05)
            return int(blocks * BLOCK_META_BYTES + packed * mixed), "block-skip"
        return packed, "unpack-scan"

    def _output_bytes(self, pipeline: Pipeline, rows_out: int, groups: int) -> int:
        sink = pipeline.sink
        if isinstance(sink, BuildSink):
            return 0
        schema = pipeline.output_schema or pipeline.scope_schema
        if isinstance(sink, AggregateSink):
            result_rows = min(groups, max(rows_out, 1)) if groups else 1
            width = sum(
                dtype.numpy_dtype.itemsize for dtype in schema.dtypes.values()
            ) or 8 * (len(sink.group_keys) + len(sink.aggregates))
            return result_rows * width
        width = (
            sum(
                schema.dtypes[name].numpy_dtype.itemsize
                for name in sink.outputs
                if name in schema.dtypes
            )
            or 8 * len(sink.outputs)
        )
        return rows_out * width

    # ------------------------------------------------------------------
    # per-engine traffic shapes
    # ------------------------------------------------------------------
    def _engine_traffic(
        self,
        pipe: PipelineEstimate,
        pipeline: Pipeline,
        engine: str,
        probe_traffic: float,
        pred_bytes: int,
        map_count: int,
    ) -> None:
        """Fill ``pipe.global_bytes/onchip_bytes/kernels/kernel_ms``
        with the byte shape of ``engine`` priced through the shared
        kernel cost model."""
        rows_in, rows_out = pipe.rows_in, pipe.rows_out
        sink = pipeline.sink
        is_agg = isinstance(sink, AggregateSink)
        is_build = isinstance(sink, BuildSink)
        groups = max(1, pipe.groups)
        n_aggs = len(sink.aggregates) if is_agg else 0
        payload = len(sink.payload) if is_build else 0
        out_dev = pipe.output_bytes
        build_traffic = 2 * rows_out * (16 + 8 * payload) if is_build else 0
        has_filter = any(
            isinstance(stage, FilterStage) for stage in pipeline.stages
        )

        meter = TrafficMeter()
        kind = "compound"
        if engine in ("pipelined", "resolution", "resolution-simd",
                      "resolution-we"):
            glob = pipe.input_bytes + probe_traffic + build_traffic + out_dev
            kernels = 1
            if is_agg:
                if engine == "pipelined":
                    glob += 1.5 * rows_out * 8 * (1 + n_aggs)
                    meter.record_atomics(AtomicBatch(
                        count=max(1, rows_out),
                        max_chain=min(rows_out, max(4, rows_out // groups)),
                        kind="rmw",
                    ))
                else:
                    # Local-resolution pre-aggregation in scratchpad:
                    # each workgroup owns a private table of `groups`
                    # entries, flushed once at the end.
                    workgroups = max(1, rows_in // 900)
                    entry = 8 * (1 + n_aggs)
                    meter.record_read(
                        _ONCHIP, int(workgroups * groups * entry / 2)
                    )
                    meter.record_write(
                        _ONCHIP, int(workgroups * groups * entry / 2)
                    )
                    meter.record_barrier(workgroups * 128)
                    glob += min(workgroups, 8) * groups * entry / 8
                    flush_count = max(1, workgroups * min(groups, 128))
                    meter.record_atomics(AtomicBatch(
                        count=flush_count,
                        max_chain=min(4, flush_count), kind="rmw",
                    ))
            elif isinstance(sink, MaterializeSink) and rows_out:
                if engine == "pipelined":
                    meter.record_atomics(AtomicBatch(
                        count=rows_out, max_chain=rows_out, kind="fetch_add"
                    ))
                else:
                    workgroups = max(1, rows_in // 900)
                    meter.record_atomics(AtomicBatch(
                        count=workgroups, max_chain=min(4, workgroups),
                        kind="fetch_add",
                    ))
                    meter.record_read(_ONCHIP, 8 * rows_in)
                    meter.record_barrier(workgroups)
            if is_build and rows_out:
                meter.record_atomics(AtomicBatch(
                    count=rows_out, max_chain=min(4, rows_out), kind="rmw"
                ))
        elif engine == "multipass":
            kind = "write"
            flags = 4 * rows_in if has_filter else 0
            count_pass = pipe.input_bytes + flags
            prefix_pass = 16 * rows_in
            write_pass = (
                pipe.input_bytes + flags + 4 * rows_out + out_dev
                + build_traffic + probe_traffic
            )
            glob = count_pass + prefix_pass + write_pass + probe_traffic
            kernels = 5
            if is_agg:
                # Materialize groups, then sort-based aggregation:
                # 4 radix passes + segmented reduce.
                glob += rows_out * (128 + 14) + rows_out * 8 * (1 + n_aggs)
                kernels += 6
        else:  # operator-at-a-time (and anything unknown)
            kind = "scan"
            select_cost = (pred_bytes or pipe.input_bytes // 2) + 4 * rows_in
            prefix_pass = 16 * rows_in
            materialize = pipe.input_bytes + 16 * rows_out
            glob = (
                select_cost + prefix_pass + materialize
                + map_count * 16 * max(rows_out, 1)
                + 3 * probe_traffic + build_traffic + out_dev
            )
            kernels = 5 + map_count + 2 * sum(
                1 for stage in pipeline.stages if isinstance(stage, ProbeStage)
            )
            if is_agg:
                glob += rows_out * (128 + 14)
                kernels += 6
        meter.record_read(_GLOBAL, int(max(0, glob) * 0.6))
        meter.record_write(_GLOBAL, int(max(0, glob) * 0.4))
        meter.record_instructions(4 * rows_in)
        breakdown = self.cost_model.breakdown(meter, kind=kind)
        launch = self.profile.kernel_launch_overhead * max(0, kernels - 1)
        pipe.global_bytes = int(glob)
        pipe.onchip_bytes = meter.bytes_at(_ONCHIP)
        pipe.kernels = kernels
        pipe.kernel_ms = (breakdown.total + launch) * 1e3

    # ------------------------------------------------------------------
    # macro / devices / transfers
    # ------------------------------------------------------------------
    def _transfer_ms(self, h2d_bytes: int, d2h_bytes: int, transfers: int = 2) -> float:
        if self.interconnect is None:
            return 0.0
        seconds = 0.0
        if h2d_bytes:
            seconds += h2d_bytes / (self.interconnect.h2d_bandwidth * 1e9)
        if d2h_bytes:
            seconds += d2h_bytes / (self.interconnect.d2h_bandwidth * 1e9)
        return (seconds + transfers * self.interconnect.latency) * 1e3

    def _apply_macro(
        self,
        estimate: CostEstimate,
        query: PhysicalQuery,
        strategy: StrategyChoice,
        fact: PipelineEstimate | None,
    ) -> None:
        transfers = sum(
            len(set(p.required_columns)) for p in query.pipelines
            if not p.source_is_virtual
        ) + 1
        if strategy.devices > 1:
            self._apply_scaleout(estimate, query, strategy, fact)
            return
        if strategy.macro == "out-of-core":
            if query.final_pipeline.source_is_virtual or fact is None:
                estimate.feasible = False
                estimate.reason = (
                    "out-of-core streaming needs a base-table final pipeline"
                )
                return
            dims_h2d = max(0, estimate.pcie_h2d_bytes - fact.wire_bytes)
            dims_kernel_ms = estimate.kernel_ms - fact.kernel_ms
            stream_transfer_ms = self._transfer_ms(fact.wire_bytes, 0, 0)
            block_bytes = self.stream_block_bytes()
            blocks = max(1, math.ceil(fact.input_bytes / block_bytes))
            stream_ms = (
                max(stream_transfer_ms, fact.kernel_ms)
                + blocks * _BLOCK_OVERHEAD_S * 1e3
            )
            estimate.transfer_ms = self._transfer_ms(
                dims_h2d, estimate.pcie_d2h_bytes, transfers
            )
            estimate.kernel_ms = dims_kernel_ms
            estimate.overhead_ms = stream_ms
            # Streaming never holds the whole fact table on device.
            estimate.peak_device_bytes = (
                estimate.peak_device_bytes - fact.input_bytes
                + 2 * block_bytes
            )
            return
        estimate.transfer_ms = self._transfer_ms(
            estimate.pcie_h2d_bytes, estimate.pcie_d2h_bytes, transfers
        )

    def _apply_scaleout(
        self,
        estimate: CostEstimate,
        query: PhysicalQuery,
        strategy: StrategyChoice,
        fact: PipelineEstimate | None,
    ) -> None:
        devices = strategy.devices
        if query.final_pipeline.source_is_virtual or fact is None:
            estimate.feasible = False
            estimate.reason = (
                "scale-out cannot partition a virtual-table final pipeline"
            )
            return
        pieces = devices * self.morsels_per_device
        dims_h2d = max(0, estimate.pcie_h2d_bytes - fact.wire_bytes)
        dims_kernel_ms = estimate.kernel_ms - fact.kernel_ms
        # Every device pays the broadcast build sides; the fact share
        # and its gather parallelize across per-device links.  Link
        # charges use wire bytes (the scatter ships compressed blocks);
        # device peaks below stay raw.
        per_device_h2d = dims_h2d + fact.wire_bytes / devices
        gather_per_piece = fact.output_bytes
        gather_total = gather_per_piece * pieces
        per_device_d2h = gather_total / devices
        launch_ms = (
            self.profile.kernel_launch_overhead * fact.kernels
            * (pieces - 1) * 1e3
        )
        makespan_ms = (
            dims_kernel_ms
            + fact.kernel_ms / devices
            + launch_ms / devices
            + self._transfer_ms(
                int(per_device_h2d), int(per_device_d2h),
                transfers=2 + self.morsels_per_device,
            )
        )
        estimate.kernel_ms = makespan_ms
        estimate.transfer_ms = 0.0
        estimate.overhead_ms = (
            _MERGE_BASE_MS + _MERGE_PER_PARTIAL_MS * pieces
        )
        estimate.pcie_h2d_bytes = int(dims_h2d * devices + fact.wire_bytes)
        estimate.pcie_d2h_bytes = int(gather_total)
        # Per-device peak: broadcast dims + this device's fact share.
        estimate.peak_device_bytes = int(
            estimate.peak_device_bytes - fact.input_bytes * (1 - 1 / devices)
        )


def streamable_mode(engine: str) -> str:
    """The compound-kernel mode the streaming executor should use for
    ``engine`` (compound aliases map to themselves; pass-based engines
    stream through the default resolution mode)."""
    return STREAMABLE_ENGINES.get(engine, "lrgp_simd")


def raise_if_unstreamable(query: PhysicalQuery) -> None:
    """Mirror of the batch executor's plan checks (see
    :mod:`repro.macro.batch`)."""
    final = query.final_pipeline
    if final.source_is_virtual:
        raise PlanError(
            "batch streaming requires the final pipeline to scan a base table"
        )
