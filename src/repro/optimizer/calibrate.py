"""Online calibration: close the loop between predicted and observed.

After every execution the auto executor reports the advisor's
prediction alongside the measured result (wall time from
:class:`ExecutionResult`, exact PCIe bytes from the traffic profile).
The :class:`Calibrator` maintains one bounded-EWMA correction factor
per ``(device, engine, macro)`` bucket:

    factor <- (1 - alpha) * factor + alpha * clamp(observed / predicted)

Predictions are multiplied by the bucket's factor before ranking, so a
systematic bias in the per-engine byte shapes (say, a device whose real
launch overhead is double the profile's constant) is corrected after a
handful of queries without ever letting one outlier sample (GC pause,
cold cache) swing the model: per-sample ratios are clamped to
``sample_clamp`` and the accumulated factor to ``factor_clamp``.

Byte-level accuracy is tracked separately (predictions of PCIe traffic
vs. the meter's exact accounting) because bytes are deterministic —
their error measures the cardinality model, not host noise — and the
acceptance gate ("median byte error < 5% after 50 queries") reads it
via :meth:`Calibrator.median_byte_error`.
"""

from __future__ import annotations

import statistics
import threading
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class CalibrationSample:
    """One prediction/observation pair."""

    device: str
    engine: str
    macro: str
    predicted_ms: float
    observed_ms: float
    predicted_bytes: int | None = None
    observed_bytes: int | None = None

    @property
    def time_ratio(self) -> float:
        if self.predicted_ms <= 0:
            return 1.0
        return self.observed_ms / self.predicted_ms

    @property
    def byte_error(self) -> float | None:
        if self.predicted_bytes is None or not self.observed_bytes:
            return None
        return abs(self.predicted_bytes - self.observed_bytes) / self.observed_bytes


class Calibrator:
    """Per-(device, engine, macro) bounded-EWMA correction factors."""

    def __init__(
        self,
        alpha: float = 0.3,
        factor_clamp: tuple[float, float] = (0.25, 4.0),
        sample_clamp: tuple[float, float] = (0.1, 10.0),
        history: int = 256,
    ):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if factor_clamp[0] <= 0 or factor_clamp[0] > factor_clamp[1]:
            raise ValueError("factor_clamp must be a positive (low, high) pair")
        self.alpha = alpha
        self.factor_clamp = factor_clamp
        self.sample_clamp = sample_clamp
        self._lock = threading.Lock()
        self._factors: dict[tuple[str, str, str], float] = {}
        self._byte_errors: deque[float] = deque(maxlen=history)
        self._time_errors: deque[float] = deque(maxlen=history)
        #: Per-codec decode throughput (raw bytes / simulated ms), EWMA
        #: over observed decode kernels.  Feeds the compression policy's
        #: scan-vs-decode decision (see ``CompressionPolicy.decode_factor``).
        self._decode_throughput: dict[str, float] = {}
        self.samples = 0

    # ------------------------------------------------------------------
    def _bucket(self, device: str, strategy) -> tuple[str, str, str]:
        return (device, strategy.engine, strategy.macro)

    def factor(self, device: str, strategy) -> float:
        """Multiplier applied to raw predictions for this bucket."""
        with self._lock:
            return self._factors.get(self._bucket(device, strategy), 1.0)

    def observe(
        self,
        device: str,
        strategy,
        predicted_ms: float,
        observed_ms: float,
        predicted_bytes: int | None = None,
        observed_bytes: int | None = None,
    ) -> CalibrationSample:
        """Fold one execution into the bucket's EWMA."""
        sample = CalibrationSample(
            device=device,
            engine=strategy.engine,
            macro=strategy.macro,
            predicted_ms=predicted_ms,
            observed_ms=observed_ms,
            predicted_bytes=predicted_bytes,
            observed_bytes=observed_bytes,
        )
        low, high = self.sample_clamp
        ratio = min(high, max(low, sample.time_ratio))
        floor, ceiling = self.factor_clamp
        key = self._bucket(device, strategy)
        with self._lock:
            current = self._factors.get(key, 1.0)
            updated = (1.0 - self.alpha) * current + self.alpha * ratio
            self._factors[key] = min(ceiling, max(floor, updated))
            if observed_ms > 0 and predicted_ms > 0:
                self._time_errors.append(
                    abs(predicted_ms - observed_ms) / observed_ms
                )
            byte_error = sample.byte_error
            if byte_error is not None:
                self._byte_errors.append(byte_error)
            self.samples += 1
        return sample

    # ------------------------------------------------------------------
    def observe_decode(self, codec: str, raw_bytes: int, sim_ms: float) -> None:
        """Fold one decode kernel's throughput into the codec's EWMA."""
        if raw_bytes <= 0 or sim_ms <= 0:
            return
        rate = raw_bytes / sim_ms
        with self._lock:
            current = self._decode_throughput.get(codec)
            if current is None:
                self._decode_throughput[codec] = rate
            else:
                self._decode_throughput[codec] = (
                    (1.0 - self.alpha) * current + self.alpha * rate
                )

    def decode_throughput(self) -> dict[str, float]:
        """Copy of the per-codec decode-throughput table (bytes/ms)."""
        with self._lock:
            return dict(self._decode_throughput)

    # ------------------------------------------------------------------
    def median_byte_error(self) -> float | None:
        """Median relative PCIe-byte error over the recent window."""
        with self._lock:
            if not self._byte_errors:
                return None
            return statistics.median(self._byte_errors)

    def median_time_error(self) -> float | None:
        with self._lock:
            if not self._time_errors:
                return None
            return statistics.median(self._time_errors)

    def snapshot(self) -> dict[tuple[str, str, str], float]:
        """Copy of the factor table (for metrics / EXPLAIN)."""
        with self._lock:
            return dict(self._factors)

    def reset(self) -> None:
        with self._lock:
            self._factors.clear()
            self._byte_errors.clear()
            self._time_errors.clear()
            self._decode_throughput.clear()
            self.samples = 0
