"""Exception hierarchy for the HorseQC reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DeviceMemoryError(ReproError):
    """Raised when an allocation exceeds the coprocessor's memory capacity.

    The paper's run-to-finish macro execution model is *expected* to fail
    this way once input, output, and intermediates no longer fit in GPU
    global memory (Section 2.1); scalable macro models must avoid it.
    """

    def __init__(self, requested: int, available: int, capacity: int):
        self.requested = requested
        self.available = available
        self.capacity = capacity
        super().__init__(
            f"device allocation of {requested} bytes exceeds free device "
            f"memory ({available} of {capacity} bytes available)"
        )


class AllocationError(ReproError):
    """Raised on invalid buffer lifecycle operations (double free, etc.)."""


class FaultError(ReproError):
    """Base class for *recoverable* device faults.

    Raised either by the fault-injection layer (:mod:`repro.faults`) or
    by a device that was marked lost mid-query.  The scale-out executor
    classifies these (together with :class:`DeviceMemoryError`) as
    recoverable: the failing morsel is retried with backoff and, if the
    device cannot complete it, re-scheduled onto surviving devices.
    """


class DeviceLostError(FaultError):
    """Raised when a device drops out mid-query (injected or real).

    Once a :class:`~repro.hardware.device.VirtualCoprocessor` is marked
    lost, every allocation, transfer, and kernel launch on it raises
    this error; cleanup paths (``free``/``release_transient``) keep
    working so failure paths can still reclaim transient buffers.
    """

    def __init__(self, device: str, detail: str = ""):
        self.device = device
        message = f"device {device} was lost"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class TransferCorruptionError(FaultError):
    """Raised when a gathered partial fails its checksum verification.

    The corrupted partial is discarded and the morsel re-executed; the
    checksum is computed before the (simulated) d2h transfer and
    re-verified after it, so flipped bits on the wire are detected
    deterministically.
    """

    def __init__(self, device: int, morsel: int, expected: int, got: int):
        self.device = device
        self.morsel = morsel
        self.expected = expected
        self.got = got
        super().__init__(
            f"gather of morsel {morsel} from device {device} failed checksum "
            f"verification (expected {expected:#010x}, got {got:#010x})"
        )


class MorselTimeoutError(FaultError):
    """Raised when a morsel's (simulated) execution exceeds the
    configured per-morsel timeout — a straggler promoted to a failure
    so the scheduler can re-run the morsel elsewhere."""

    def __init__(self, device: int, morsel: int, delay_ms: float, timeout_ms: float):
        self.device = device
        self.morsel = morsel
        self.delay_ms = delay_ms
        self.timeout_ms = timeout_ms
        super().__init__(
            f"morsel {morsel} on device {device} exceeded the "
            f"{timeout_ms:g} ms morsel timeout (stalled {delay_ms:g} ms)"
        )


class MorselExhaustedError(ReproError):
    """Raised when one morsel failed on every surviving device.

    This is a *fatal* recovery outcome, not a recoverable fault: retries
    and redistribution were both exhausted, so the query cannot produce
    a complete result.  The message names the morsel so a failing chaos
    run can be replayed.
    """

    def __init__(self, morsel: int, fact_table: str | None, devices: list[int]):
        self.morsel = morsel
        self.fact_table = fact_table
        self.devices = list(devices)
        table = f" of {fact_table!r}" if fact_table else ""
        super().__init__(
            f"morsel {morsel}{table} failed on every surviving device "
            f"({', '.join(str(d) for d in self.devices) or 'none'}); "
            "retries exhausted"
        )


class SchemaError(ReproError):
    """Raised when column names or types are inconsistent with a schema."""


class PlanError(ReproError):
    """Raised for malformed logical plans or unsupported plan shapes."""


class CompilationError(ReproError):
    """Raised when the query compiler cannot generate code for a pipeline."""


class SqlError(ReproError):
    """Raised by the SQL front-end for syntax or binding errors."""


class ExpressionError(ReproError):
    """Raised for ill-typed or unevaluable expressions."""


class WorkloadError(ReproError):
    """Raised by workload generators for invalid parameters."""


class PlacementError(ReproError):
    """Raised by the buffer pool for residency-protocol violations
    (evicting a pinned buffer, mutating a pinned column, ...)."""


class ConfigurationError(ReproError, KeyError):
    """Raised for unknown engine / device / policy names.

    Every lookup-by-name surface (``make_engine``, ``get_profile``,
    ``Session``, ``Server``, the CLI) raises this one type with a
    message listing the valid choices.  Subclasses :class:`KeyError`
    for backward compatibility with callers catching that.
    """

    def __str__(self) -> str:  # avoid KeyError's repr-quoting
        return Exception.__str__(self)


class ServingError(ReproError):
    """Raised by the serving runtime (admission, shutdown, misuse)."""


class AdmissionError(ServingError):
    """Raised when the server's bounded admission queue rejects a query."""
