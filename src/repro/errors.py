"""Exception hierarchy for the HorseQC reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DeviceMemoryError(ReproError):
    """Raised when an allocation exceeds the coprocessor's memory capacity.

    The paper's run-to-finish macro execution model is *expected* to fail
    this way once input, output, and intermediates no longer fit in GPU
    global memory (Section 2.1); scalable macro models must avoid it.
    """

    def __init__(self, requested: int, available: int, capacity: int):
        self.requested = requested
        self.available = available
        self.capacity = capacity
        super().__init__(
            f"device allocation of {requested} bytes exceeds free device "
            f"memory ({available} of {capacity} bytes available)"
        )


class AllocationError(ReproError):
    """Raised on invalid buffer lifecycle operations (double free, etc.)."""


class SchemaError(ReproError):
    """Raised when column names or types are inconsistent with a schema."""


class PlanError(ReproError):
    """Raised for malformed logical plans or unsupported plan shapes."""


class CompilationError(ReproError):
    """Raised when the query compiler cannot generate code for a pipeline."""


class SqlError(ReproError):
    """Raised by the SQL front-end for syntax or binding errors."""


class ExpressionError(ReproError):
    """Raised for ill-typed or unevaluable expressions."""


class WorkloadError(ReproError):
    """Raised by workload generators for invalid parameters."""


class PlacementError(ReproError):
    """Raised by the buffer pool for residency-protocol violations
    (evicting a pinned buffer, mutating a pinned column, ...)."""


class ConfigurationError(ReproError, KeyError):
    """Raised for unknown engine / device / policy names.

    Every lookup-by-name surface (``make_engine``, ``get_profile``,
    ``Session``, ``Server``, the CLI) raises this one type with a
    message listing the valid choices.  Subclasses :class:`KeyError`
    for backward compatibility with callers catching that.
    """

    def __str__(self) -> str:  # avoid KeyError's repr-quoting
        return Exception.__str__(self)


class ServingError(ReproError):
    """Raised by the serving runtime (admission, shutdown, misuse)."""


class AdmissionError(ServingError):
    """Raised when the server's bounded admission queue rejects a query."""
