"""The paper's micro-benchmark queries (Experiments 1, 2, 5, G.1).

* Query 1 (Figure 16): selection + projection over lineorder with a
  selectivity knob ``x`` — ``lo_quantity between 25-x and 25+x``.
* Query 1 + SUM (Appendix G.1): the same with a single-tuple SUM.
* Query 2 / "Query 3" of Experiment 2 (Figure 26): grouped aggregation
  of all lineorder tuples into ``lo_orderkey % x`` groups.
* The star join of SSB Q3.1 (Experiment 5): three dimension hash
  tables probed by the streamed fact table.
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..expressions.expr import col, lit
from ..plan.builder import PlanBuilder
from ..plan.logical import LogicalPlan

#: Selectivity knob domain: x in [0, 25]; selectivity ~= (2x+1)/50.
MAX_X = 25


def projection_query(x: int) -> LogicalPlan:
    """Paper Query 1 (Figure 16): filter + arithmetic projection."""
    if not 0 <= x <= MAX_X:
        raise WorkloadError(f"x must be in [0, {MAX_X}], got {x}")
    return (
        PlanBuilder.scan("lineorder")
        .filter(col("lo_quantity").between(25 - x, 25 + x))
        .project(
            [
                (
                    "revenue",
                    col("lo_extendedprice") * col("lo_discount") + col("lo_tax"),
                )
            ]
        )
        .build()
    )


def selectivity_of(x: int) -> float:
    """Expected selectivity of :func:`projection_query` for quantity
    uniform in 1..50."""
    low = max(1, 25 - x)
    high = min(50, 25 + x)
    return (high - low + 1) / 50.0


def aggregation_query(x: int) -> LogicalPlan:
    """Appendix G.1: Query 1 plus a single-tuple SUM of the projection."""
    if not 0 <= x <= MAX_X:
        raise WorkloadError(f"x must be in [0, {MAX_X}], got {x}")
    return (
        PlanBuilder.scan("lineorder")
        .filter(col("lo_quantity").between(25 - x, 25 + x))
        .map(
            "revenue",
            col("lo_extendedprice") * col("lo_discount") + col("lo_tax"),
        )
        .aggregate(group_by=[], aggregates=[("sum", col("revenue"), "revenue")])
        .build()
    )


def group_by_query(num_groups: int) -> LogicalPlan:
    """Experiment 2 (Figure 26): group all of lineorder into
    ``lo_orderkey % num_groups`` sums."""
    if num_groups < 1:
        raise WorkloadError("num_groups must be >= 1")
    return (
        PlanBuilder.scan("lineorder")
        .aggregate(
            group_by=[("group_key", col("lo_orderkey") % lit(num_groups))],
            aggregates=[("sum", col("lo_extendedprice"), "total")],
        )
        .build()
    )


def star_join_query() -> LogicalPlan:
    """Experiment 5: the star join of SSB Q3.1 (selectivity ~3.4%),
    materializing the joined rows (no grouping — grouping is not
    block-mergeable with AVG-free sums it *would* be, but the paper
    streams the join itself)."""
    customer = PlanBuilder.scan("customer").filter(col("c_region") == lit("ASIA"))
    supplier = PlanBuilder.scan("supplier").filter(col("s_region") == lit("ASIA"))
    date = PlanBuilder.scan("date").filter(
        (col("d_year") >= lit(1992)) & (col("d_year") <= lit(1997))
    )
    return (
        PlanBuilder.scan("lineorder")
        .join(customer, ["c_custkey"], ["lo_custkey"], payload=["c_nation"])
        .join(supplier, ["s_suppkey"], ["lo_suppkey"], payload=["s_nation"])
        .join(date, ["d_datekey"], ["lo_orderdate"], payload=["d_year"])
        .project(["c_nation", "s_nation", "d_year", "lo_revenue"])
        .build()
    )


def star_join_aggregate_query() -> LogicalPlan:
    """Experiment 5 variant with the full Q3.1 grouped aggregation
    (sum is block-mergeable, so it streams too)."""
    customer = PlanBuilder.scan("customer").filter(col("c_region") == lit("ASIA"))
    supplier = PlanBuilder.scan("supplier").filter(col("s_region") == lit("ASIA"))
    date = PlanBuilder.scan("date").filter(
        (col("d_year") >= lit(1992)) & (col("d_year") <= lit(1997))
    )
    return (
        PlanBuilder.scan("lineorder")
        .join(customer, ["c_custkey"], ["lo_custkey"], payload=["c_nation"])
        .join(supplier, ["s_suppkey"], ["lo_suppkey"], payload=["s_nation"])
        .join(date, ["d_datekey"], ["lo_orderdate"], payload=["d_year"])
        .aggregate(
            group_by=["c_nation", "s_nation", "d_year"],
            aggregates=[("sum", col("lo_revenue"), "revenue")],
        )
        .build()
    )
