"""The 13 star schema benchmark queries, as SQL (workflow 1).

These are the standard SSB query texts with dates as integer keys.
The paper could not run Q2.2 ("we do not support range predicates on
dictionary compressed columns yet"); our dictionaries are
order-preserving, so Q2.2 runs too.
"""

from __future__ import annotations

from ...errors import WorkloadError
from ...plan.logical import LogicalPlan
from ...sql.translate import plan_sql
from ...storage.database import Database

SSB_QUERIES: dict[str, str] = {
    "q1.1": """
        select sum(lo_extendedprice * lo_discount) as revenue
        from lineorder, date
        where lo_orderdate = d_datekey
          and d_year = 1993
          and lo_discount between 1 and 3
          and lo_quantity < 25
    """,
    "q1.2": """
        select sum(lo_extendedprice * lo_discount) as revenue
        from lineorder, date
        where lo_orderdate = d_datekey
          and d_yearmonthnum = 199401
          and lo_discount between 4 and 6
          and lo_quantity between 26 and 35
    """,
    "q1.3": """
        select sum(lo_extendedprice * lo_discount) as revenue
        from lineorder, date
        where lo_orderdate = d_datekey
          and d_weeknuminyear = 6 and d_year = 1994
          and lo_discount between 5 and 7
          and lo_quantity between 26 and 35
    """,
    "q2.1": """
        select sum(lo_revenue) as revenue, d_year, p_brand1
        from lineorder, date, part, supplier
        where lo_orderdate = d_datekey
          and lo_partkey = p_partkey
          and lo_suppkey = s_suppkey
          and p_category = 'MFGR#12'
          and s_region = 'AMERICA'
        group by d_year, p_brand1
        order by d_year, p_brand1
    """,
    "q2.2": """
        select sum(lo_revenue) as revenue, d_year, p_brand1
        from lineorder, date, part, supplier
        where lo_orderdate = d_datekey
          and lo_partkey = p_partkey
          and lo_suppkey = s_suppkey
          and p_brand1 between 'MFGR#2221' and 'MFGR#2228'
          and s_region = 'ASIA'
        group by d_year, p_brand1
        order by d_year, p_brand1
    """,
    "q2.3": """
        select sum(lo_revenue) as revenue, d_year, p_brand1
        from lineorder, date, part, supplier
        where lo_orderdate = d_datekey
          and lo_partkey = p_partkey
          and lo_suppkey = s_suppkey
          and p_brand1 = 'MFGR#2239'
          and s_region = 'EUROPE'
        group by d_year, p_brand1
        order by d_year, p_brand1
    """,
    "q3.1": """
        select c_nation, s_nation, d_year, sum(lo_revenue) as revenue
        from customer, lineorder, supplier, date
        where lo_custkey = c_custkey
          and lo_suppkey = s_suppkey
          and lo_orderdate = d_datekey
          and c_region = 'ASIA' and s_region = 'ASIA'
          and d_year >= 1992 and d_year <= 1997
        group by c_nation, s_nation, d_year
        order by d_year asc, revenue desc
    """,
    "q3.2": """
        select c_city, s_city, d_year, sum(lo_revenue) as revenue
        from customer, lineorder, supplier, date
        where lo_custkey = c_custkey
          and lo_suppkey = s_suppkey
          and lo_orderdate = d_datekey
          and c_nation = 'UNITED STATES' and s_nation = 'UNITED STATES'
          and d_year >= 1992 and d_year <= 1997
        group by c_city, s_city, d_year
        order by d_year asc, revenue desc
    """,
    "q3.3": """
        select c_city, s_city, d_year, sum(lo_revenue) as revenue
        from customer, lineorder, supplier, date
        where lo_custkey = c_custkey
          and lo_suppkey = s_suppkey
          and lo_orderdate = d_datekey
          and (c_city = 'UNITED KI1' or c_city = 'UNITED KI5')
          and (s_city = 'UNITED KI1' or s_city = 'UNITED KI5')
          and d_year >= 1992 and d_year <= 1997
        group by c_city, s_city, d_year
        order by d_year asc, revenue desc
    """,
    "q3.4": """
        select c_city, s_city, d_year, sum(lo_revenue) as revenue
        from customer, lineorder, supplier, date
        where lo_custkey = c_custkey
          and lo_suppkey = s_suppkey
          and lo_orderdate = d_datekey
          and (c_city = 'UNITED KI1' or c_city = 'UNITED KI5')
          and (s_city = 'UNITED KI1' or s_city = 'UNITED KI5')
          and d_yearmonth = 'Dec1997'
        group by c_city, s_city, d_year
        order by d_year asc, revenue desc
    """,
    "q4.1": """
        select d_year, c_nation, sum(lo_revenue - lo_supplycost) as profit
        from date, customer, supplier, part, lineorder
        where lo_custkey = c_custkey
          and lo_suppkey = s_suppkey
          and lo_partkey = p_partkey
          and lo_orderdate = d_datekey
          and c_region = 'AMERICA'
          and s_region = 'AMERICA'
          and p_mfgr in ('MFGR#1', 'MFGR#2')
        group by d_year, c_nation
        order by d_year, c_nation
    """,
    "q4.2": """
        select d_year, s_nation, p_category, sum(lo_revenue - lo_supplycost) as profit
        from date, customer, supplier, part, lineorder
        where lo_custkey = c_custkey
          and lo_suppkey = s_suppkey
          and lo_partkey = p_partkey
          and lo_orderdate = d_datekey
          and c_region = 'AMERICA'
          and s_region = 'AMERICA'
          and (d_year = 1997 or d_year = 1998)
          and p_mfgr in ('MFGR#1', 'MFGR#2')
        group by d_year, s_nation, p_category
        order by d_year, s_nation, p_category
    """,
    "q4.3": """
        select d_year, s_city, p_brand1, sum(lo_revenue - lo_supplycost) as profit
        from date, customer, supplier, part, lineorder
        where lo_custkey = c_custkey
          and lo_suppkey = s_suppkey
          and lo_partkey = p_partkey
          and lo_orderdate = d_datekey
          and c_region = 'AMERICA'
          and s_nation = 'UNITED STATES'
          and (d_year = 1997 or d_year = 1998)
          and p_category = 'MFGR#14'
        group by d_year, s_city, p_brand1
        order by d_year, s_city, p_brand1
    """,
}

#: The twelve queries the paper executes (it skips Q2.2); we include
#: Q2.2 in the full set but keep the paper's roster for Experiment 3.
PAPER_SSB_SET = (
    "q1.1", "q1.2", "q1.3", "q2.1", "q2.3", "q3.1",
    "q3.2", "q3.3", "q3.4", "q4.1", "q4.2", "q4.3",
)

ALL_SSB_SET = tuple(SSB_QUERIES)


def ssb_query_sql(name: str) -> str:
    """The SQL text of one SSB query (e.g. ``"q3.1"``)."""
    try:
        return SSB_QUERIES[name]
    except KeyError:
        known = ", ".join(SSB_QUERIES)
        raise WorkloadError(f"unknown SSB query {name!r}; known: {known}") from None


def ssb_plan(name: str, database: Database) -> LogicalPlan:
    """Parse and plan one SSB query against a database."""
    return plan_sql(ssb_query_sql(name), database)
