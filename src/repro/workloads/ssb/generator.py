"""Synthetic star schema benchmark data generator.

Schema- and distribution-faithful to the SSB spec (uniform keys, the
spec's value domains, the 1992-1998 date dimension), scaled linearly by
``scale_factor``.  The paper ran SF 10 on physical GPUs; the simulated
experiments default to much smaller SFs — every reported volume scales
linearly, so shapes are preserved (see DESIGN.md).
"""

from __future__ import annotations

import calendar

import numpy as np

from ...errors import WorkloadError
from ...storage.column import Column
from ...storage.database import Database
from ...storage.dictionary import Dictionary
from ...storage.table import Table
from . import schema


def generate_ssb(scale_factor: float = 0.01, seed: int = 7, skew: float = 0.0) -> Database:
    """Generate an SSB database at the given scale factor.

    ``skew`` > 0 draws the fact table's foreign keys from a Zipf-like
    distribution (exponent ``1 + skew``) instead of uniformly — the
    "frequent items" regime the paper's Section 6.1 points at for
    grouping algorithms.  0 (the default) is the uniform SSB spec.
    """
    if scale_factor <= 0:
        raise WorkloadError("scale_factor must be positive")
    if skew < 0:
        raise WorkloadError("skew must be non-negative")
    rng = np.random.default_rng(seed)
    date = _date_dim()
    customer = _customer_dim(scale_factor, rng)
    supplier = _supplier_dim(scale_factor, rng)
    part = _part_dim(scale_factor, rng)
    lineorder = _lineorder_fact(scale_factor, rng, date, customer, supplier, part, skew)
    return Database(
        {
            "lineorder": lineorder,
            "customer": customer,
            "supplier": supplier,
            "part": part,
            "date": date,
        }
    )


# ----------------------------------------------------------------------
def _date_dim() -> Table:
    datekeys: list[int] = []
    years: list[int] = []
    yearmonthnums: list[int] = []
    yearmonths: list[str] = []
    weeknums: list[int] = []
    for year in range(schema.FIRST_YEAR, schema.LAST_YEAR + 1):
        day_of_year = 0
        for month in range(1, 13):
            days = calendar.monthrange(year, month)[1]
            for day in range(1, days + 1):
                day_of_year += 1
                datekeys.append(year * 10000 + month * 100 + day)
                years.append(year)
                yearmonthnums.append(year * 100 + month)
                yearmonths.append(f"{schema.MONTH_NAMES[month - 1]}{year}")
                weeknums.append((day_of_year - 1) // 7 + 1)
    return Table(
        {
            "d_datekey": Column.date(datekeys),
            "d_year": Column.int32(years),
            "d_yearmonthnum": Column.int32(yearmonthnums),
            "d_yearmonth": Column.from_strings(yearmonths),
            "d_weeknuminyear": Column.int32(weeknums),
        }
    )


def _encode(values: list[str], choices: np.ndarray) -> Column:
    """Encode ``values[choices]`` efficiently with a shared dictionary."""
    dictionary = Dictionary(values)
    lookup = np.array([dictionary.code(value) for value in values], dtype=np.int32)
    return Column.from_codes(lookup[choices], dictionary)


def _customer_dim(scale_factor: float, rng: np.random.Generator) -> Table:
    count = max(int(schema.CUSTOMER_PER_SF * scale_factor), 50)
    city_idx = rng.integers(0, len(schema.CITIES), count)
    cities = list(schema.CITIES)
    nations = [schema.CITY_NATION[city] for city in cities]
    regions = [schema.REGION_OF_NATION[nation] for nation in nations]
    return Table(
        {
            "c_custkey": Column.int32(np.arange(1, count + 1)),
            "c_city": _encode(cities, city_idx),
            "c_nation": _encode(nations, city_idx),
            "c_region": _encode(regions, city_idx),
        }
    )


def _supplier_dim(scale_factor: float, rng: np.random.Generator) -> Table:
    count = max(int(schema.SUPPLIER_PER_SF * scale_factor), 25)
    city_idx = rng.integers(0, len(schema.CITIES), count)
    cities = list(schema.CITIES)
    nations = [schema.CITY_NATION[city] for city in cities]
    regions = [schema.REGION_OF_NATION[nation] for nation in nations]
    return Table(
        {
            "s_suppkey": Column.int32(np.arange(1, count + 1)),
            "s_city": _encode(cities, city_idx),
            "s_nation": _encode(nations, city_idx),
            "s_region": _encode(regions, city_idx),
        }
    )


def _part_dim(scale_factor: float, rng: np.random.Generator) -> Table:
    count = max(int(schema.PART_PER_SF * scale_factor), 200)
    brand_idx = rng.integers(0, len(schema.BRANDS), count)
    brands = list(schema.BRANDS)
    categories = [brand[:7] for brand in brands]
    mfgrs = [brand[:6] for brand in brands]
    return Table(
        {
            "p_partkey": Column.int32(np.arange(1, count + 1)),
            "p_mfgr": _encode(mfgrs, brand_idx),
            "p_category": _encode(categories, brand_idx),
            "p_brand1": _encode(brands, brand_idx),
        }
    )


def _foreign_keys(
    rng: np.random.Generator, count: int, domain: int, skew: float
) -> np.ndarray:
    """Foreign keys in 1..domain, uniform or Zipf-skewed."""
    if skew <= 0:
        return rng.integers(1, domain + 1, count).astype(np.int32)
    drawn = rng.zipf(1.0 + skew, count)
    return ((drawn - 1) % domain + 1).astype(np.int32)


def _lineorder_fact(
    scale_factor: float,
    rng: np.random.Generator,
    date: Table,
    customer: Table,
    supplier: Table,
    part: Table,
    skew: float = 0.0,
) -> Table:
    count = max(int(schema.LINEORDER_PER_SF * scale_factor), 1000)
    datekeys = date["d_datekey"].values
    quantity = rng.integers(1, 51, count).astype(np.int32)
    discount = rng.integers(0, 11, count).astype(np.int32)
    extendedprice = rng.integers(90_000, 200_001, count).astype(np.int32) // 100
    revenue = (extendedprice * (100 - discount) // 100).astype(np.int32)
    supplycost = (extendedprice * 6 // 10).astype(np.int32)
    return Table(
        {
            "lo_orderkey": Column.int32(np.arange(1, count + 1) // 4 + 1),
            "lo_custkey": Column.int32(
                _foreign_keys(rng, count, customer.num_rows, skew)
            ),
            "lo_partkey": Column.int32(_foreign_keys(rng, count, part.num_rows, skew)),
            "lo_suppkey": Column.int32(
                _foreign_keys(rng, count, supplier.num_rows, skew)
            ),
            "lo_orderdate": Column.date(rng.choice(datekeys, count)),
            "lo_quantity": Column.int32(quantity),
            "lo_extendedprice": Column.int32(extendedprice),
            "lo_discount": Column.int32(discount),
            "lo_revenue": Column.int32(revenue),
            "lo_supplycost": Column.int32(supplycost),
            "lo_tax": Column.int32(rng.integers(0, 9, count)),
        }
    )
