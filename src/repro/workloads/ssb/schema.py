"""Star schema benchmark dimension domains (O'Neil et al.)."""

from __future__ import annotations

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

#: Five nations per region, 25 total (the SSB domain).
NATIONS_BY_REGION = {
    "AFRICA": ("ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"),
    "AMERICA": ("ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"),
    "ASIA": ("CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"),
    "EUROPE": ("FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"),
    "MIDDLE EAST": ("EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"),
}

NATIONS = tuple(
    nation for region in REGIONS for nation in NATIONS_BY_REGION[region]
)

REGION_OF_NATION = {
    nation: region
    for region, nations in NATIONS_BY_REGION.items()
    for nation in nations
}

#: Ten cities per nation, named like the SSB spec ("UNITED KI1"): the
#: first 9 characters of the nation padded, plus a digit.
CITIES = tuple(
    f"{nation:<9.9s}{digit}" for nation in NATIONS for digit in range(10)
)

CITY_NATION = {city: NATIONS[index // 10] for index, city in enumerate(CITIES)}

#: Part hierarchy: 5 manufacturers, 5 categories each, 40 brands each.
MFGRS = tuple(f"MFGR#{i}" for i in range(1, 6))
CATEGORIES = tuple(f"MFGR#{i}{j}" for i in range(1, 6) for j in range(1, 6))
BRANDS = tuple(f"{category}{brand:02d}" for category in CATEGORIES for brand in range(1, 41))

MONTH_NAMES = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)

#: The SSB date dimension covers 1992-01-01 .. 1998-12-31.
FIRST_YEAR = 1992
LAST_YEAR = 1998

#: Base table cardinalities at scale factor 1.
LINEORDER_PER_SF = 6_000_000
CUSTOMER_PER_SF = 30_000
SUPPLIER_PER_SF = 2_000
PART_PER_SF = 200_000
