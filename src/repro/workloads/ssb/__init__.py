"""Star schema benchmark: generator and queries."""

from .generator import generate_ssb
from .queries import ALL_SSB_SET, PAPER_SSB_SET, SSB_QUERIES, ssb_plan, ssb_query_sql

__all__ = [
    "ALL_SSB_SET",
    "PAPER_SSB_SET",
    "SSB_QUERIES",
    "generate_ssb",
    "ssb_plan",
    "ssb_query_sql",
]
