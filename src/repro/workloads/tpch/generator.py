"""Synthetic TPC-H data generator.

Schema-faithful for the sixteen queries this reproduction evaluates
(columns that only appear in ``LIKE`` predicates the paper removed —
``p_name``, ``o_comment``, textual comments — are omitted; the paper's
Appendix F modifications replace those predicates anyway).

Dates are stored as int32 ``yyyymmdd`` keys; generation happens on day
ordinals so that ship/commit/receipt offsets are calendar-correct.
"""

from __future__ import annotations

import datetime

import numpy as np

from ...errors import WorkloadError
from ...storage.column import Column
from ...storage.database import Database
from ...storage.dictionary import Dictionary
from ...storage.table import Table
from . import schema


def generate_tpch(scale_factor: float = 0.002, seed: int = 11) -> Database:
    """Generate a TPC-H database at the given scale factor."""
    if scale_factor <= 0:
        raise WorkloadError("scale_factor must be positive")
    rng = np.random.default_rng(seed)
    calendar = _Calendar()
    region = _region_dim()
    nation = _nation_dim()
    supplier = _supplier_dim(scale_factor, rng)
    customer = _customer_dim(scale_factor, rng)
    part = _part_dim(scale_factor, rng)
    partsupp = _partsupp_dim(part.num_rows, supplier.num_rows, rng)
    orders, lineitem = _orders_and_lineitem(
        scale_factor, rng, calendar, customer.num_rows, part.num_rows, supplier.num_rows
    )
    return Database(
        {
            "region": region,
            "nation": nation,
            "supplier": supplier,
            "customer": customer,
            "part": part,
            "partsupp": partsupp,
            "orders": orders,
            "lineitem": lineitem,
        }
    )


class _Calendar:
    """Maps day ordinals to int32 yyyymmdd keys for 1992-1999."""

    def __init__(self) -> None:
        start = datetime.date(1992, 1, 1)
        end = datetime.date(1999, 12, 31)
        days = (end - start).days + 1
        self.start_ordinal = start.toordinal()
        keys = np.empty(days, dtype=np.int32)
        for offset in range(days):
            day = datetime.date.fromordinal(self.start_ordinal + offset)
            keys[offset] = day.year * 10000 + day.month * 100 + day.day
        self.keys = keys

    def to_keys(self, offsets: np.ndarray) -> np.ndarray:
        return self.keys[offsets]

    def offset_of(self, year: int, month: int, day: int) -> int:
        return datetime.date(year, month, day).toordinal() - self.start_ordinal


def _dictionary_column(values: tuple[str, ...], choices: np.ndarray) -> Column:
    dictionary = Dictionary(list(values))
    lookup = np.array([dictionary.code(value) for value in values], dtype=np.int32)
    return Column.from_codes(lookup[choices], dictionary)


def _region_dim() -> Table:
    return Table(
        {
            "r_regionkey": Column.int32(np.arange(len(schema.REGIONS))),
            "r_name": Column.from_strings(list(schema.REGIONS)),
        }
    )


def _nation_dim() -> Table:
    names = [name for name, _ in schema.NATIONS]
    regionkeys = [regionkey for _, regionkey in schema.NATIONS]
    return Table(
        {
            "n_nationkey": Column.int32(np.arange(len(schema.NATIONS))),
            "n_name": Column.from_strings(names),
            "n_regionkey": Column.int32(regionkeys),
        }
    )


def _supplier_dim(scale_factor: float, rng: np.random.Generator) -> Table:
    count = max(int(schema.SUPPLIER_PER_SF * scale_factor), 10)
    names = [f"Supplier#{key:09d}" for key in range(1, count + 1)]
    return Table(
        {
            "s_suppkey": Column.int32(np.arange(1, count + 1)),
            "s_name": Column.from_strings(names),
            "s_nationkey": Column.int32(rng.integers(0, 25, count)),
            "s_acctbal": Column.float32(rng.uniform(-999.99, 9999.99, count)),
        }
    )


def _customer_dim(scale_factor: float, rng: np.random.Generator) -> Table:
    count = max(int(schema.CUSTOMER_PER_SF * scale_factor), 50)
    names = [f"Customer#{key:09d}" for key in range(1, count + 1)]
    return Table(
        {
            "c_custkey": Column.int32(np.arange(1, count + 1)),
            "c_name": Column.from_strings(names),
            "c_nationkey": Column.int32(rng.integers(0, 25, count)),
            "c_mktsegment": _dictionary_column(
                schema.MKT_SEGMENTS, rng.integers(0, len(schema.MKT_SEGMENTS), count)
            ),
            "c_acctbal": Column.float32(rng.uniform(-999.99, 9999.99, count)),
        }
    )


def _part_dim(scale_factor: float, rng: np.random.Generator) -> Table:
    count = max(int(schema.PART_PER_SF * scale_factor), 100)
    mfgrs = tuple(f"Manufacturer#{i}" for i in range(1, 6))
    return Table(
        {
            "p_partkey": Column.int32(np.arange(1, count + 1)),
            "p_mfgr": _dictionary_column(mfgrs, rng.integers(0, len(mfgrs), count)),
            "p_brand": _dictionary_column(
                schema.BRANDS, rng.integers(0, len(schema.BRANDS), count)
            ),
            "p_type": _dictionary_column(
                schema.TYPES, rng.integers(0, len(schema.TYPES), count)
            ),
            "p_size": Column.int32(rng.integers(1, 51, count)),
            "p_container": _dictionary_column(
                schema.CONTAINERS, rng.integers(0, len(schema.CONTAINERS), count)
            ),
            "p_retailprice": Column.float32(rng.uniform(900.0, 2000.0, count)),
        }
    )


def _partsupp_dim(parts: int, suppliers: int, rng: np.random.Generator) -> Table:
    """Four suppliers per part, TPC-H style (distinct per part)."""
    per_part = min(schema.SUPPLIERS_PER_PART, suppliers)
    partkeys = np.repeat(np.arange(1, parts + 1), per_part).astype(np.int32)
    offsets = np.tile(np.arange(per_part), parts)
    suppkeys = ((partkeys - 1 + offsets * (suppliers // per_part + 1)) % suppliers + 1).astype(np.int32)
    count = len(partkeys)
    return Table(
        {
            "ps_partkey": Column.int32(partkeys),
            "ps_suppkey": Column.int32(suppkeys),
            "ps_availqty": Column.int32(rng.integers(1, 10_000, count)),
            "ps_supplycost": Column.float32(rng.uniform(1.0, 1000.0, count)),
        }
    )


def _orders_and_lineitem(
    scale_factor: float,
    rng: np.random.Generator,
    calendar: _Calendar,
    customers: int,
    parts: int,
    suppliers: int,
) -> tuple[Table, Table]:
    norders = max(int(schema.ORDERS_PER_SF * scale_factor), 250)
    first = calendar.offset_of(*schema.FIRST_ORDER_DATE)
    last = calendar.offset_of(*schema.LAST_ORDER_DATE)
    order_day = rng.integers(first, last + 1, norders)
    orderkeys = np.arange(1, norders + 1, dtype=np.int32)

    lines_per_order = rng.integers(1, schema.LINES_PER_ORDER_MAX + 1, norders)
    nlines = int(lines_per_order.sum())
    l_orderkey = np.repeat(orderkeys, lines_per_order)
    l_order_day = np.repeat(order_day, lines_per_order)

    ship_day = l_order_day + rng.integers(1, 122, nlines)
    commit_day = l_order_day + rng.integers(30, 91, nlines)
    receipt_day = ship_day + rng.integers(1, 31, nlines)
    limit = len(calendar.keys) - 1
    ship_day = np.minimum(ship_day, limit)
    commit_day = np.minimum(commit_day, limit)
    receipt_day = np.minimum(receipt_day, limit)

    quantity = rng.integers(1, 51, nlines).astype(np.int32)
    extendedprice = (quantity * rng.uniform(900.0, 2000.0, nlines)).astype(np.float32)
    discount = (rng.integers(0, 11, nlines) / 100.0).astype(np.float32)
    tax = (rng.integers(0, 9, nlines) / 100.0).astype(np.float32)

    # Return flags per the spec rule: receipts up to 1995-06-17 are
    # returned (R) or accepted (A); later ones are N.
    cutoff = calendar.offset_of(1995, 6, 17)
    old = receipt_day <= cutoff
    # RETURN_FLAGS is sorted ("A", "N", "R"): old receipts are returned
    # (R, code 2) or accepted (A, code 0); newer ones are N (code 1).
    flag_codes = np.where(old, rng.integers(0, 2, nlines) * 2, 1).astype(np.int64)
    returnflag = _dictionary_column(schema.RETURN_FLAGS, flag_codes)
    linestatus = _dictionary_column(
        schema.LINE_STATUS, (ship_day <= calendar.offset_of(1995, 6, 17)).astype(np.int64) ^ 1
    )

    lineitem = Table(
        {
            "l_orderkey": Column.int32(l_orderkey),
            "l_partkey": Column.int32(rng.integers(1, parts + 1, nlines)),
            "l_suppkey": Column.int32(rng.integers(1, suppliers + 1, nlines)),
            "l_quantity": Column.int32(quantity),
            "l_extendedprice": Column.float32(extendedprice),
            "l_discount": Column.float32(discount),
            "l_tax": Column.float32(tax),
            "l_returnflag": returnflag,
            "l_linestatus": linestatus,
            "l_shipdate": Column.date(calendar.to_keys(ship_day)),
            "l_commitdate": Column.date(calendar.to_keys(commit_day)),
            "l_receiptdate": Column.date(calendar.to_keys(receipt_day)),
            "l_shipmode": _dictionary_column(
                schema.SHIP_MODES, rng.integers(0, len(schema.SHIP_MODES), nlines)
            ),
            "l_shipinstruct": _dictionary_column(
                schema.SHIP_INSTRUCTS, rng.integers(0, len(schema.SHIP_INSTRUCTS), nlines)
            ),
        }
    )

    # o_totalprice aggregated from the order's lines.
    totals = np.zeros(norders, dtype=np.float64)
    np.add.at(totals, l_orderkey - 1, extendedprice.astype(np.float64))
    orders = Table(
        {
            "o_orderkey": Column.int32(orderkeys),
            "o_custkey": Column.int32(rng.integers(1, customers + 1, norders)),
            "o_orderstatus": _dictionary_column(
                schema.ORDER_STATUS,
                rng.choice(len(schema.ORDER_STATUS), norders, p=(0.49, 0.49, 0.02)),
            ),
            "o_totalprice": Column.float32(totals),
            "o_orderdate": Column.date(calendar.to_keys(order_day)),
            "o_orderpriority": _dictionary_column(
                schema.ORDER_PRIORITIES,
                rng.integers(0, len(schema.ORDER_PRIORITIES), norders),
            ),
            "o_shippriority": Column.int32(np.zeros(norders)),
        }
    )
    return orders, lineitem
