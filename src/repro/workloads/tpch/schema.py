"""TPC-H value domains."""

from __future__ import annotations

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

#: (nation, region index), in TPC-H nationkey order.
NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)

MKT_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")

ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")

ORDER_STATUS = ("F", "O", "P")

SHIP_MODES = ("AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK")

SHIP_INSTRUCTS = ("COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN")

RETURN_FLAGS = ("A", "N", "R")

LINE_STATUS = ("F", "O")

#: p_container: 5 size qualifiers x 8 container kinds = 40 values.
CONTAINER_SIZES = ("JUMBO", "LG", "MED", "SM", "WRAP")
CONTAINER_KINDS = ("BAG", "BOX", "CAN", "CASE", "DRUM", "JAR", "PACK", "PKG")
CONTAINERS = tuple(
    f"{size} {kind}" for size in CONTAINER_SIZES for kind in CONTAINER_KINDS
)

#: p_brand: Brand#MN for M, N in 1..5 (25 values).
BRANDS = tuple(f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6))

#: p_type: 6 x 5 x 5 = 150 values.
TYPE_SYLLABLE1 = ("ECONOMY", "LARGE", "MEDIUM", "PROMO", "SMALL", "STANDARD")
TYPE_SYLLABLE2 = ("ANODIZED", "BRUSHED", "BURNISHED", "PLATED", "POLISHED")
TYPE_SYLLABLE3 = ("BRASS", "COPPER", "NICKEL", "STEEL", "TIN")
TYPES = tuple(
    f"{a} {b} {c}"
    for a in TYPE_SYLLABLE1
    for b in TYPE_SYLLABLE2
    for c in TYPE_SYLLABLE3
)

#: Base table cardinalities at scale factor 1.
ORDERS_PER_SF = 1_500_000
CUSTOMER_PER_SF = 150_000
PART_PER_SF = 200_000
SUPPLIER_PER_SF = 10_000
SUPPLIERS_PER_PART = 4
LINES_PER_ORDER_MAX = 7

#: Order dates span 1992-01-01 .. 1998-08-02 (the TPC-H window).
FIRST_ORDER_DATE = (1992, 1, 1)
LAST_ORDER_DATE = (1998, 8, 2)
