"""TPC-H query plans for the sixteen queries the paper evaluates.

Workflow split, as in Section 7 of the paper:

* Q1 and Q6 go through the SQL front-end (workflow 1);
* every other query is expressed directly as a logical plan
  (workflow 2 — the paper used JSON plan files for these because its
  SQL front-end could not unnest them).

Appendix F modifications are applied faithfully:

* **Q9**: ``p_name like '%green%'`` is replaced by a filter on the
  primary key ``p_partkey`` (we use ``p_partkey % 18 == 1``, matching
  the ~1/17 selectivity of 'green' among the 92 color words);
* **Q13**: the ``o_comment not like ...`` filter is removed;
* **Q17**: manually unnested (per-part AVG as an aggregate pipeline);
* **Q21**: ``NOT EXISTS`` replaced by ``EXISTS`` (no anti joins in the
  paper's prototype).  Both EXISTS subqueries are unnested into
  per-order min/max supplier summaries: "exists another supplier"
  holds iff min != s or max != s.
* **Q2** (pass analysis only): ``p_type like '%BRASS'`` is expressed
  exactly as an IN list over the 30 BRASS types; **Q20**'s
  ``p_name like 'forest%'`` becomes a primary-key filter of similar
  selectivity (p_name is a LIKE-only column and is not generated).

Correlated subqueries are unnested into aggregate pipelines joined
back on their correlation keys — the standard rewrite the paper's JSON
plans encode by hand.
"""

from __future__ import annotations

from ...errors import WorkloadError
from ...expressions.expr import col, lit
from ...plan.builder import PlanBuilder
from ...plan.logical import LogicalPlan
from ...sql.translate import plan_sql
from ...storage.database import Database

PB = PlanBuilder

Q1_SQL = """
    select l_returnflag, l_linestatus,
           sum(l_quantity) as sum_qty,
           sum(l_extendedprice) as sum_base_price,
           sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
           sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
           avg(l_quantity) as avg_qty,
           avg(l_extendedprice) as avg_price,
           avg(l_discount) as avg_disc,
           count(*) as count_order
    from lineitem
    where l_shipdate <= 19980902
    group by l_returnflag, l_linestatus
    order by l_returnflag, l_linestatus
"""

# Float literals carry a small epsilon so that float32 storage of
# 0.05/0.07 (not exactly representable) keeps spec selectivity.
Q6_SQL = """
    select sum(l_extendedprice * l_discount) as revenue
    from lineitem
    where l_shipdate >= 19940101 and l_shipdate < 19950101
      and l_discount between 0.0499 and 0.0701
      and l_quantity < 24
"""


def q1(database: Database) -> LogicalPlan:
    """Pricing summary report (workflow 1: SQL)."""
    return plan_sql(Q1_SQL, database)


def q6(database: Database) -> LogicalPlan:
    """Forecasting revenue change (workflow 1: SQL)."""
    return plan_sql(Q6_SQL, database)


def q2(database: Database) -> LogicalPlan:
    """Minimum cost supplier (unnested; LIKE '%BRASS' -> type equality)."""
    region_eu = PB.scan("region").filter(col("r_name") == lit("EUROPE"))
    nation_eu = PB.scan("nation").join(
        region_eu, ["r_regionkey"], ["n_regionkey"], kind="semi"
    )
    supplier_eu = PB.scan("supplier").join(
        nation_eu, ["n_nationkey"], ["s_nationkey"], payload=["n_name"]
    )
    min_cost = (
        PB.scan("partsupp")
        .join(supplier_eu, ["s_suppkey"], ["ps_suppkey"], kind="semi")
        .aggregate(
            group_by=["ps_partkey"],
            aggregates=[("min", col("ps_supplycost"), "min_cost")],
        )
    )
    # LIKE '%BRASS' matches exactly the 30 types whose third syllable
    # is BRASS — expressible exactly as an IN list.
    brass_types = [
        f"{a} {b} BRASS"
        for a in ("ECONOMY", "LARGE", "MEDIUM", "PROMO", "SMALL", "STANDARD")
        for b in ("ANODIZED", "BRUSHED", "BURNISHED", "PLATED", "POLISHED")
    ]
    part_brass = PB.scan("part").filter(
        (col("p_size") == lit(15)) & col("p_type").isin(brass_types)
    )
    return (
        PB.scan("partsupp")
        .join(part_brass, ["p_partkey"], ["ps_partkey"], payload=["p_mfgr"])
        .join(
            supplier_eu,
            ["s_suppkey"],
            ["ps_suppkey"],
            payload=["s_name", "s_acctbal", "n_name"],
        )
        .join(
            min_cost,
            ["ps_partkey", "min_cost"],
            ["ps_partkey", "ps_supplycost"],
            kind="semi",
        )
        .project(["s_acctbal", "s_name", "n_name", "ps_partkey", "p_mfgr"])
        .order_by([("s_acctbal", False), "n_name", "s_name", "ps_partkey"])
        .limit(100)
        .build()
    )


def q3(database: Database) -> LogicalPlan:
    """Shipping priority."""
    building = PB.scan("customer").filter(col("c_mktsegment") == lit("BUILDING"))
    open_orders = (
        PB.scan("orders")
        .filter(col("o_orderdate") < lit(19950315))
        .join(building, ["c_custkey"], ["o_custkey"], kind="semi")
    )
    return (
        PB.scan("lineitem")
        .filter(col("l_shipdate") > lit(19950315))
        .join(
            open_orders,
            ["o_orderkey"],
            ["l_orderkey"],
            payload=["o_orderdate", "o_shippriority"],
        )
        .map("volume", col("l_extendedprice") * (lit(1.0) - col("l_discount")))
        .aggregate(
            group_by=["l_orderkey", "o_orderdate", "o_shippriority"],
            aggregates=[("sum", col("volume"), "revenue")],
        )
        .project(["l_orderkey", "revenue", "o_orderdate", "o_shippriority"])
        .order_by([("revenue", False), "o_orderdate"])
        .limit(10)
        .build()
    )


def q4(database: Database) -> LogicalPlan:
    """Order priority checking (EXISTS unnested into a semi join)."""
    late_lines = (
        PB.scan("lineitem")
        .filter(col("l_commitdate") < col("l_receiptdate"))
        .distinct(["l_orderkey"])
    )
    return (
        PB.scan("orders")
        .filter((col("o_orderdate") >= lit(19930701)) & (col("o_orderdate") < lit(19931001)))
        .join(late_lines, ["l_orderkey"], ["o_orderkey"], kind="semi")
        .aggregate(
            group_by=["o_orderpriority"],
            aggregates=[("count", None, "order_count")],
        )
        .order_by(["o_orderpriority"])
        .build()
    )


def q5(database: Database) -> LogicalPlan:
    """Local supplier volume."""
    region_asia = PB.scan("region").filter(col("r_name") == lit("ASIA"))
    nation_asia = PB.scan("nation").join(
        region_asia, ["r_regionkey"], ["n_regionkey"], kind="semi"
    )
    supplier_asia = PB.scan("supplier").join(
        nation_asia, ["n_nationkey"], ["s_nationkey"], payload=["n_name"]
    )
    customer_asia = PB.scan("customer").join(
        nation_asia, ["n_nationkey"], ["c_nationkey"], kind="semi"
    )
    orders94 = (
        PB.scan("orders")
        .filter((col("o_orderdate") >= lit(19940101)) & (col("o_orderdate") < lit(19950101)))
        .join(customer_asia, ["c_custkey"], ["o_custkey"], payload=["c_nationkey"])
    )
    return (
        PB.scan("lineitem")
        .join(
            supplier_asia,
            ["s_suppkey"],
            ["l_suppkey"],
            payload=["s_nationkey", "n_name"],
        )
        .join(orders94, ["o_orderkey"], ["l_orderkey"], payload=["c_nationkey"])
        .filter(col("c_nationkey") == col("s_nationkey"))
        .map("volume", col("l_extendedprice") * (lit(1.0) - col("l_discount")))
        .aggregate(group_by=["n_name"], aggregates=[("sum", col("volume"), "revenue")])
        .order_by([("revenue", False)])
        .build()
    )


def q7(database: Database) -> LogicalPlan:
    """Volume shipping between FRANCE and GERMANY (two nation roles)."""
    nations = ("FRANCE", "GERMANY")
    supp_nation = PB.scan(
        "nation", rename={"n_name": "supp_nation", "n_nationkey": "n1_nationkey"}
    ).filter(col("supp_nation").isin(nations))
    cust_nation = PB.scan(
        "nation", rename={"n_name": "cust_nation", "n_nationkey": "n2_nationkey"}
    ).filter(col("cust_nation").isin(nations))
    supplier = PB.scan("supplier").join(
        supp_nation, ["n1_nationkey"], ["s_nationkey"], payload=["supp_nation"]
    )
    customer = PB.scan("customer").join(
        cust_nation, ["n2_nationkey"], ["c_nationkey"], payload=["cust_nation"]
    )
    orders = PB.scan("orders").join(
        customer, ["c_custkey"], ["o_custkey"], payload=["cust_nation"]
    )
    return (
        PB.scan("lineitem")
        .filter(col("l_shipdate").between(19950101, 19961231))
        .join(supplier, ["s_suppkey"], ["l_suppkey"], payload=["supp_nation"])
        .join(orders, ["o_orderkey"], ["l_orderkey"], payload=["cust_nation"])
        .filter(
            ((col("supp_nation") == lit("FRANCE")) & (col("cust_nation") == lit("GERMANY")))
            | ((col("supp_nation") == lit("GERMANY")) & (col("cust_nation") == lit("FRANCE")))
        )
        .map("l_year", col("l_shipdate") // lit(10000))
        .map("volume", col("l_extendedprice") * (lit(1.0) - col("l_discount")))
        .aggregate(
            group_by=["supp_nation", "cust_nation", "l_year"],
            aggregates=[("sum", col("volume"), "revenue")],
        )
        .order_by(["supp_nation", "cust_nation", "l_year"])
        .build()
    )


def q9(database: Database) -> LogicalPlan:
    """Product type profit (LIKE '%green%' -> primary-key filter,
    per the paper's Appendix F)."""
    green_parts = PB.scan("part").filter(col("p_partkey") % lit(18) == lit(1))
    supplier = PB.scan("supplier").join(
        PB.scan("nation"), ["n_nationkey"], ["s_nationkey"], payload=["n_name"]
    )
    orders = PB.scan("orders").map("o_year", col("o_orderdate") // lit(10000))
    return (
        PB.scan("lineitem")
        .join(green_parts, ["p_partkey"], ["l_partkey"], kind="semi")
        .join(supplier, ["s_suppkey"], ["l_suppkey"], payload=["n_name"])
        .join(
            PB.scan("partsupp"),
            ["ps_partkey", "ps_suppkey"],
            ["l_partkey", "l_suppkey"],
            payload=["ps_supplycost"],
        )
        .join(orders, ["o_orderkey"], ["l_orderkey"], payload=["o_year"])
        .map(
            "amount",
            col("l_extendedprice") * (lit(1.0) - col("l_discount"))
            - col("ps_supplycost") * col("l_quantity"),
        )
        .aggregate(
            group_by=["n_name", "o_year"],
            aggregates=[("sum", col("amount"), "sum_profit")],
        )
        .order_by(["n_name", ("o_year", False)])
        .build()
    )


def q10(database: Database) -> LogicalPlan:
    """Returned item reporting."""
    customer = PB.scan("customer").join(
        PB.scan("nation"), ["n_nationkey"], ["c_nationkey"], payload=["n_name"]
    )
    orders = (
        PB.scan("orders")
        .filter((col("o_orderdate") >= lit(19931001)) & (col("o_orderdate") < lit(19940101)))
        .join(
            customer,
            ["c_custkey"],
            ["o_custkey"],
            payload=["c_name", "c_acctbal", "n_name"],
        )
    )
    return (
        PB.scan("lineitem")
        .filter(col("l_returnflag") == lit("R"))
        .join(
            orders,
            ["o_orderkey"],
            ["l_orderkey"],
            payload=["o_custkey", "c_name", "c_acctbal", "n_name"],
        )
        .map("volume", col("l_extendedprice") * (lit(1.0) - col("l_discount")))
        .aggregate(
            group_by=["o_custkey", "c_name", "c_acctbal", "n_name"],
            aggregates=[("sum", col("volume"), "revenue")],
        )
        .project(["o_custkey", "c_name", "revenue", "c_acctbal", "n_name"])
        .order_by([("revenue", False)])
        .limit(20)
        .build()
    )


def q13(database: Database) -> LogicalPlan:
    """Customer distribution (comment LIKE removed, per Appendix F)."""
    per_customer = PB.scan("orders").aggregate(
        group_by=["o_custkey"], aggregates=[("count", None, "c_count")]
    )
    return (
        PB.scan("customer")
        .join(
            per_customer,
            ["o_custkey"],
            ["c_custkey"],
            payload=["c_count"],
            kind="left",
            payload_defaults={"c_count": 0},
        )
        .aggregate(group_by=["c_count"], aggregates=[("count", None, "custdist")])
        .order_by([("custdist", False), ("c_count", False)])
        .build()
    )


def q15(database: Database) -> LogicalPlan:
    """Top supplier (the revenue view + its MAX, joined on equality)."""
    revenue = (
        PB.scan("lineitem")
        .filter((col("l_shipdate") >= lit(19960101)) & (col("l_shipdate") < lit(19960401)))
        .map("volume", col("l_extendedprice") * (lit(1.0) - col("l_discount")))
        .aggregate(
            group_by=["l_suppkey"],
            aggregates=[("sum", col("volume"), "total_revenue")],
        )
    )
    max_revenue = revenue.aggregate(
        group_by=[], aggregates=[("max", col("total_revenue"), "max_revenue")]
    )
    return (
        revenue.join(max_revenue, ["max_revenue"], ["total_revenue"], kind="semi")
        .join(PB.scan("supplier"), ["s_suppkey"], ["l_suppkey"], payload=["s_name"])
        .project(["l_suppkey", "s_name", "total_revenue"])
        .order_by(["l_suppkey"])
        .build()
    )


def q17(database: Database) -> LogicalPlan:
    """Small-quantity-order revenue (manually unnested, Appendix F)."""
    target_parts = PB.scan("part").filter(
        (col("p_brand") == lit("Brand#23")) & (col("p_container") == lit("MED BOX"))
    )
    avg_quantity = PB.scan("lineitem").aggregate(
        group_by=[("part_key", col("l_partkey"))],
        aggregates=[("avg", col("l_quantity"), "avg_qty")],
    )
    return (
        PB.scan("lineitem")
        .join(target_parts, ["p_partkey"], ["l_partkey"], kind="semi")
        .join(avg_quantity, ["part_key"], ["l_partkey"], payload=["avg_qty"])
        .filter(col("l_quantity") < lit(0.2) * col("avg_qty"))
        .aggregate(group_by=[], aggregates=[("sum", col("l_extendedprice"), "total")])
        .project([("avg_yearly", col("total") / lit(7.0))])
        .build()
    )


def q18(database: Database) -> LogicalPlan:
    """Large volume customers."""
    big_orders = (
        PB.scan("lineitem")
        .aggregate(
            group_by=[("order_key", col("l_orderkey"))],
            aggregates=[("sum", col("l_quantity"), "qty_sum")],
        )
        .filter(col("qty_sum") > lit(300))
    )
    return (
        PB.scan("lineitem")
        .join(big_orders, ["order_key"], ["l_orderkey"], kind="semi")
        .join(
            PB.scan("orders"),
            ["o_orderkey"],
            ["l_orderkey"],
            payload=["o_custkey", "o_orderdate", "o_totalprice"],
        )
        .join(PB.scan("customer"), ["c_custkey"], ["o_custkey"], payload=["c_name"])
        .aggregate(
            group_by=["c_name", "o_custkey", "l_orderkey", "o_orderdate", "o_totalprice"],
            aggregates=[("sum", col("l_quantity"), "sum_qty")],
        )
        .order_by([("o_totalprice", False), "o_orderdate"])
        .limit(100)
        .build()
    )


def q19(database: Database) -> LogicalPlan:
    """Discounted revenue (the three-bracket OR over part+line attrs)."""
    brackets = (
        (
            (col("p_brand") == lit("Brand#12"))
            & col("p_container").isin(["SM CASE", "SM BOX", "SM PACK", "SM PKG"])
            & col("l_quantity").between(1, 11)
            & col("p_size").between(1, 5)
        )
        | (
            (col("p_brand") == lit("Brand#23"))
            & col("p_container").isin(["MED BAG", "MED BOX", "MED PKG", "MED PACK"])
            & col("l_quantity").between(10, 20)
            & col("p_size").between(1, 10)
        )
        | (
            (col("p_brand") == lit("Brand#34"))
            & col("p_container").isin(["LG CASE", "LG BOX", "LG PACK", "LG PKG"])
            & col("l_quantity").between(20, 30)
            & col("p_size").between(1, 15)
        )
    )
    return (
        PB.scan("lineitem")
        .filter(
            col("l_shipmode").isin(["AIR", "REG AIR"])
            & (col("l_shipinstruct") == lit("DELIVER IN PERSON"))
        )
        .join(
            PB.scan("part"),
            ["p_partkey"],
            ["l_partkey"],
            payload=["p_brand", "p_container", "p_size"],
        )
        .filter(brackets)
        .map("volume", col("l_extendedprice") * (lit(1.0) - col("l_discount")))
        .aggregate(group_by=[], aggregates=[("sum", col("volume"), "revenue")])
        .build()
    )


def q20(database: Database) -> LogicalPlan:
    """Potential part promotion (LIKE 'forest%' -> primary-key filter)."""
    forest_parts = PB.scan("part").filter(col("p_partkey") % lit(10) == lit(3))
    shipped94 = (
        PB.scan("lineitem")
        .filter((col("l_shipdate") >= lit(19940101)) & (col("l_shipdate") < lit(19950101)))
        .aggregate(
            group_by=[("part_key", col("l_partkey")), ("supp_key", col("l_suppkey"))],
            aggregates=[("sum", col("l_quantity"), "qty_sum")],
        )
    )
    excess_suppliers = (
        PB.scan("partsupp")
        .join(forest_parts, ["p_partkey"], ["ps_partkey"], kind="semi")
        .join(
            shipped94,
            ["part_key", "supp_key"],
            ["ps_partkey", "ps_suppkey"],
            payload=["qty_sum"],
        )
        .filter(col("ps_availqty") > lit(0.5) * col("qty_sum"))
        .distinct(["ps_suppkey"])
    )
    canada = PB.scan("nation").filter(col("n_name") == lit("CANADA"))
    return (
        PB.scan("supplier")
        .join(canada, ["n_nationkey"], ["s_nationkey"], kind="semi")
        .join(excess_suppliers, ["ps_suppkey"], ["s_suppkey"], kind="semi")
        .project(["s_name"])
        .order_by(["s_name"])
        .build()
    )


def q21(database: Database) -> LogicalPlan:
    """Suppliers who kept orders waiting (paper-modified: both
    subqueries are EXISTS).  ``exists l2 with l2.suppkey <> s`` is
    unnested as per-order min/max supplier summaries: another supplier
    exists iff min != s or max != s."""
    saudi = PB.scan("nation").filter(col("n_name") == lit("SAUDI ARABIA"))
    supplier_sa = PB.scan("supplier").join(
        saudi, ["n_nationkey"], ["s_nationkey"], payload=["n_name"]
    )
    failed_orders = PB.scan("orders").filter(col("o_orderstatus") == lit("F"))
    all_suppliers = PB.scan("lineitem").aggregate(
        group_by=[("order_key", col("l_orderkey"))],
        aggregates=[
            ("min", col("l_suppkey"), "any_min"),
            ("max", col("l_suppkey"), "any_max"),
        ],
    )
    late_suppliers = (
        PB.scan("lineitem")
        .filter(col("l_receiptdate") > col("l_commitdate"))
        .aggregate(
            group_by=[("order_key", col("l_orderkey"))],
            aggregates=[
                ("min", col("l_suppkey"), "late_min"),
                ("max", col("l_suppkey"), "late_max"),
            ],
        )
    )
    return (
        PB.scan("lineitem")
        .filter(col("l_receiptdate") > col("l_commitdate"))
        .join(supplier_sa, ["s_suppkey"], ["l_suppkey"], payload=["s_name"])
        .join(failed_orders, ["o_orderkey"], ["l_orderkey"], kind="semi")
        .join(all_suppliers, ["order_key"], ["l_orderkey"], payload=["any_min", "any_max"])
        .join(late_suppliers, ["order_key"], ["l_orderkey"], payload=["late_min", "late_max"])
        .filter(
            ((col("any_min") != col("l_suppkey")) | (col("any_max") != col("l_suppkey")))
            & ((col("late_min") != col("l_suppkey")) | (col("late_max") != col("l_suppkey")))
        )
        .aggregate(group_by=["s_name"], aggregates=[("count", None, "numwait")])
        .order_by([("numwait", False), "s_name"])
        .limit(100)
        .build()
    )


TPCH_PLANS = {
    "q1": q1,
    "q2": q2,
    "q3": q3,
    "q4": q4,
    "q5": q5,
    "q6": q6,
    "q7": q7,
    "q9": q9,
    "q10": q10,
    "q13": q13,
    "q15": q15,
    "q17": q17,
    "q18": q18,
    "q19": q19,
    "q20": q20,
    "q21": q21,
}

#: Figure 20 / Figure 22's query roster.
PAPER_TPCH_SET = ("q1", "q4", "q5", "q6", "q7", "q9", "q13", "q17", "q18", "q19", "q21")

#: Table 1's pass-analysis roster (intersection with implemented set).
TABLE1_TPCH_SET = (
    "q1", "q2", "q3", "q4", "q5", "q6", "q7", "q9", "q10", "q15", "q18", "q20",
)


def tpch_plan(name: str, database: Database) -> LogicalPlan:
    """Build the plan for one TPC-H query (e.g. ``"q6"``)."""
    try:
        factory = TPCH_PLANS[name]
    except KeyError:
        known = ", ".join(TPCH_PLANS)
        raise WorkloadError(f"unknown TPC-H query {name!r}; known: {known}") from None
    return factory(database)
