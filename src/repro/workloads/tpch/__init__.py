"""TPC-H workload: generator and the paper's sixteen query plans."""

from .generator import generate_tpch
from .queries import (
    PAPER_TPCH_SET,
    TABLE1_TPCH_SET,
    TPCH_PLANS,
    Q1_SQL,
    Q6_SQL,
    tpch_plan,
)

__all__ = [
    "PAPER_TPCH_SET",
    "Q1_SQL",
    "Q6_SQL",
    "TABLE1_TPCH_SET",
    "TPCH_PLANS",
    "generate_tpch",
    "tpch_plan",
]
