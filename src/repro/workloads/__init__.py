"""Workloads: SSB, TPC-H, and the paper's micro-benchmarks."""

from .microbench import (
    aggregation_query,
    group_by_query,
    projection_query,
    selectivity_of,
    star_join_aggregate_query,
    star_join_query,
)
from .ssb import (
    ALL_SSB_SET,
    PAPER_SSB_SET,
    SSB_QUERIES,
    generate_ssb,
    ssb_plan,
    ssb_query_sql,
)
from .tpch import (
    PAPER_TPCH_SET,
    TABLE1_TPCH_SET,
    TPCH_PLANS,
    generate_tpch,
    tpch_plan,
)

__all__ = [
    "ALL_SSB_SET",
    "PAPER_SSB_SET",
    "PAPER_TPCH_SET",
    "SSB_QUERIES",
    "TABLE1_TPCH_SET",
    "TPCH_PLANS",
    "aggregation_query",
    "generate_ssb",
    "generate_tpch",
    "group_by_query",
    "projection_query",
    "selectivity_of",
    "ssb_plan",
    "ssb_query_sql",
    "star_join_aggregate_query",
    "star_join_query",
    "tpch_plan",
]
