"""Shared helpers for data-parallel primitive simulation."""

from __future__ import annotations

import math

import numpy as np

#: Default Collaborative Thread Array size (Section 6.1): matches a
#: typical workgroup / thread-block of 256 threads.
DEFAULT_CTA_SIZE = 256


def num_blocks(n: int, block: int) -> int:
    """Number of CTA blocks needed to cover ``n`` elements."""
    if block <= 0:
        raise ValueError("block size must be positive")
    return max(0, -(-n // block))


def log2_ceil(value: int) -> int:
    if value <= 1:
        return 0
    return int(math.ceil(math.log2(value)))


def cta_ids(n: int, cta_size: int) -> np.ndarray:
    """CTA index of each of ``n`` consecutive elements."""
    return np.arange(n, dtype=np.int64) // cta_size


def exclusive_cumsum(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum (first element 0)."""
    out = np.zeros(len(values), dtype=np.int64)
    if len(values) > 1:
        np.cumsum(values[:-1], out=out[1:])
    return out


def segment_exclusive_cumsum(values: np.ndarray, segment_size: int) -> np.ndarray:
    """Exclusive prefix sum restarted at every segment boundary.

    This is the "local offset" of local resolution (Figure 14): each CTA
    scans its own slice independently.
    """
    n = len(values)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    running = exclusive_cumsum(values)
    starts = (np.arange(n, dtype=np.int64) // segment_size) * segment_size
    return running - running[starts]


def segment_totals(values: np.ndarray, segment_size: int) -> np.ndarray:
    """Per-CTA totals (the ``cta_total`` of Figure 14)."""
    n = len(values)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    blocks = num_blocks(n, segment_size)
    boundaries = np.arange(blocks, dtype=np.int64) * segment_size
    return np.add.reduceat(values.astype(np.int64), boundaries)


def semi_ordered_permutation(count: int, rng: np.random.Generator) -> np.ndarray:
    """A permutation with locality, mimicking the GPU stream engine.

    The paper observes that CTA completion order is undefined but
    exhibits locality, producing *semi-ordered* output (Section 6.1).
    We model this as identity plus bounded local displacement.
    """
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    window = max(1, count // 16)
    keys = np.arange(count, dtype=np.float64)
    keys += rng.uniform(0.0, window, size=count)
    return np.argsort(keys, kind="stable").astype(np.int64)
