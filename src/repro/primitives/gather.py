"""Gather/scatter traffic accounting.

Gathers (fetching payload columns through an index vector) are the
dominant kernels in operator-at-a-time plans — in Figure 5 they move
2.2 GB for SSB Q3.1 alone.  These helpers centralize the byte math so
every engine charges them identically.
"""

from __future__ import annotations

from ..hardware.traffic import MemoryLevel, TrafficMeter

#: Index vectors (tuple identifiers / write positions) are 4-byte ints
#: on the device, matching CoGaDB's positionlists.
INDEX_BYTES = 4

#: DRAM transaction size: the paper's dram_read/write_transactions
#: counters are 32-byte transactions (Appendix A).  A random 4-byte
#: access still moves a whole transaction.
TRANSACTION_BYTES = 32


def random_access_volume(
    count: int, itemsize: int, source_bytes: int, l2_capacity: int | None
) -> int:
    """DRAM bytes moved by ``count`` random accesses into a structure
    of ``source_bytes`` total size.

    Structures that fit in L2 are served from cache after the first
    touch (no amplification); larger ones pay one full transaction per
    access.  This is what makes positionlist gathers the dominant
    volume of operator-at-a-time plans (Figure 5's 2.2 GB gather).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if l2_capacity is None or source_bytes <= l2_capacity:
        return count * itemsize
    return count * max(itemsize, TRANSACTION_BYTES)


def account_gather(
    meter: TrafficMeter, count: int, itemsize: int, read_indices: bool = True
) -> None:
    """Charge a gather of ``count`` elements of ``itemsize`` bytes.

    Reads the index vector and the (randomly accessed) source values,
    writes the densely packed destination.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if read_indices:
        meter.record_read(MemoryLevel.GLOBAL, count * INDEX_BYTES)
    meter.record_read(MemoryLevel.GLOBAL, count * itemsize)
    meter.record_write(MemoryLevel.GLOBAL, count * itemsize)
    meter.record_instructions(count)


def account_scatter(
    meter: TrafficMeter, count: int, itemsize: int, read_indices: bool = True
) -> None:
    """Charge a scatter: dense reads, random writes via an index vector."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if read_indices:
        meter.record_read(MemoryLevel.GLOBAL, count * INDEX_BYTES)
    meter.record_read(MemoryLevel.GLOBAL, count * itemsize)
    meter.record_write(MemoryLevel.GLOBAL, count * itemsize)
    meter.record_instructions(count)


def account_stream(
    meter: TrafficMeter, count: int, read_bytes: int, write_bytes: int, ops_per_element: int = 1
) -> None:
    """Charge a streaming map kernel: sequential reads/writes + ALU work."""
    if count < 0:
        raise ValueError("count must be non-negative")
    meter.record_read(MemoryLevel.GLOBAL, count * read_bytes)
    meter.record_write(MemoryLevel.GLOBAL, count * write_bytes)
    meter.record_instructions(count * ops_per_element)
