"""Device sort and segmented-reduce primitives (for C1 and ORDER BY).

The operator-at-a-time engine implements grouped aggregation the
state-of-the-art way (Section 5.1): sort the input by key, then reduce
the sorted segments.  Experiment 2 shows its cost is dominated by the
sort, independent of the group count — this module reproduces that by
charging a multi-pass radix sort.
"""

from __future__ import annotations

import numpy as np

from ..hardware.device import VirtualCoprocessor
from ..hardware.traffic import MemoryLevel

#: Radix sort digit width in bits (8-bit digits, the common choice).
_RADIX_BITS = 8
_INDEX_BYTES = 4


def _radix_passes(keys: np.ndarray) -> int:
    """Number of radix passes: a library sort (boost::compute) processes
    the full key width, so the cost is independent of the observed value
    range — which is why operator-at-a-time grouped aggregation is flat
    in the group count (Experiment 2)."""
    if len(keys) == 0:
        return 1
    fits32 = int(keys.max()) < 2**31 and int(keys.min()) >= -(2**31)
    bits = 32 if fits32 else 64
    return bits // _RADIX_BITS


def device_radix_sort(
    device: VirtualCoprocessor,
    keys: np.ndarray,
    payload_bytes: int = 0,
    label: str = "sort",
) -> np.ndarray:
    """Sort ``keys`` on the device; returns the sorting permutation.

    Simulates an LSD radix sort over (key, row-index) pairs: each pass
    streams the key and index arrays through GPU global memory twice
    (scatter included).  ``payload_bytes`` adds per-element payload that
    is carried along (0 when payloads are gathered afterwards).
    """
    keys = np.asarray(keys)
    n = len(keys)
    passes = _radix_passes(keys)
    element = keys.dtype.itemsize + _INDEX_BYTES + payload_bytes
    for rank in range(passes):
        meter = device.new_meter()
        meter.record_read(MemoryLevel.GLOBAL, n * element)
        meter.record_write(MemoryLevel.GLOBAL, n * element)
        meter.record_read(MemoryLevel.ONCHIP, n * 4)
        meter.record_write(MemoryLevel.ONCHIP, n * 4)
        meter.record_instructions(3 * n)
        device.launch(f"{label}.radix_pass{rank}", "sort", n, meter)
    return np.argsort(keys, kind="stable").astype(np.int64)


def device_segmented_reduce(
    device: VirtualCoprocessor,
    sorted_codes: np.ndarray,
    value_bytes_per_row: int,
    num_groups: int,
    label: str = "reduce_segments",
) -> None:
    """Account the segment-boundary detection + reduction kernels (C1).

    Operates on data already sorted by group code: one kernel flags
    segment heads, one reduces each segment.  Only accounting — the
    caller computes the actual aggregates with
    :func:`repro.primitives.segmented.grouped_reduce`.
    """
    n = len(sorted_codes)
    code_bytes = n * 4

    meter = device.new_meter()
    meter.record_read(MemoryLevel.GLOBAL, 2 * code_bytes)
    meter.record_write(MemoryLevel.GLOBAL, n)  # head flags (1 byte)
    meter.record_instructions(n)
    device.launch(f"{label}.head_flags", "reduce", n, meter)

    meter = device.new_meter()
    meter.record_read(MemoryLevel.GLOBAL, n * value_bytes_per_row + n)
    meter.record_write(MemoryLevel.GLOBAL, num_groups * value_bytes_per_row)
    meter.record_read(MemoryLevel.ONCHIP, n * value_bytes_per_row)
    meter.record_write(MemoryLevel.ONCHIP, n * value_bytes_per_row)
    meter.record_instructions(2 * n)
    device.launch(f"{label}.segment_reduce", "reduce", n, meter)
