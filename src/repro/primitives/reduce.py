"""Single-tuple aggregation primitives: techniques B1, B2, B3 (Table 4).

A single-tuple aggregation (``SUM(...)`` without ``GROUP BY``) reduces
all qualifying elements to one value.  The three implementations mirror
the prefix-sum family:

* **B1 — multi-pass reduce** (pipeline breaker): hierarchical two-kernel
  tree reduction over materialized input.
* **B2 — atomic reduce** (pipelined): one atomic read-modify-write per
  qualifying element on a single global accumulator.
* **B3 — local resolution reduce** (pipelined): on-chip pre-reduction
  per thread group, then one atomic per group (Appendix G.1).
"""

from __future__ import annotations

import numpy as np

from ..errors import ExpressionError
from ..hardware.device import VirtualCoprocessor
from ..hardware.profiles import DeviceProfile
from ..hardware.traffic import AtomicBatch, MemoryLevel, TrafficMeter
from .common import DEFAULT_CTA_SIZE, log2_ceil, num_blocks

_AGG_FUNCTIONS = {
    "sum": np.sum,
    "min": np.min,
    "max": np.max,
}

#: Identity elements, used when the qualifying set is empty.
_IDENTITY = {"sum": 0, "count": 0, "min": None, "max": None}


def reduce_reference(values: np.ndarray, op: str):
    """Ground-truth reduction used by tests and by all simulations."""
    if op == "count":
        return int(len(values))
    if op not in _AGG_FUNCTIONS:
        raise ExpressionError(f"unknown aggregate {op!r}")
    if len(values) == 0:
        return _IDENTITY[op]
    return _AGG_FUNCTIONS[op](values)


# ----------------------------------------------------------------------
# B1 — multi-pass hierarchical reduction
# ----------------------------------------------------------------------
def device_reduce(
    device: VirtualCoprocessor,
    values: np.ndarray,
    op: str = "sum",
    cta_size: int = DEFAULT_CTA_SIZE,
    label: str = "reduce",
):
    """Two-kernel tree reduction over device-resident data (B1)."""
    values = np.asarray(values)
    n = len(values)
    item = values.dtype.itemsize
    blocks = num_blocks(n, cta_size)

    meter = device.new_meter()
    meter.record_read(MemoryLevel.GLOBAL, n * item)
    meter.record_write(MemoryLevel.GLOBAL, blocks * item)
    meter.record_read(MemoryLevel.ONCHIP, n * item)
    meter.record_write(MemoryLevel.ONCHIP, n * item)
    meter.record_instructions(n)
    meter.record_barrier(blocks * log2_ceil(cta_size))
    device.launch(f"{label}.block_reduce", "reduce", n, meter)

    meter = device.new_meter()
    meter.record_read(MemoryLevel.GLOBAL, blocks * item)
    meter.record_write(MemoryLevel.GLOBAL, item)
    meter.record_instructions(blocks)
    device.launch(f"{label}.final_reduce", "reduce", blocks, meter)

    return reduce_reference(values, op)


# ----------------------------------------------------------------------
# B2 — atomic reduce (inside a compound kernel)
# ----------------------------------------------------------------------
def atomic_reduce(meter: TrafficMeter, values: np.ndarray, op: str = "sum"):
    """One atomic RMW per qualifying element on a global accumulator.

    Unlike the atomic prefix sum, the returned value is not consumed by
    later pipeline work, which relaxes the dependency; the hardware can
    stream-aggregate these.  We still charge the full conflict chain —
    the paper attributes the Kepler/Maxwell difference in Appendix G.1
    to exactly this pressure.
    """
    values = np.asarray(values)
    count = len(values)
    meter.record_atomics(AtomicBatch(count=count, max_chain=count, kind="add"))
    meter.record_instructions(count)
    return reduce_reference(values, op)


# ----------------------------------------------------------------------
# B3 — local resolution, global propagation reduce
# ----------------------------------------------------------------------
def lrgp_reduce(
    meter: TrafficMeter,
    values: np.ndarray,
    profile: DeviceProfile,
    op: str = "sum",
    mechanism: str = "simd",
    cta_size: int = DEFAULT_CTA_SIZE,
):
    """On-chip pre-reduction, then one atomic per thread group (B3)."""
    values = np.asarray(values)
    n = len(values)
    item = max(values.dtype.itemsize, 4)
    if mechanism == "work_efficient":
        group = cta_size
        steps = log2_ceil(group)
        meter.record_barrier(num_blocks(n, group) * steps)
    elif mechanism == "simd":
        group = profile.simd_width
        steps = log2_ceil(group)
    else:
        raise ValueError(f"unknown local resolution mechanism {mechanism!r}")

    groups = num_blocks(n, group)
    meter.record_read(MemoryLevel.ONCHIP, steps * n * item)
    meter.record_write(MemoryLevel.ONCHIP, steps * n * item)
    meter.record_instructions((steps + 1) * n)
    meter.record_atomics(AtomicBatch(count=groups, max_chain=groups, kind="add"))
    return reduce_reference(values, op)
