"""Open-addressing join hash tables with simulated atomic inserts.

State-of-the-art GPU joins build a hash table over the (smaller) build
side in GPU global memory and probe it from the pipeline (Karnagel et
al., cited in Section 6).  Inserts use atomic compare-and-swap to claim
slots; probes are random global-memory reads — both are accounted here.

The table stores *row indices* into the build-side key columns, so
composite keys are compared exactly (no lossy packing).  Build keys
must be unique (all joins in the evaluated workloads are PK-FK joins or
joins against aggregated subplans); duplicate keys raise ``PlanError``.
"""

from __future__ import annotations

import numpy as np

from ..errors import PlanError
from ..hardware.device import VirtualCoprocessor
from ..hardware.traffic import AtomicBatch, MemoryLevel, TrafficMeter
from .gather import random_access_volume

#: Row indices are stored as 4-byte ints, as a real GPU build would.
_SLOT_BYTES = 4

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer — a strong, cheap 64-bit mixer."""
    h = values.astype(np.uint64, copy=True)
    h ^= h >> np.uint64(30)
    h *= np.uint64(0xBF58476D1CE4E5B9)
    h ^= h >> np.uint64(27)
    h *= np.uint64(0x94D049BB133111EB)
    h ^= h >> np.uint64(31)
    return h


def _key_bits(array: np.ndarray) -> np.ndarray:
    """A 64-bit pattern per key value (bit view for floats, so equal
    floats hash equally without lossy integer truncation)."""
    if array.dtype.kind == "f":
        return array.astype(np.float64).view(np.uint64)
    return array.astype(np.uint64)


def hash_key_columns(key_arrays: list[np.ndarray]) -> np.ndarray:
    """Combine one or more key columns into 64-bit hashes."""
    if not key_arrays:
        raise PlanError("hash join needs at least one key column")
    combined = np.zeros(len(key_arrays[0]), dtype=np.uint64)
    for array in key_arrays:
        combined = _splitmix64(combined ^ (_key_bits(array) * _GOLDEN))
    return combined


def _next_power_of_two(value: int) -> int:
    power = 16
    while power < value:
        power *= 2
    return power


class JoinHashTable:
    """An open-addressing (linear probing) hash table over build rows.

    Created via :meth:`build`, which simulates the build kernel on a
    device; probed via :meth:`probe`, which accounts its traffic into
    the probing kernel's meter (probes happen *inside* pipelines).
    """

    def __init__(
        self,
        key_arrays: list[np.ndarray],
        slots: np.ndarray,
        capacity: int,
        name: str,
    ):
        self.key_arrays = key_arrays
        self.slots = slots
        self.capacity = capacity
        self.name = name
        #: Device buffer backing ``slots`` (set by the build paths so
        #: error handling can free a half-built table).
        self.slots_buffer = None

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(self.key_arrays[0])

    @property
    def entry_bytes(self) -> int:
        """Bytes read to inspect one slot: row index + stored key."""
        return _SLOT_BYTES + sum(array.dtype.itemsize for array in self.key_arrays)

    @property
    def table_bytes(self) -> int:
        """Global-memory footprint of the slot array."""
        return self.capacity * _SLOT_BYTES

    # ------------------------------------------------------------------
    @classmethod
    def _insert_all(
        cls, key_arrays: list[np.ndarray], name: str, load_factor: float
    ) -> tuple[np.ndarray, int, int, int]:
        """Shared insert loop: returns (slots, capacity, attempts,
        max same-slot contention)."""
        n = len(key_arrays[0])
        if any(len(array) != n for array in key_arrays):
            raise PlanError("join key columns must have equal length")
        capacity = _next_power_of_two(max(16, int(n / load_factor)))
        mask = np.uint64(capacity - 1)

        slots = np.full(capacity, -1, dtype=np.int64)
        hashes = hash_key_columns(key_arrays)
        position = (hashes & mask).astype(np.int64)
        pending = np.arange(n, dtype=np.int64)
        attempts = 0
        max_slot_contention = 0
        rounds = 0
        while pending.size:
            rounds += 1
            if rounds > capacity + 1:
                raise PlanError(f"hash table {name!r} insert did not converge")
            target = position[pending]
            occupant = slots[target]
            occupied = occupant >= 0
            # Duplicate-key check: an occupied slot holding an equal key
            # is a duplicate build key.
            if occupied.any():
                dup_rows = pending[occupied]
                dup_slots = occupant[occupied]
                equal = np.ones(len(dup_rows), dtype=bool)
                for array in key_arrays:
                    equal &= array[dup_slots] == array[dup_rows]
                if equal.any():
                    raise PlanError(
                        f"duplicate keys in build side of hash table {name!r}"
                    )
            free_rows = pending[~occupied]
            free_targets = target[~occupied]
            attempts += len(pending)
            if free_rows.size:
                contention = np.bincount(free_targets)
                max_slot_contention = max(max_slot_contention, int(contention.max()))
                unique_targets, winner_index = np.unique(free_targets, return_index=True)
                slots[unique_targets] = free_rows[winner_index]
                won = np.zeros(len(free_rows), dtype=bool)
                won[winner_index] = True
                losers = free_rows[~won]
            else:
                losers = free_rows
            # Collision rows saw a non-equal occupant and linear-probe
            # onward; CAS losers re-read the slot they lost (so that
            # duplicate keys racing for one slot are detected).
            colliders = pending[occupied]
            position[colliders] = (position[colliders] + 1) % capacity
            pending = np.concatenate([colliders, losers])
        return slots, capacity, attempts, max_slot_contention

    @classmethod
    def build(
        cls,
        device: VirtualCoprocessor,
        key_arrays: list[np.ndarray],
        name: str = "hash_table",
        load_factor: float = 0.5,
    ) -> "JoinHashTable":
        """Build the table as one device kernel with atomic-CAS inserts.

        Reads materialized key columns from GPU global memory (the
        multi-pass and operator-at-a-time flow).
        """
        key_arrays = [np.ascontiguousarray(array) for array in key_arrays]
        n = len(key_arrays[0])
        slots, capacity, attempts, max_slot_contention = cls._insert_all(
            key_arrays, name, load_factor
        )
        table = cls(key_arrays=key_arrays, slots=slots, capacity=capacity, name=name)

        meter = device.new_meter()
        key_bytes = sum(array.nbytes for array in key_arrays)
        meter.record_read(MemoryLevel.GLOBAL, key_bytes)
        # Every insert attempt reads a slot; every success writes one.
        meter.record_table_read(attempts * _SLOT_BYTES)
        meter.record_table_write(n * _SLOT_BYTES)
        meter.record_atomics(
            AtomicBatch(
                count=attempts,
                max_chain=max(max_slot_contention, 1) if n else 0,
                kind="rmw",
            )
        )
        meter.record_instructions(3 * attempts)
        device.launch(f"build.{name}", "build", n, meter)

        # The slot array stays resident in device global memory.
        table.slots_buffer = device.allocate(slots, label=f"{name}.slots")
        return table

    @classmethod
    def build_pipelined(
        cls,
        meter: TrafficMeter,
        device: VirtualCoprocessor,
        key_arrays: list[np.ndarray],
        name: str = "hash_table",
        load_factor: float = 0.5,
    ) -> "JoinHashTable":
        """Insert inside an enclosing compound kernel (fully pipelined).

        Keys arrive in registers, so no key reads are charged — only the
        atomic-CAS slot traffic.  This is the build path of a compound
        build pipeline (Section 5.2: "hash table operations" as function
        calls in the generated kernel).
        """
        key_arrays = [np.ascontiguousarray(array) for array in key_arrays]
        n = len(key_arrays[0])
        slots, capacity, attempts, max_slot_contention = cls._insert_all(
            key_arrays, name, load_factor
        )
        meter.record_table_read(attempts * _SLOT_BYTES)
        meter.record_table_write(n * _SLOT_BYTES)
        meter.record_atomics(
            AtomicBatch(
                count=attempts,
                max_chain=max(max_slot_contention, 1) if n else 0,
                kind="rmw",
            )
        )
        meter.record_instructions(3 * attempts)
        table = cls(key_arrays=key_arrays, slots=slots, capacity=capacity, name=name)
        table.slots_buffer = device.allocate(slots, label=f"{name}.slots")
        return table

    # ------------------------------------------------------------------
    def probe(
        self,
        meter: TrafficMeter,
        probe_arrays: list[np.ndarray],
        l2_capacity: int | None = None,
    ) -> np.ndarray:
        """Probe the table; returns the matching build row per probe row.

        The result holds the build-side row index for hits and -1 for
        misses.  Probe traffic (random slot reads + key comparisons) is
        recorded into the supplied meter — probes execute inside count,
        write, or compound kernels, never as kernels of their own.
        Tables larger than ``l2_capacity`` pay DRAM transaction
        amplification per slot access.
        """
        probe_arrays = [np.ascontiguousarray(array) for array in probe_arrays]
        if len(probe_arrays) != len(self.key_arrays):
            raise PlanError(
                f"probe key count {len(probe_arrays)} does not match build "
                f"key count {len(self.key_arrays)}"
            )
        n = len(probe_arrays[0])
        result = np.full(n, -1, dtype=np.int64)
        if n == 0:
            return result
        mask = np.uint64(self.capacity - 1)
        position = (hash_key_columns(probe_arrays) & mask).astype(np.int64)
        active = np.arange(n, dtype=np.int64)
        steps = 0
        rounds = 0
        while active.size:
            rounds += 1
            if rounds > self.capacity + 1:
                raise PlanError(f"hash table {self.name!r} probe did not converge")
            steps += len(active)
            candidate = self.slots[position[active]]
            empty = candidate < 0
            # Empty slot -> miss; result stays -1.
            occupied_rows = active[~empty]
            occupied_candidates = candidate[~empty]
            if occupied_rows.size:
                equal = np.ones(len(occupied_rows), dtype=bool)
                for build, probe in zip(self.key_arrays, probe_arrays):
                    equal &= build[occupied_candidates] == probe[occupied_rows]
                result[occupied_rows[equal]] = occupied_candidates[equal]
                remaining = occupied_rows[~equal]
            else:
                remaining = occupied_rows
            position[remaining] = (position[remaining] + 1) % self.capacity
            active = remaining

        structure_bytes = self.capacity * _SLOT_BYTES + sum(
            array.nbytes for array in self.key_arrays
        )
        meter.record_table_read(
            random_access_volume(steps, self.entry_bytes, structure_bytes, l2_capacity)
        )
        meter.record_instructions(4 * steps)
        return result
