"""Data-parallel primitives with exact traffic accounting.

The primitive families correspond to the paper's Table 4:

* ``prefix``    — aligned-write positions: A1 (multi-pass), A2 (atomic),
  A3 (local resolution, global propagation)
* ``reduce``    — single-tuple aggregation: B1, B2, B3
* ``segmented`` — grouped aggregation: C2, C3 (+ shared factorization)
* ``sortlib``   — radix sort + segmented reduce (C1 building blocks)
* ``hashtable`` — join hash tables with atomic-CAS inserts
* ``gather``    — gather/scatter/stream byte accounting
"""

from .common import (
    DEFAULT_CTA_SIZE,
    cta_ids,
    exclusive_cumsum,
    log2_ceil,
    num_blocks,
    segment_exclusive_cumsum,
    segment_totals,
    semi_ordered_permutation,
)
from .gather import INDEX_BYTES, account_gather, account_scatter, account_stream
from .hashtable import JoinHashTable, hash_key_columns
from .prefix import (
    ScanResult,
    atomic_positions,
    device_scan,
    lookback_positions,
    lrgp_positions,
    reference_positions,
    sequential_prefix_sum,
)
from .reduce import atomic_reduce, device_reduce, lrgp_reduce, reduce_reference
from .segmented import (
    HashAggregateCost,
    atomic_hash_aggregate,
    factorize,
    grouped_reduce,
    segmented_hash_aggregate,
)
from .sortlib import device_radix_sort, device_segmented_reduce

__all__ = [
    "DEFAULT_CTA_SIZE",
    "HashAggregateCost",
    "INDEX_BYTES",
    "JoinHashTable",
    "ScanResult",
    "account_gather",
    "account_scatter",
    "account_stream",
    "atomic_hash_aggregate",
    "atomic_positions",
    "atomic_reduce",
    "cta_ids",
    "device_radix_sort",
    "device_reduce",
    "device_scan",
    "device_segmented_reduce",
    "exclusive_cumsum",
    "factorize",
    "grouped_reduce",
    "hash_key_columns",
    "log2_ceil",
    "lookback_positions",
    "lrgp_positions",
    "lrgp_reduce",
    "num_blocks",
    "reduce_reference",
    "reference_positions",
    "segment_exclusive_cumsum",
    "segment_totals",
    "segmented_hash_aggregate",
    "semi_ordered_permutation",
    "sequential_prefix_sum",
]
