"""Prefix-sum primitives: the paper's techniques A1, A2, A3 (Table 4).

A prefix sum over selection flags yields the dense, unique write
positions of the "aligned write" phase.  The paper contrasts:

* **A1 — multi-pass** (pipeline breaker): a hierarchical device scan in
  its own kernels, with flags and prefix arrays materialized in GPU
  global memory (Section 4).
* **A2 — atomic prefix sum** (pipelined): ``wp = atom_add(&sum, 1)``
  per selected element, inside the compound kernel (Section 5.1).
  Unique but unordered positions; every selected element hits the same
  counter, so the same-address conflict chain equals the output size.
* **A3 — local resolution, global propagation** (pipelined): each CTA
  pre-scans its slice on-chip (work-efficient or SIMD mechanism), then
  a single atomic per thread group allocates a segment of output
  positions (Section 6.1, Figure 14).  Output is ordered within
  segments and semi-ordered between them.

A1 launches kernels on a device; A2/A3 record their cost into the
enclosing compound kernel's :class:`TrafficMeter`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.device import VirtualCoprocessor
from ..hardware.profiles import DeviceProfile
from ..hardware.traffic import AtomicBatch, MemoryLevel, TrafficMeter
from .common import (
    DEFAULT_CTA_SIZE,
    exclusive_cumsum,
    log2_ceil,
    num_blocks,
    segment_exclusive_cumsum,
    segment_totals,
    semi_ordered_permutation,
)

_FLAG_BYTES = 4  # flags/prefix entries are 4-byte ints on the device


@dataclass
class ScanResult:
    """Write positions for the selected elements of a pipeline.

    ``positions[i]`` is the output slot of element ``i`` where
    ``flags[i]`` is true and -1 elsewhere; ``total`` is the number of
    selected elements.  Positions are a permutation of ``range(total)``.
    """

    positions: np.ndarray
    total: int


def sequential_prefix_sum(flags) -> list[int]:
    """The paper's sequential reference loop (Section 5.1).

    Returns the dense write position per flagged element (-1 when the
    flag is false).  Used as the ground truth in tests.
    """
    positions = []
    running = 0
    for flag in flags:
        if flag:
            positions.append(running)
            running += 1
        else:
            positions.append(-1)
    return positions


def reference_positions(flags: np.ndarray) -> ScanResult:
    """Vectorized ordered positions (equivalent to A1's semantics)."""
    flags = np.asarray(flags, dtype=bool)
    running = exclusive_cumsum(flags.astype(np.int64))
    positions = np.where(flags, running, -1)
    return ScanResult(positions=positions, total=int(flags.sum()))


# ----------------------------------------------------------------------
# A1 — multi-pass hierarchical scan (pipeline breaker)
# ----------------------------------------------------------------------
def device_scan(
    device: VirtualCoprocessor,
    flags: np.ndarray,
    cta_size: int = DEFAULT_CTA_SIZE,
    label: str = "prefix_sum",
) -> ScanResult:
    """A Blelloch-style hierarchical scan as separate device kernels.

    Launches the classic three-kernel sequence (block scan, scan of
    block totals, offset add), each reading and writing GPU global
    memory — exactly the round trips the compound kernel eliminates.
    """
    flags = np.asarray(flags, dtype=bool)
    n = len(flags)
    blocks = num_blocks(n, cta_size)
    flag_bytes = n * _FLAG_BYTES
    block_bytes = blocks * _FLAG_BYTES

    # Kernel 1: per-block scan; reads flags, writes partial prefix and
    # block totals.
    meter = device.new_meter()
    meter.record_read(MemoryLevel.GLOBAL, flag_bytes)
    meter.record_write(MemoryLevel.GLOBAL, flag_bytes + block_bytes)
    meter.record_read(MemoryLevel.ONCHIP, 2 * flag_bytes)
    meter.record_write(MemoryLevel.ONCHIP, 2 * flag_bytes)
    meter.record_instructions(2 * n)
    meter.record_barrier(blocks * 2 * log2_ceil(cta_size))
    device.launch(f"{label}.block_scan", "prefix_sum", n, meter)

    # Kernel 2: scan the block totals (single block; recursion depth 1
    # suffices for every size we simulate, cost is proportional anyway).
    meter = device.new_meter()
    meter.record_read(MemoryLevel.GLOBAL, block_bytes)
    meter.record_write(MemoryLevel.GLOBAL, block_bytes)
    meter.record_instructions(2 * blocks)
    device.launch(f"{label}.block_totals", "prefix_sum", blocks, meter)

    # Kernel 3: add block offsets to the partial prefix sums.
    meter = device.new_meter()
    meter.record_read(MemoryLevel.GLOBAL, flag_bytes + block_bytes)
    meter.record_write(MemoryLevel.GLOBAL, flag_bytes)
    meter.record_instructions(n)
    device.launch(f"{label}.offset_add", "prefix_sum", n, meter)

    return reference_positions(flags)


# ----------------------------------------------------------------------
# A2 — atomic prefix sum (fully pipelined, no local resolution)
# ----------------------------------------------------------------------
def atomic_positions(
    meter: TrafficMeter,
    flags: np.ndarray,
    rng: np.random.Generator,
) -> ScanResult:
    """``if (is_selected) wp = atom_add(&sum, 1)`` (Section 5.1).

    Every selected element performs one atomic add on the *same*
    global counter, so the conflict chain length equals the output
    cardinality — the bottleneck Experiment 1 exposes at high
    selectivity.  Returned positions are unique but unordered.
    """
    flags = np.asarray(flags, dtype=bool)
    total = int(flags.sum())
    meter.record_atomics(AtomicBatch(count=total, max_chain=total))
    meter.record_instructions(len(flags))
    positions = np.full(len(flags), -1, dtype=np.int64)
    if total:
        order = rng.permutation(total).astype(np.int64)
        positions[np.flatnonzero(flags)] = order
    return ScanResult(positions=positions, total=total)


# ----------------------------------------------------------------------
# Decoupled look-back (Merrill & Garland), for comparison (Section 10)
# ----------------------------------------------------------------------
def lookback_positions(
    meter: TrafficMeter,
    flags: np.ndarray,
    rng: np.random.Generator,
    cta_size: int = DEFAULT_CTA_SIZE,
    lookback_window: int = 4,
) -> ScanResult:
    """Single-pass scan with decoupled look-back (related work, §10).

    Each CTA publishes its aggregate to global memory, then *looks
    back* over predecessors' published state to compose its exclusive
    prefix — no atomics, but every CTA spins on global-memory flags of
    its predecessors.  The paper contrasts this with local resolution,
    global propagation, which trades those re-reads for one atomic per
    group and gains out-of-order freedom.

    Output positions are strictly ordered (unlike A2/A3).
    """
    flags = np.asarray(flags, dtype=bool)
    n = len(flags)
    blocks = num_blocks(n, cta_size)
    # Local scan (same on-chip work as work-efficient local resolution).
    scan_steps = 2 * log2_ceil(cta_size)
    meter.record_read(MemoryLevel.ONCHIP, scan_steps * n * _FLAG_BYTES)
    meter.record_write(MemoryLevel.ONCHIP, scan_steps * n * _FLAG_BYTES)
    meter.record_instructions((scan_steps + 1) * n)
    meter.record_barrier(blocks * scan_steps)
    # Publish per-CTA aggregate + status flag, then look back: on
    # average each CTA re-reads `lookback_window` predecessor entries
    # (8-byte descriptor) before composing its inclusive prefix.
    descriptor = 8
    meter.record_write(MemoryLevel.GLOBAL, blocks * descriptor)
    meter.record_read(MemoryLevel.GLOBAL, blocks * lookback_window * descriptor)
    meter.record_instructions(blocks * lookback_window)
    return reference_positions(flags)


# ----------------------------------------------------------------------
# A3 — local resolution, global propagation
# ----------------------------------------------------------------------
def lrgp_positions(
    meter: TrafficMeter,
    flags: np.ndarray,
    profile: DeviceProfile,
    rng: np.random.Generator,
    mechanism: str = "simd",
    cta_size: int = DEFAULT_CTA_SIZE,
) -> ScanResult:
    """Local resolution (on-chip pre-scan) + one atomic per thread group.

    ``mechanism`` selects the local-resolution algorithm (Figure 15):

    * ``"work_efficient"`` — Blelloch tree scan over the whole CTA;
      ``2*log2(cta_size)`` barrier generations, one atomic per CTA.
    * ``"simd"`` — warp/wavefront scan (Sengupta et al.); no barriers,
      one atomic per SIMD group of ``profile.simd_width`` threads.
    """
    flags = np.asarray(flags, dtype=bool)
    n = len(flags)
    if mechanism == "work_efficient":
        group = cta_size
        scan_steps = 2 * log2_ceil(group)
        meter.record_barrier(num_blocks(n, group) * scan_steps)
    elif mechanism == "simd":
        group = profile.simd_width
        scan_steps = log2_ceil(group)
    else:
        raise ValueError(f"unknown local resolution mechanism {mechanism!r}")

    groups = num_blocks(n, group)
    # On-chip traffic of the local scan (registers + scratchpad).
    meter.record_read(MemoryLevel.ONCHIP, scan_steps * n * _FLAG_BYTES)
    meter.record_write(MemoryLevel.ONCHIP, scan_steps * n * _FLAG_BYTES)
    meter.record_instructions((scan_steps + 1) * n)
    # Global propagation: one atomic add per thread group, all on the
    # same global counter.
    meter.record_atomics(AtomicBatch(count=groups, max_chain=groups))

    totals = segment_totals(flags.astype(np.int64), group)
    local = segment_exclusive_cumsum(flags.astype(np.int64), group)
    # Undefined (but local) group completion order -> semi-ordered output.
    order = semi_ordered_permutation(groups, rng)
    global_offsets = np.empty(groups, dtype=np.int64)
    global_offsets[order] = exclusive_cumsum(totals[order])
    element_group = np.arange(n, dtype=np.int64) // group
    positions = np.where(flags, global_offsets[element_group] + local, -1)
    return ScanResult(positions=positions, total=int(flags.sum()))
