"""Grouped-aggregation primitives: techniques C1, C2, C3 (Table 4).

Grouped aggregation (``GROUP BY``) reduces qualifying tuples into a
table of per-group aggregates.  The paper's three implementations:

* **C1 — sort-based, multi-pass** (pipeline breaker): global sort by
  key, then a segmented reduction over the sorted runs.  Used by the
  operator-at-a-time engine; its cost is dominated by the sort and is
  therefore independent of the group count (Experiment 2).
* **C2 — atomic hash reduce** (pipelined): every qualifying tuple
  performs one atomic RMW on a global aggregation hash table.  With few
  groups the per-group conflict chains explode (the contention cliff of
  Figure 18).
* **C3 — segmented pre-aggregation** (pipelined): each CTA sorts its
  slice in scratchpad, reduces segments locally, and inserts only one
  pre-aggregate per distinct (CTA, key) pair into the global table
  (Section 6.1, Figure 15c) — up to 126x faster at small group counts.

This module provides the shared factorization/reduction machinery plus
the C2/C3 cost accounting; C1 is assembled from :mod:`sortlib` by the
engines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExpressionError
from ..hardware.profiles import DeviceProfile
from ..hardware.traffic import AtomicBatch, MemoryLevel, TrafficMeter
from .common import DEFAULT_CTA_SIZE, log2_ceil, num_blocks


def factorize(key_arrays: list[np.ndarray]) -> tuple[np.ndarray, list[np.ndarray]]:
    """Map composite keys to dense group codes.

    Returns ``(codes, unique_keys)`` where ``codes[i]`` is the dense
    group id of row ``i`` and ``unique_keys[k][g]`` is the ``k``-th key
    component of group ``g``.  Group ids are assigned in sorted key
    order, making results deterministic across engines.
    """
    if not key_arrays:
        raise ExpressionError("factorize needs at least one key array")
    n = len(key_arrays[0])
    if any(len(array) != n for array in key_arrays):
        raise ExpressionError("key arrays must have equal length")
    if n == 0:
        return np.zeros(0, dtype=np.int64), [array[:0] for array in key_arrays]
    if len(key_arrays) == 1:
        uniques, inverse = np.unique(key_arrays[0], return_inverse=True)
        return inverse.astype(np.int64), [uniques]
    order = np.lexsort(tuple(reversed(key_arrays)))
    sorted_cols = [array[order] for array in key_arrays]
    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    for column in sorted_cols:
        boundary[1:] |= column[1:] != column[:-1]
    group_of_sorted = np.cumsum(boundary) - 1
    codes = np.empty(n, dtype=np.int64)
    codes[order] = group_of_sorted
    uniques = [column[boundary] for column in sorted_cols]
    return codes, uniques


def grouped_reduce(codes: np.ndarray, num_groups: int, values: np.ndarray, op: str) -> np.ndarray:
    """Reduce ``values`` into ``num_groups`` buckets keyed by ``codes``."""
    if op == "count":
        return np.bincount(codes, minlength=num_groups).astype(np.int64)
    values = np.asarray(values)
    if op == "sum":
        if np.issubdtype(values.dtype, np.integer):
            return np.bincount(codes, weights=values.astype(np.float64), minlength=num_groups).astype(np.int64)
        return np.bincount(codes, weights=values.astype(np.float64), minlength=num_groups)
    if op == "min":
        out = np.full(num_groups, np.inf)
        np.minimum.at(out, codes, values.astype(np.float64))
        return out.astype(values.dtype) if np.issubdtype(values.dtype, np.integer) else out
    if op == "max":
        out = np.full(num_groups, -np.inf)
        np.maximum.at(out, codes, values.astype(np.float64))
        return out.astype(values.dtype) if np.issubdtype(values.dtype, np.integer) else out
    raise ExpressionError(f"unknown aggregate {op!r}")


@dataclass
class HashAggregateCost:
    """Observed cost drivers of a pipelined hash aggregation."""

    inputs: int
    groups: int
    global_atomics: int
    max_chain: int


# ----------------------------------------------------------------------
# C2 — atomic hash reduce
# ----------------------------------------------------------------------
def atomic_hash_aggregate(
    meter: TrafficMeter,
    codes: np.ndarray,
    num_groups: int,
    entry_bytes: int,
) -> HashAggregateCost:
    """Account a per-tuple atomic hash-table update (C2).

    Every qualifying tuple performs one atomic RMW against its group's
    table entry, so the longest conflict chain is the population of the
    hottest group — with 2 groups that is ~n/2 serialized atomics, which
    is the cliff on the left of Figure 18.
    """
    n = len(codes)
    max_chain = int(np.bincount(codes, minlength=max(num_groups, 1)).max()) if n else 0
    meter.record_atomics(AtomicBatch(count=n, max_chain=max_chain, kind="rmw"))
    # Hash + probe instructions and the RMW traffic on the global table.
    meter.record_instructions(4 * n)
    meter.record_table_read(n * entry_bytes)
    meter.record_table_write(n * entry_bytes)
    return HashAggregateCost(
        inputs=n, groups=num_groups, global_atomics=n, max_chain=max_chain
    )


# ----------------------------------------------------------------------
# C3 — segmented pre-aggregation in scratchpad
# ----------------------------------------------------------------------
def segmented_hash_aggregate(
    meter: TrafficMeter,
    codes: np.ndarray,
    num_groups: int,
    entry_bytes: int,
    profile: DeviceProfile,
    cta_size: int = DEFAULT_CTA_SIZE,
) -> HashAggregateCost:
    """Account the sort-merge pre-aggregation of Figure 15c (C3).

    Each CTA sorts its slice by key in scratchpad (bitonic network),
    reduces segments, and inserts one pre-aggregate per distinct
    (CTA, key) pair into the global hash table.  The conflict chain per
    group therefore shrinks from its population to the number of CTAs
    that saw the group.
    """
    n = len(codes)
    blocks = num_blocks(n, cta_size)
    # Bitonic sort in scratchpad: ~log^2(cta)/2 compare-exchange stages.
    stages = log2_ceil(cta_size) * (log2_ceil(cta_size) + 1) // 2
    meter.record_read(MemoryLevel.ONCHIP, stages * n * entry_bytes)
    meter.record_write(MemoryLevel.ONCHIP, stages * n * entry_bytes)
    meter.record_instructions(stages * n)
    meter.record_barrier(blocks * stages)
    # Segmented reduce over the sorted slice.
    meter.record_read(MemoryLevel.ONCHIP, n * entry_bytes)
    meter.record_write(MemoryLevel.ONCHIP, n * entry_bytes)
    meter.record_instructions(2 * n)

    if n:
        cta_of = np.arange(n, dtype=np.int64) // cta_size
        pairs = np.unique(cta_of * max(num_groups, 1) + codes)
        distinct_pairs = len(pairs)
        pair_groups = pairs % max(num_groups, 1)
        max_chain = int(np.bincount(pair_groups, minlength=max(num_groups, 1)).max())
    else:
        distinct_pairs = 0
        max_chain = 0
    meter.record_atomics(AtomicBatch(count=distinct_pairs, max_chain=max_chain, kind="rmw"))
    meter.record_table_read(distinct_pairs * entry_bytes)
    meter.record_table_write(distinct_pairs * entry_bytes)
    return HashAggregateCost(
        inputs=n,
        groups=num_groups,
        global_atomics=distinct_pairs,
        max_chain=max_chain,
    )
