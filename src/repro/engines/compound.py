"""The fully pipelined compound-kernel engine (Sections 5 and 6).

Each fusion operator executes as ONE generated kernel that evaluates
the relational primitives, computes write positions with a pipelined
prefix sum, and performs the aligned writes — no intermediate
materialization in GPU global memory.

Two reduction families are available:

* ``Pipelined``  (``mode="atomic"``) — plain atomic prefix
  sums/reductions (techniques A2/B2/C2);
* ``Resolution`` (``mode="lrgp_simd"`` or ``"lrgp_we"``) — local
  resolution, global propagation (techniques A3/B3/C3) with a SIMD or
  work-efficient local mechanism.
"""

from __future__ import annotations

import numpy as np

from ..kernels.codegen import generate_compound_kernel
from ..kernels.context import KernelContext
from ..plan.physical import AggregateSink, BuildSink, MaterializeSink, Pipeline
from .base import Engine
from .runtime import QueryRuntime


class CompoundEngine(Engine):
    """HorseQC: Fully pipelined — one compound kernel per pipeline."""

    def __init__(self, mode: str = "lrgp_simd"):
        if mode not in ("atomic", "lrgp_simd", "lrgp_we"):
            raise ValueError(f"invalid compound mode {mode!r}")
        self.mode = mode
        label = {
            "atomic": "Pipelined",
            "lrgp_simd": "Resolution:SIMD",
            "lrgp_we": "Resolution:WE",
        }[mode]
        self.name = f"horseqc-compound[{label}]"
        #: Last execution's sources per pipeline name (for inspection);
        #: rebound per run — see :class:`~repro.engines.base.Engine`.
        self.kernel_sources: dict[str, str] = {}

    def execute_pipeline(
        self, pipeline: Pipeline, runtime: QueryRuntime
    ) -> dict[str, np.ndarray] | None:
        scope = runtime.load_source(pipeline, lazy_capable=True)
        ctx = KernelContext(
            runtime,
            scope,
            pipeline.scope_schema,
            mode=self.mode,
            sink=pipeline.sink,
            output_schema=pipeline.output_schema,
            rows=runtime.source_rows(pipeline),
            pipeline=pipeline,
        )
        kernel = generate_compound_kernel(pipeline)
        runtime.kernel_sources[pipeline.name] = kernel.source
        kernel(ctx)
        runtime.device.launch(kernel.name, "compound", ctx.n, ctx.meter)

        sink = pipeline.sink
        if isinstance(sink, BuildSink):
            return None  # registered by ctx.sink_build
        if isinstance(sink, (MaterializeSink, AggregateSink)):
            return ctx.outputs
        raise AssertionError(f"unhandled sink {type(sink).__name__}")
