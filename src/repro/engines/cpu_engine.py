"""A MonetDB-like CPU baseline for the end-to-end comparison.

Experiment 6 compares HorseQC against MonetDB running on the host CPU.
MonetDB is, for this purpose, a full-column operator-at-a-time engine
bound by main-memory bandwidth — exactly the
:class:`OperatorAtATimeEngine` running on a CPU device profile with
zero-copy memory (no PCIe transfers, no kernel-launch overhead to speak
of).
"""

from __future__ import annotations

from ..hardware.device import VirtualCoprocessor
from ..hardware.profiles import XEON_E5, DeviceProfile
from .operator_at_a_time import OperatorAtATimeEngine


class CpuOperatorAtATimeEngine(OperatorAtATimeEngine):
    """Operator-at-a-time on the host CPU (the MonetDB stand-in)."""

    name = "cpu-operator-at-a-time"


def make_cpu_device(profile: DeviceProfile = XEON_E5) -> VirtualCoprocessor:
    """A virtual 'coprocessor' that is actually the host CPU."""
    return VirtualCoprocessor(profile, interconnect=None)
