"""Shared query-execution runtime used by all engines.

Owns the per-query state: which base columns were already transferred
over PCIe, the hash tables built by earlier pipelines, virtual tables
produced by aggregation pipelines, and the final result assembly
(dictionary decode ordering, host-side sort/limit — the steps the paper
delegates to CoGaDB's original engine, Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compression import (
    CompressionStats,
    decode_kernel_source,
    encode_kernel_source,
)
from ..compression.kernels import compressed_scan_source, gather_decode_source
from ..compression.lazy import LazyColumn, gather_cost
from ..errors import PlanError
from ..expressions.eval import evaluate
from ..hardware.device import VirtualCoprocessor
from ..hardware.traffic import MemoryLevel
from ..telemetry.trace import active_tracer
from ..primitives.hashtable import JoinHashTable
from ..primitives.segmented import factorize, grouped_reduce
from ..storage.column import Column
from ..storage.database import Database
from ..storage.table import Table
from ..plan.logical import PlanSchema
from ..plan.physical import AggregateSink, PhysicalQuery, Pipeline


@dataclass
class HashTableEntry:
    """A built hash table plus its payload columns (device-resident)."""

    table: JoinHashTable
    payload: dict[str, np.ndarray]


@dataclass
class VirtualTable:
    """An intermediate result, resident in device global memory."""

    arrays: dict[str, np.ndarray]
    schema: PlanSchema

    @property
    def num_rows(self) -> int:
        if not self.arrays:
            return 0
        return len(next(iter(self.arrays.values())))


@dataclass
class AggregationResult:
    """Aggregate outputs plus the cost drivers the engines account."""

    outputs: dict[str, np.ndarray]
    #: Dense group code per *input* row (None for single-tuple aggs).
    codes: np.ndarray | None
    num_groups: int
    #: Total bytes of one hash-table entry (key + all accumulators).
    entry_bytes: int
    #: Number of qualifying input rows.
    inputs: int


class QueryRuntime:
    """Mutable state threaded through the pipelines of one query.

    When a :class:`~repro.placement.BufferPool` is supplied, base
    column loads route through it: resident columns skip the PCIe
    charge (a placement hit, pinned until :meth:`close`), cold columns
    transfer once and stay resident for later queries.
    """

    def __init__(
        self,
        device: VirtualCoprocessor,
        database: Database,
        seed: int = 42,
        pool=None,
    ):
        self.device = device
        self.database = database
        self.pool = pool
        #: Span tracer bound to the executing thread (None when tracing
        #: is disabled) — picked up once so hot loops skip the lookup.
        self.tracer = active_tracer()
        self.rng = np.random.default_rng(seed)
        self.hash_tables: dict[str, HashTableEntry] = {}
        self.virtual_tables: dict[str, VirtualTable] = {}
        #: Generated kernel sources of THIS query (engines write here so
        #: concurrent queries sharing one engine instance cannot mix
        #: their sources; surfaced as ``ExecutionResult.kernel_sources``).
        self.kernel_sources: dict[str, str] = {}
        self._transferred: set[tuple[str, str]] = set()
        #: Pool entries pinned by this query (unpinned by :meth:`close`).
        self._pinned: list = []
        #: Base-column bytes moved host->device (PCIe input volume).
        self.input_bytes = 0
        #: Result bytes moved device->host.
        self.output_bytes = 0
        #: Base-column loads served from device-resident buffers.
        self.placement_hits = 0
        self.placement_misses = 0
        #: PCIe bytes the placement hits avoided.
        self.placement_hit_bytes = 0
        #: Wire compression policy (``device.compression``).  Zero-copy
        #: devices never cross a link, so there is nothing to compress.
        self.compression = (
            device.compression if device.interconnect is not None else None
        )
        self._compression_stats = (
            CompressionStats() if self.compression is not None else None
        )
        #: Late materialization (``compression="lazy"``): wire-resident
        #: columns whose decode is deferred, keyed by ``id(values)`` of
        #: the ground-truth array the scope holds.
        self.lazy_columns: dict[int, LazyColumn] = {}

    # ------------------------------------------------------------------
    def source_rows(self, pipeline: Pipeline) -> int:
        """Row count of the pipeline's input, independent of how many
        columns it references (``count(*)`` reads none)."""
        if pipeline.source_is_virtual:
            virtual = self.virtual_tables.get(pipeline.source)
            if virtual is None or not virtual.arrays:
                return 0
            return len(next(iter(virtual.arrays.values())))
        return self.database.table(pipeline.source).num_rows

    def load_source(
        self, pipeline: Pipeline, lazy_capable: bool = False
    ) -> dict[str, np.ndarray]:
        """The pipeline's input scope: base columns (transferred on
        first use) or a virtual table already on the device.

        ``lazy_capable=True`` (compound/multipass engines, whose charge
        paths route through :class:`~repro.kernels.context.KernelContext`)
        lets a ``compression="lazy"`` policy defer decode kernels: the
        column stays wire-resident and a :class:`LazyColumn` is
        registered for compressed scans / on-demand materialization.
        Engines that charge column reads outside the context (the
        operator-at-a-time design) keep the eager decode-at-load path.
        """
        if pipeline.source_is_virtual:
            try:
                virtual = self.virtual_tables[pipeline.source]
            except KeyError:
                raise PlanError(
                    f"pipeline {pipeline.name} reads virtual table "
                    f"{pipeline.source!r} before it was produced"
                ) from None
            return dict(virtual.arrays)
        table = self.database.table(pipeline.source)
        lazy = (
            lazy_capable
            and self.compression is not None
            and getattr(self.compression, "lazy", False)
        )
        scope: dict[str, np.ndarray] = {}
        for name in pipeline.required_columns:
            base_name = pipeline.source_rename.get(name, name)
            column = table.column(base_name)
            key = (pipeline.source, base_name)
            if key not in self._transferred:
                self._transferred.add(key)
                label = f"{pipeline.source}.{base_name}"
                encoded = (
                    self.compression.encoded(column)
                    if self.compression is not None
                    else None
                )
                if self.pool is not None:
                    entry, hit = self.pool.acquire(
                        pipeline.source, base_name, column,
                        self.database.fingerprint(),
                    )
                    self._pinned.append(entry)
                    if self.tracer is not None:
                        self.tracer.event(
                            f"placement {label}",
                            "placement",
                            hit=hit,
                            nbytes=column.nbytes,
                        )
                    # entry.nbytes is the resident footprint: the wire
                    # size when the pool stores the column compressed.
                    if hit:
                        self.placement_hits += 1
                        self.placement_hit_bytes += entry.nbytes
                    else:
                        self.placement_misses += 1
                        self.input_bytes += entry.nbytes
                        if encoded is not None:
                            self._compression_stats.record(
                                column.nbytes, entry.nbytes, encoded.codec
                            )
                    if encoded is not None and encoded.codec != "passthrough":
                        if lazy:
                            # Decoded-on-demand residency: the wire
                            # image stays pooled, raw materializes only
                            # if a consumer actually needs it.
                            self._register_lazy(label, encoded, column)
                        else:
                            # Resident data is compressed: every query
                            # (hit or miss) decodes it into a transient
                            # raw buffer — hits skip the link, not the
                            # decode.
                            self.device.allocate(
                                np.empty(encoded.raw_nbytes, dtype=np.uint8),
                                label=f"decode.{label}",
                            )
                            self.charge_decode(encoded, label)
                elif encoded is not None and encoded.codec != "passthrough":
                    if lazy:
                        # Ship and keep only the wire image; no decode
                        # kernel, no raw allocation — yet.
                        self.device.transfer_to_device(
                            encoded.wire_array,
                            label=label,
                            raw_nbytes=column.nbytes,
                            codec=encoded.codec,
                        )
                        self.input_bytes += encoded.wire_nbytes
                        self._compression_stats.record(
                            column.nbytes, encoded.wire_nbytes, encoded.codec
                        )
                        self._register_lazy(label, encoded, column)
                    else:
                        self.device.transfer_to_device(
                            column.values,
                            label=label,
                            wire_nbytes=encoded.wire_nbytes,
                            codec=encoded.codec,
                        )
                        self.input_bytes += encoded.wire_nbytes
                        self._compression_stats.record(
                            column.nbytes, encoded.wire_nbytes, encoded.codec
                        )
                        self.charge_decode(encoded, label)
                else:
                    self.device.transfer_to_device(column.values, label=label)
                    self.input_bytes += column.nbytes
                    if self._compression_stats is not None:
                        self._compression_stats.record(
                            column.nbytes, column.nbytes, "passthrough"
                        )
            scope[name] = column.values
        return scope

    # ------------------------------------------------------------------
    # compressed-transfer accounting
    # ------------------------------------------------------------------
    def charge_decode(self, encoded, label: str) -> None:
        """Charge one on-device decompression kernel: GLOBAL read of
        the wire bytes, GLOBAL write of the decoded raw bytes."""
        self.charge_decode_raw(
            encoded.wire_nbytes,
            encoded.raw_nbytes,
            encoded.length,
            label,
            encoded.codec,
            dtype=str(encoded.dtype),
        )

    def charge_decode_raw(
        self,
        wire_nbytes: int,
        raw_nbytes: int,
        elements: int,
        label: str,
        codec: str,
        dtype: str = "mixed",
    ) -> None:
        name = f"decode.{label}"
        meter = self.device.new_meter()
        meter.record_read(MemoryLevel.GLOBAL, wire_nbytes)
        meter.record_write(MemoryLevel.GLOBAL, raw_nbytes)
        meter.record_instructions(2 * elements)
        self.device.launch(name, "decode", elements, meter)
        if name not in self.kernel_sources:
            self.kernel_sources[name] = decode_kernel_source(
                name, codec, dtype, elements, wire_nbytes, raw_nbytes
            )
        if self._compression_stats is not None:
            self._compression_stats.decode_kernels += 1
            # Observed decode cost by codec feeds the calibration layer
            # (per-codec decode-throughput factors).
            trace = self.device.log.kernels[-1]
            self._compression_stats.record_decode_cost(
                codec, raw_nbytes, trace.time_ms
            )

    def _charge_encode(self, encoded, label: str) -> None:
        """Charge a device-side result-encode kernel before D2H."""
        name = f"encode.{label}"
        meter = self.device.new_meter()
        meter.record_read(MemoryLevel.GLOBAL, encoded.raw_nbytes)
        meter.record_write(MemoryLevel.GLOBAL, encoded.wire_nbytes)
        meter.record_instructions(2 * encoded.length)
        self.device.launch(name, "encode", encoded.length, meter)
        if name not in self.kernel_sources:
            self.kernel_sources[name] = encode_kernel_source(
                name,
                encoded.codec,
                str(encoded.dtype),
                encoded.length,
                encoded.wire_nbytes,
                encoded.raw_nbytes,
            )
        if self._compression_stats is not None:
            self._compression_stats.encode_kernels += 1

    def compression_stats(self):
        """Per-query compression accounting (None when disabled)."""
        return self._compression_stats

    # ------------------------------------------------------------------
    # late materialization (compression="lazy")
    # ------------------------------------------------------------------
    def _register_lazy(self, label: str, encoded, column) -> None:
        state = LazyColumn(label=label, encoded=encoded, values=column.values)
        self.lazy_columns[id(column.values)] = state
        if self._compression_stats is not None:
            self._compression_stats.deferred_columns += 1

    def lazy_lookup(self, array) -> "LazyColumn | None":
        """The undecoded lazy state backing a scope array, if any.

        Sliced views (the vector engine's per-vector scopes) resolve
        through ``array.base`` and force a full decode — per-vector
        partial tracking would charge the decode piecemeal anyway.
        """
        if not self.lazy_columns or array is None:
            return None
        state = self.lazy_columns.get(id(array))
        if state is not None:
            return None if state.decoded else state
        base = getattr(array, "base", None)
        if base is not None:
            state = self.lazy_columns.get(id(base))
            if state is not None and not state.decoded:
                self.ensure_decoded(state)
        return None

    def ensure_decoded(self, state: LazyColumn) -> None:
        """Materialize a wire-resident column in full: the deferred
        decode kernel runs now, exactly as the eager path charges it."""
        if state.decoded:
            return
        state.decoded = True
        if self._compression_stats is not None:
            self._compression_stats.deferred_columns -= 1
        self.device.allocate(
            np.empty(state.encoded.raw_nbytes, dtype=np.uint8),
            label=f"decode.{state.label}",
        )
        self.charge_decode(state.encoded, state.label)

    def lazy_gather(self, state: LazyColumn, rows: int, meter) -> bool:
        """Charge a partial gather-decode (selected positions only)
        fused into the running kernel's meter.

        Returns True when the partial charge was applied — the caller
        skips its normal raw-column read, the gathered values live in
        registers.  Returns False when the column flipped to a full
        decode instead (repeated gathers would exceed the decode cost,
        or the codec has a sequential dependency): the deferred decode
        kernel has then been charged and the caller proceeds eagerly.
        """
        cost = gather_cost(state, rows)
        if cost is not None and 2 * rows <= state.n:
            read_bytes, write_bytes, instructions = cost
            if state.partial_bytes + read_bytes + write_bytes < state.decode_bytes:
                state.partial_bytes += read_bytes + write_bytes
                meter.record_read(MemoryLevel.GLOBAL, read_bytes)
                meter.record_write(MemoryLevel.GLOBAL, write_bytes)
                meter.record_instructions(instructions)
                name = f"gather.{state.label}"
                if name not in self.kernel_sources:
                    self.kernel_sources[name] = gather_decode_source(
                        name,
                        state.codec,
                        str(state.encoded.dtype),
                        int(rows),
                        read_bytes,
                        write_bytes,
                    )
                if self._compression_stats is not None:
                    self._compression_stats.partial_decode_bytes += write_bytes
                return True
        self.ensure_decoded(state)
        return False

    def record_scan(self, state: LazyColumn, plan, meter) -> None:
        """Account one compressed-scan conjunct: charge the fused
        strategy traffic and keep the decision visible (kernel source
        listing + stats note for EXPLAIN)."""
        meter.record_read(MemoryLevel.GLOBAL, plan.read_bytes)
        if plan.onchip_bytes:
            meter.record_read(MemoryLevel.ONCHIP, plan.onchip_bytes)
        meter.record_instructions(plan.instructions)
        state.scanned = True
        name = f"compressed_scan.{state.label}"
        if name not in self.kernel_sources:
            self.kernel_sources[name] = compressed_scan_source(
                name,
                plan.strategy,
                state.codec,
                plan.read_bytes,
                plan.instructions,
                plan.detail,
            )
        if self._compression_stats is not None:
            stats = self._compression_stats
            stats.compressed_scans += 1
            stats.scan_blocks += plan.blocks
            stats.scan_blocks_skipped += plan.blocks_skipped
            note = plan.note(state.decode_bytes)
            if note not in stats.scans:
                stats.scans.append(note)

    # ------------------------------------------------------------------
    def query_placement(self):
        """This query's residency outcome (None when no pool is set)."""
        if self.pool is None:
            return None
        from ..placement.stats import QueryPlacement

        return QueryPlacement(
            hits=self.placement_hits,
            misses=self.placement_misses,
            hit_bytes=self.placement_hit_bytes,
            transferred_bytes=self.input_bytes,
        )

    def close(self) -> None:
        """End-of-query cleanup: unpin pool entries and reclaim every
        transient device allocation (hash tables, payload columns,
        scratch) so only pool-resident buffers stay on the device."""
        if self.pool is not None and self._pinned:
            self.pool.release(self._pinned)
            self._pinned = []
        self.device.release_transient()

    # ------------------------------------------------------------------
    def register_hash_table(self, table_id: str, entry: HashTableEntry) -> None:
        self.hash_tables[table_id] = entry

    def hash_table(self, table_id: str) -> HashTableEntry:
        try:
            return self.hash_tables[table_id]
        except KeyError:
            raise PlanError(f"hash table {table_id!r} was never built") from None

    def register_virtual(self, name: str, arrays: dict[str, np.ndarray], schema: PlanSchema) -> None:
        self.virtual_tables[name] = VirtualTable(arrays=arrays, schema=schema)

    # ------------------------------------------------------------------
    def aggregate_rows(
        self,
        sink: AggregateSink,
        scope: dict[str, np.ndarray],
        mask: np.ndarray,
        output_schema: PlanSchema,
    ) -> AggregationResult:
        """Compute the aggregate outputs of a pipeline (ground truth).

        Engines charge the *cost* of this computation separately (C1,
        C2, or C3 accounting) using the returned cost drivers.
        """
        selected = np.flatnonzero(mask)
        outputs: dict[str, np.ndarray] = {}
        key_bytes = 0
        value_bytes = 0

        if sink.group_keys:
            key_arrays = []
            for name, expr in sink.group_keys:
                values = np.broadcast_to(
                    np.asarray(evaluate(expr, scope)), mask.shape
                )[selected]
                key_arrays.append(np.ascontiguousarray(values))
                key_bytes += output_schema.dtypes[name].itemsize
            codes, uniques = factorize(key_arrays)
            num_groups = len(uniques[0]) if uniques else 0
            for (name, _), unique in zip(sink.group_keys, uniques):
                outputs[name] = unique
        else:
            codes = None
            num_groups = 1

        for spec in sink.aggregates:
            if spec.expr is not None:
                values = np.broadcast_to(
                    np.asarray(evaluate(spec.expr, scope)), mask.shape
                )[selected]
            else:
                values = None
            value_bytes += _accumulator_bytes(spec.op)
            outputs[spec.name] = _reduce_spec(spec, values, codes, num_groups, len(selected))

        # Cast to the declared output types.
        for name, dtype in output_schema.dtypes.items():
            if name in outputs:
                outputs[name] = np.asarray(outputs[name]).astype(dtype.numpy_dtype)
        return AggregationResult(
            outputs=outputs,
            codes=codes,
            num_groups=num_groups,
            entry_bytes=max(key_bytes + value_bytes, 8),
            inputs=len(selected),
        )

    # ------------------------------------------------------------------
    def finalize(
        self, query: PhysicalQuery, outputs: dict[str, np.ndarray]
    ) -> Table:
        """Assemble, transfer (d2h), and post-process the final result."""
        schema = query.output_schema
        assert schema is not None
        columns: dict[str, Column] = {}
        for name in query.output_columns:
            dtype = schema.dtypes[name]
            values = np.asarray(outputs[name]).astype(dtype.numpy_dtype)
            dictionary = schema.dictionaries.get(name)
            columns[name] = Column(dtype, values, dictionary)
        table = Table(columns)

        self.output_bytes = table.nbytes
        if self.device.interconnect is not None:
            # One transfer per result column, as CoGaDB does.
            tracer = active_tracer()
            output_total = 0
            for name, column in table.columns.items():
                wire, codec = column.nbytes, ""
                if self.compression is not None:
                    encoded = self.compression.encoded(column)
                    if encoded.codec != "passthrough":
                        wire, codec = encoded.wire_nbytes, encoded.codec
                        self._charge_encode(encoded, f"result.{name}")
                    self._compression_stats.record(
                        column.nbytes, wire, codec or "passthrough"
                    )
                record = _d2h_record(
                    self.device,
                    wire,
                    f"result.{name}",
                    raw_nbytes=column.nbytes if codec else 0,
                    codec=codec,
                )
                self.device.log.transfers.append(record)
                output_total += wire
                if tracer is not None:
                    attrs = dict(
                        sim_ms=record.time_ms,
                        nbytes=record.nbytes,
                        direction="d2h",
                    )
                    if codec:
                        attrs["codec"] = codec
                        attrs["raw_nbytes"] = column.nbytes
                    tracer.event(f"transfer result.{name}", "transfer", **attrs)
            self.output_bytes = output_total

        # Host-side post-processing (original engine, Section 7).
        if query.sort_keys:
            order = _sort_order(table, query.sort_keys)
            table = table.take(order)
        if query.limit is not None:
            table = table.slice(0, query.limit)
        return table


def _d2h_record(
    device: VirtualCoprocessor,
    nbytes: int,
    label: str,
    raw_nbytes: int = 0,
    codec: str = "",
):
    from ..hardware.traffic import TransferRecord

    assert device.interconnect is not None
    seconds = device.interconnect.transfer_time(nbytes, "d2h")
    return TransferRecord(
        nbytes=nbytes,
        direction="d2h",
        time_ms=seconds * 1e3,
        label=label,
        raw_nbytes=raw_nbytes,
        codec=codec,
    )


def _accumulator_bytes(op: str) -> int:
    if op == "avg":
        return 12  # running sum (8) + count (4)
    if op == "count":
        return 4
    return 8


def _reduce_spec(spec, values, codes, num_groups: int, selected: int):
    if codes is not None:
        if spec.op == "count":
            return grouped_reduce(codes, num_groups, np.zeros(0), "count")
        assert values is not None
        if spec.op == "avg":
            sums = grouped_reduce(codes, num_groups, values, "sum")
            counts = grouped_reduce(codes, num_groups, values, "count")
            return np.asarray(sums, dtype=np.float64) / np.maximum(counts, 1)
        return grouped_reduce(codes, num_groups, values, spec.op)
    # Single-tuple aggregation.
    if spec.op == "count":
        return np.array([selected], dtype=np.int64)
    assert values is not None
    if len(values) == 0:
        return np.array([0.0])
    if spec.op == "avg":
        return np.array([float(np.mean(values))])
    if spec.op == "sum":
        return np.array([np.sum(values)])
    if spec.op == "min":
        return np.array([np.min(values)])
    if spec.op == "max":
        return np.array([np.max(values)])
    raise PlanError(f"unknown aggregate op {spec.op!r}")


def _sort_order(table: Table, sort_keys) -> np.ndarray:
    """Stable multi-key sort order; string columns sort by dictionary
    code, which is lexicographic because dictionaries are
    order-preserving."""
    arrays = []
    for key in reversed(sort_keys):
        column = table.column(key.column)
        values = column.values
        if not key.ascending:
            if values.dtype == np.bool_:
                values = ~values
            else:
                values = -values.astype(np.float64) if values.dtype.kind == "f" else -values.astype(np.int64)
        arrays.append(values)
    return np.lexsort(arrays)
