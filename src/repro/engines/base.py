"""Engine interface and execution results."""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from ..hardware.device import VirtualCoprocessor
from ..hardware.traffic import MemoryLevel, Profile
from ..plan.logical import LogicalPlan, PlanSchema
from ..plan.physical import PhysicalQuery, Pipeline
from ..plan.pipelines import extract_pipelines
from ..storage.database import Database
from ..storage.table import Table
from ..telemetry.trace import Tracer, active_tracer, tracing_enabled
from .runtime import QueryRuntime


@dataclass
class ExecutionResult:
    """A query result plus everything the evaluation section measures."""

    table: Table
    profile: Profile
    engine: str
    device_name: str
    #: Base-column bytes moved host -> device.
    input_bytes: int
    #: Result bytes moved device -> host.
    output_bytes: int
    #: The dashed baseline: time to stream input+output over the link.
    pcie_ms: float
    #: The solid baseline: time to stream input+output through GPU
    #: global memory once.
    memory_bound_ms: float
    #: Generated kernel sources of THIS execution (empty for engines
    #: that do not generate code).  Unlike ``engine.kernel_sources``,
    #: this is immune to concurrent executions on a shared engine.
    kernel_sources: dict[str, str] = field(default_factory=dict)
    #: Per-query serving metrics (:class:`repro.serving.ServingStats`);
    #: populated by the serving layer / cached sessions, else ``None``.
    serving: object | None = None
    #: Per-query residency outcome
    #: (:class:`repro.placement.QueryPlacement`) when a buffer pool is
    #: attached to the device, else ``None``.
    placement: object | None = None
    #: Per-query span tree (:class:`repro.telemetry.trace.QueryTrace`)
    #: when tracing was enabled for this execution, else ``None``.
    trace: object | None = None
    #: Fleet accounting (:class:`repro.scaleout.ScaleOutStats`) when
    #: the query ran through the scale-out executor, else ``None``.
    #: For scale-out results ``total_ms`` is the *serial* sum of all
    #: device work; ``scaleout.makespan_ms`` is the parallel time.
    scaleout: object | None = None
    #: Strategy decision (:class:`repro.optimizer.OptimizerDecision`)
    #: when the adaptive optimizer picked the execution strategy
    #: (``engine="auto"`` / ``devices="auto"``), else ``None``.
    optimizer: object | None = None
    #: Wire-compression accounting
    #: (:class:`repro.compression.CompressionStats`) when a compression
    #: policy was active for this execution, else ``None``.
    compression: object | None = None

    def timeline(self):
        """The ordered span list of this execution (depth-first, start
        time order), or ``[]`` when tracing was off.

        This is the one place benchmarks should read phase timings
        from, instead of re-deriving them from ``serving``/``profile``
        by hand; each span carries host wall-clock microseconds plus a
        ``sim_ms`` attribute for device work.
        """
        return self.trace.timeline() if self.trace is not None else []

    @property
    def kernel_ms(self) -> float:
        return self.profile.kernel_time_ms

    @property
    def transfer_ms(self) -> float:
        return self.profile.transfer_time_ms

    @property
    def total_ms(self) -> float:
        """End-to-end simulated time (transfers + kernels, serialized)."""
        return self.profile.total_time_ms

    @property
    def global_memory_bytes(self) -> int:
        return self.profile.bytes_at(MemoryLevel.GLOBAL)

    @property
    def onchip_bytes(self) -> int:
        return self.profile.bytes_at(MemoryLevel.ONCHIP)

    @property
    def passes(self) -> float:
        """GPU global memory volume / PCIe volume (Table 1's metric)."""
        pcie = self.input_bytes + self.output_bytes
        if pcie == 0:
            return float("inf")
        return self.global_memory_bytes / pcie

    def summary(self) -> str:
        return (
            f"{self.engine:<22s} kernels {self.kernel_ms:8.3f} ms   "
            f"pcie {self.pcie_ms:8.3f} ms   membound {self.memory_bound_ms:8.3f} ms   "
            f"global {self.global_memory_bytes / 1e6:9.2f} MB   rows {self.table.num_rows}"
        )

    def kernel_report(self) -> str:
        """An nvprof-style per-kernel listing: name, kind, elements,
        per-level volumes, atomics, time, and the dominating resource.

        This is the profiler view the paper's Appendix A metrics come
        from (dram_read/write_transactions per kernel).
        """
        lines = [
            f"{'kernel':<34s} {'kind':<10s} {'elements':>9s} {'global KB':>10s} "
            f"{'onchip KB':>10s} {'atomics':>8s} {'ms':>9s}  bound by"
        ]
        for trace in self.profile.kernels:
            meter = trace.meter
            lines.append(
                f"{trace.name:<34.34s} {trace.kind:<10s} {trace.elements:>9d} "
                f"{trace.global_bytes / 1e3:>10.1f} {trace.onchip_bytes / 1e3:>10.1f} "
                f"{meter.atomic_count:>8d} {trace.time_ms:>9.4f}  {trace.bound_by}"
            )
        for record in self.profile.transfers:
            if record.nbytes == 0:
                continue
            lines.append(
                f"{record.label or '(transfer)':<34.34s} {record.direction:<10s} "
                f"{'-':>9s} {record.nbytes / 1e3:>10.1f} {'-':>10s} {'-':>8s} "
                f"{record.time_ms:>9.4f}  link"
            )
        return "\n".join(lines)


class Engine:
    """Base class: pipeline orchestration shared by all engines.

    Engines are *re-entrant*: all per-query state lives on the
    :class:`QueryRuntime` created inside :meth:`execute`, so one engine
    instance may execute queries from several threads concurrently.
    ``self.kernel_sources`` is rebound (never mutated in place) to the
    most recent execution's sources as a debugging convenience; use
    ``ExecutionResult.kernel_sources`` for the per-query view.
    """

    name = "abstract"
    #: Last execution's generated sources (rebound atomically per run).
    kernel_sources: dict[str, str] = {}

    def execute(
        self,
        plan: LogicalPlan | PhysicalQuery,
        database: Database,
        device: VirtualCoprocessor,
        seed: int = 42,
    ) -> ExecutionResult:
        """Run a query and return its result and metrics.

        The device profiler is reset at the start, so the returned
        profile covers exactly this query.  Without a buffer pool the
        device is fully reset (no cross-query caching — HorseQC "does
        not cache data between queries", Section 8.9); with a
        :class:`~repro.placement.BufferPool` attached, pool-resident
        base columns survive between queries and repeat loads skip the
        PCIe charge.  Either way, all transient allocations (hash
        tables, payloads, scratch) are reclaimed when the query ends,
        even on error.
        """
        if isinstance(plan, PhysicalQuery):
            query = plan
        else:
            query = extract_pipelines(plan, database)
        pool = device.placement_pool
        if pool is None:
            device.reset_all()
        else:
            device.begin_query()
        # Tracing: reuse the caller's tracer (Session/Server opened the
        # root span) or, when tracing is enabled and no tracer is
        # active, own a fresh one for this execution.
        tracer = active_tracer()
        owned = tracer is None and tracing_enabled()
        if owned:
            tracer = Tracer(engine=self.name, device=device.profile.name)
        activation = tracer.activate() if owned else contextlib.nullcontext()
        with activation:
            runtime = QueryRuntime(device, database, seed=seed, pool=pool)
            try:
                outputs: dict[str, np.ndarray] | None = None
                for index, pipeline in enumerate(query.pipelines):
                    if tracer is None:
                        produced = self.execute_pipeline(pipeline, runtime)
                    else:
                        produced = self._execute_pipeline_traced(
                            index, pipeline, runtime, tracer
                        )
                    if pipeline.is_final:
                        outputs = produced
                    elif pipeline.output_schema is not None:
                        assert produced is not None
                        runtime.register_virtual(
                            pipeline.output_name,
                            _cast_outputs(produced, pipeline.output_schema),
                            pipeline.output_schema,
                        )
                assert outputs is not None, "query had no final pipeline"
                if tracer is None:
                    table = runtime.finalize(query, outputs)
                else:
                    with tracer.span("finalize", "finalize") as span:
                        table = runtime.finalize(query, outputs)
                        span.attrs.update(
                            rows=table.num_rows,
                            output_bytes=runtime.output_bytes,
                        )
                # Rebind (do not mutate) the convenience attribute: concurrent
                # executions each install their own complete dict, so a reader
                # always sees one query's sources, never a mixture.
                self.kernel_sources = dict(runtime.kernel_sources)
                result = ExecutionResult(
                    table=table,
                    profile=device.log,
                    engine=self.name,
                    device_name=device.profile.name,
                    input_bytes=runtime.input_bytes,
                    output_bytes=runtime.output_bytes,
                    pcie_ms=device.pcie_baseline_ms(
                        runtime.input_bytes, runtime.output_bytes
                    ),
                    memory_bound_ms=device.memory_bound_ms(
                        runtime.input_bytes + runtime.output_bytes
                    ),
                    kernel_sources=dict(runtime.kernel_sources),
                    placement=runtime.query_placement(),
                    compression=runtime.compression_stats(),
                )
                if owned:
                    result.trace = tracer.finish()
                return result
            finally:
                runtime.close()

    def _execute_pipeline_traced(
        self, index: int, pipeline: Pipeline, runtime: QueryRuntime, tracer: Tracer
    ) -> dict[str, np.ndarray] | None:
        """Run one pipeline inside a span carrying the per-pipeline
        accounting EXPLAIN ANALYZE renders: rows in/out, kernels
        launched, per-level byte volumes (sliced exactly from the
        device profile, so pipeline sums always reconcile with
        ``Profile.bytes_at``), PCIe bytes, and simulated ms."""
        device = runtime.device
        kernel_mark = len(device.log.kernels)
        transfer_mark = len(device.log.transfers)
        with tracer.span(
            f"pipeline[{index}]",
            "pipeline",
            shape=pipeline.describe(),
            source=pipeline.source,
            sink=pipeline.output_name,
        ) as span:
            produced = self.execute_pipeline(pipeline, runtime)
            kernels = device.log.kernels[kernel_mark:]
            transfers = device.log.transfers[transfer_mark:]
            span.attrs.update(
                rows_in=_source_rows(pipeline, runtime),
                rows_out=_produced_rows(pipeline, produced, runtime),
                kernels=len(kernels),
                global_bytes=sum(
                    trace.meter.bytes_at(MemoryLevel.GLOBAL) for trace in kernels
                ),
                onchip_bytes=sum(
                    trace.meter.bytes_at(MemoryLevel.ONCHIP) for trace in kernels
                ),
                atomics=sum(trace.meter.atomic_count for trace in kernels),
                pcie_bytes=sum(record.nbytes for record in transfers),
                sim_ms=sum(trace.time_ms for trace in kernels)
                + sum(record.time_ms for record in transfers),
            )
        return produced

    # ------------------------------------------------------------------
    def execute_pipeline(
        self, pipeline: Pipeline, runtime: QueryRuntime
    ) -> dict[str, np.ndarray] | None:
        """Run one pipeline; returns output arrays for result/virtual
        sinks, None for hash-table builds."""
        raise NotImplementedError


def _source_rows(pipeline: Pipeline, runtime: QueryRuntime) -> int:
    """Input cardinality of a pipeline (0 when the source is missing —
    the real error surfaces inside ``execute_pipeline``)."""
    try:
        if pipeline.source_is_virtual:
            return runtime.virtual_tables[pipeline.source].num_rows
        return runtime.database.table(pipeline.source).num_rows
    except Exception:
        return 0


def _produced_rows(
    pipeline: Pipeline, produced: dict[str, np.ndarray] | None, runtime: QueryRuntime
) -> int:
    """Output cardinality: materialized/aggregated rows, or the number
    of build rows for hash-table pipelines."""
    if produced:
        return len(next(iter(produced.values())))
    entry = runtime.hash_tables.get(pipeline.output_name)
    if entry is not None:
        return entry.table.num_rows
    return 0


def _cast_outputs(outputs: dict[str, np.ndarray], schema: PlanSchema) -> dict[str, np.ndarray]:
    cast: dict[str, np.ndarray] = {}
    for name, dtype in schema.dtypes.items():
        cast[name] = np.asarray(outputs[name]).astype(dtype.numpy_dtype)
    return cast
