"""Engine interface and execution results."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hardware.device import VirtualCoprocessor
from ..hardware.traffic import MemoryLevel, Profile
from ..plan.logical import LogicalPlan, PlanSchema
from ..plan.physical import PhysicalQuery, Pipeline
from ..plan.pipelines import extract_pipelines
from ..storage.database import Database
from ..storage.table import Table
from .runtime import QueryRuntime


@dataclass
class ExecutionResult:
    """A query result plus everything the evaluation section measures."""

    table: Table
    profile: Profile
    engine: str
    device_name: str
    #: Base-column bytes moved host -> device.
    input_bytes: int
    #: Result bytes moved device -> host.
    output_bytes: int
    #: The dashed baseline: time to stream input+output over the link.
    pcie_ms: float
    #: The solid baseline: time to stream input+output through GPU
    #: global memory once.
    memory_bound_ms: float
    #: Generated kernel sources of THIS execution (empty for engines
    #: that do not generate code).  Unlike ``engine.kernel_sources``,
    #: this is immune to concurrent executions on a shared engine.
    kernel_sources: dict[str, str] = field(default_factory=dict)
    #: Per-query serving metrics (:class:`repro.serving.ServingStats`);
    #: populated by the serving layer / cached sessions, else ``None``.
    serving: object | None = None
    #: Per-query residency outcome
    #: (:class:`repro.placement.QueryPlacement`) when a buffer pool is
    #: attached to the device, else ``None``.
    placement: object | None = None

    @property
    def kernel_ms(self) -> float:
        return self.profile.kernel_time_ms

    @property
    def transfer_ms(self) -> float:
        return self.profile.transfer_time_ms

    @property
    def total_ms(self) -> float:
        """End-to-end simulated time (transfers + kernels, serialized)."""
        return self.profile.total_time_ms

    @property
    def global_memory_bytes(self) -> int:
        return self.profile.bytes_at(MemoryLevel.GLOBAL)

    @property
    def onchip_bytes(self) -> int:
        return self.profile.bytes_at(MemoryLevel.ONCHIP)

    @property
    def passes(self) -> float:
        """GPU global memory volume / PCIe volume (Table 1's metric)."""
        pcie = self.input_bytes + self.output_bytes
        if pcie == 0:
            return float("inf")
        return self.global_memory_bytes / pcie

    def summary(self) -> str:
        return (
            f"{self.engine:<22s} kernels {self.kernel_ms:8.3f} ms   "
            f"pcie {self.pcie_ms:8.3f} ms   membound {self.memory_bound_ms:8.3f} ms   "
            f"global {self.global_memory_bytes / 1e6:9.2f} MB   rows {self.table.num_rows}"
        )

    def kernel_report(self) -> str:
        """An nvprof-style per-kernel listing: name, kind, elements,
        per-level volumes, atomics, time, and the dominating resource.

        This is the profiler view the paper's Appendix A metrics come
        from (dram_read/write_transactions per kernel).
        """
        lines = [
            f"{'kernel':<34s} {'kind':<10s} {'elements':>9s} {'global KB':>10s} "
            f"{'onchip KB':>10s} {'atomics':>8s} {'ms':>9s}  bound by"
        ]
        for trace in self.profile.kernels:
            meter = trace.meter
            lines.append(
                f"{trace.name:<34.34s} {trace.kind:<10s} {trace.elements:>9d} "
                f"{trace.global_bytes / 1e3:>10.1f} {trace.onchip_bytes / 1e3:>10.1f} "
                f"{meter.atomic_count:>8d} {trace.time_ms:>9.4f}  {trace.bound_by}"
            )
        for record in self.profile.transfers:
            if record.nbytes == 0:
                continue
            lines.append(
                f"{record.label or '(transfer)':<34.34s} {record.direction:<10s} "
                f"{'-':>9s} {record.nbytes / 1e3:>10.1f} {'-':>10s} {'-':>8s} "
                f"{record.time_ms:>9.4f}  link"
            )
        return "\n".join(lines)


class Engine:
    """Base class: pipeline orchestration shared by all engines.

    Engines are *re-entrant*: all per-query state lives on the
    :class:`QueryRuntime` created inside :meth:`execute`, so one engine
    instance may execute queries from several threads concurrently.
    ``self.kernel_sources`` is rebound (never mutated in place) to the
    most recent execution's sources as a debugging convenience; use
    ``ExecutionResult.kernel_sources`` for the per-query view.
    """

    name = "abstract"
    #: Last execution's generated sources (rebound atomically per run).
    kernel_sources: dict[str, str] = {}

    def execute(
        self,
        plan: LogicalPlan | PhysicalQuery,
        database: Database,
        device: VirtualCoprocessor,
        seed: int = 42,
    ) -> ExecutionResult:
        """Run a query and return its result and metrics.

        The device profiler is reset at the start, so the returned
        profile covers exactly this query.  Without a buffer pool the
        device is fully reset (no cross-query caching — HorseQC "does
        not cache data between queries", Section 8.9); with a
        :class:`~repro.placement.BufferPool` attached, pool-resident
        base columns survive between queries and repeat loads skip the
        PCIe charge.  Either way, all transient allocations (hash
        tables, payloads, scratch) are reclaimed when the query ends,
        even on error.
        """
        if isinstance(plan, PhysicalQuery):
            query = plan
        else:
            query = extract_pipelines(plan, database)
        pool = device.placement_pool
        if pool is None:
            device.reset_all()
        else:
            device.begin_query()
        runtime = QueryRuntime(device, database, seed=seed, pool=pool)
        try:
            outputs: dict[str, np.ndarray] | None = None
            for pipeline in query.pipelines:
                produced = self.execute_pipeline(pipeline, runtime)
                if pipeline.is_final:
                    outputs = produced
                elif pipeline.output_schema is not None:
                    assert produced is not None
                    runtime.register_virtual(
                        pipeline.output_name,
                        _cast_outputs(produced, pipeline.output_schema),
                        pipeline.output_schema,
                    )
            assert outputs is not None, "query had no final pipeline"
            table = runtime.finalize(query, outputs)
            # Rebind (do not mutate) the convenience attribute: concurrent
            # executions each install their own complete dict, so a reader
            # always sees one query's sources, never a mixture.
            self.kernel_sources = dict(runtime.kernel_sources)
            return ExecutionResult(
                table=table,
                profile=device.log,
                engine=self.name,
                device_name=device.profile.name,
                input_bytes=runtime.input_bytes,
                output_bytes=runtime.output_bytes,
                pcie_ms=device.pcie_baseline_ms(
                    runtime.input_bytes, runtime.output_bytes
                ),
                memory_bound_ms=device.memory_bound_ms(
                    runtime.input_bytes + runtime.output_bytes
                ),
                kernel_sources=dict(runtime.kernel_sources),
                placement=runtime.query_placement(),
            )
        finally:
            runtime.close()

    # ------------------------------------------------------------------
    def execute_pipeline(
        self, pipeline: Pipeline, runtime: QueryRuntime
    ) -> dict[str, np.ndarray] | None:
        """Run one pipeline; returns output arrays for result/virtual
        sinks, None for hash-table builds."""
        raise NotImplementedError


def _cast_outputs(outputs: dict[str, np.ndarray], schema: PlanSchema) -> dict[str, np.ndarray]:
    cast: dict[str, np.ndarray] = {}
    for name, dtype in schema.dtypes.items():
        cast[name] = np.asarray(outputs[name]).astype(dtype.numpy_dtype)
    return cast
