"""The operator-at-a-time engine (the CoGaDB baseline, Figure 6).

Every relational operator runs as its own primitive-kernel sequence
with full materialization in GPU global memory between operators:

* select / probe -> flags kernel + hierarchical prefix sum + aligned
  write that compacts every live column;
* map            -> one streaming kernel reading inputs and writing
  the computed column;
* grouped aggregation -> sort-based C1 (global radix sort + segmented
  reduce), whose cost is dominated by the sort (Experiment 2);
* single-tuple aggregation -> hierarchical B1 reduce.

This is the memory-hungry baseline every HorseQC variant is compared
against: the repeated aligned writes are the 2.2 GB "gather" volumes of
Figure 5.
"""

from __future__ import annotations

import numpy as np

from ..expressions.eval import evaluate
from ..expressions.expr import ColumnRef, Expr
from ..hardware.traffic import MemoryLevel
from ..kernels.codegen import sink_input_columns
from ..plan.physical import (
    AggregateSink,
    BuildSink,
    FilterStage,
    MapStage,
    MaterializeSink,
    Pipeline,
    ProbeStage,
)
from ..primitives.gather import INDEX_BYTES, random_access_volume
from ..primitives.hashtable import JoinHashTable
from ..primitives.prefix import device_scan
from ..primitives.reduce import device_reduce
from ..primitives.sortlib import device_radix_sort, device_segmented_reduce
from .base import Engine
from .runtime import HashTableEntry, QueryRuntime


class OperatorAtATimeEngine(Engine):
    """CoGaDB-style execution: materialize after every operator."""

    name = "operator-at-a-time"

    def execute_pipeline(
        self, pipeline: Pipeline, runtime: QueryRuntime
    ) -> dict[str, np.ndarray] | None:
        device = runtime.device
        scope = {
            name: np.asarray(values)
            for name, values in runtime.load_source(pipeline).items()
        }
        count = self._source_rows(pipeline, runtime, scope)
        live_after = _liveness(pipeline)

        for index, stage in enumerate(pipeline.stages):
            live = live_after[index]
            if isinstance(stage, FilterStage):
                scope, count = self._run_filter(
                    device, scope, count, stage.predicate, live, pipeline, index
                )
            elif isinstance(stage, MapStage):
                self._run_map(device, scope, count, stage, pipeline)
            elif isinstance(stage, ProbeStage):
                scope, count = self._run_probe(
                    device, runtime, scope, count, stage, live, pipeline, index
                )
            else:  # pragma: no cover - exhaustive
                raise AssertionError(f"unknown stage {type(stage).__name__}")

        sink = pipeline.sink
        if isinstance(sink, MaterializeSink):
            return {name: scope[name] for name in sink.outputs}
        if isinstance(sink, BuildSink):
            self._run_build(device, runtime, scope, count, sink, pipeline)
            return None
        if isinstance(sink, AggregateSink):
            return self._run_aggregate(device, runtime, scope, count, sink, pipeline)
        raise AssertionError(f"unhandled sink {type(sink).__name__}")

    # ------------------------------------------------------------------
    @staticmethod
    def _source_rows(pipeline: Pipeline, runtime: QueryRuntime, scope) -> int:
        if scope:
            return len(next(iter(scope.values())))
        if pipeline.source_is_virtual:
            return runtime.virtual_tables[pipeline.source].num_rows
        return runtime.database.table(pipeline.source).num_rows

    def _itemsize(self, pipeline: Pipeline, name: str) -> int:
        dtype = pipeline.scope_schema.dtypes.get(name)
        return dtype.itemsize if dtype is not None else 4

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------
    def _run_filter(
        self,
        device,
        scope: dict[str, np.ndarray],
        count: int,
        predicate: Expr,
        live: set[str],
        pipeline: Pipeline,
        index: int,
    ) -> tuple[dict[str, np.ndarray], int]:
        # Kernel 1: evaluate the predicate, write flags.
        meter = device.new_meter()
        for name in sorted(predicate.columns()):
            meter.record_read(MemoryLevel.GLOBAL, count * self._itemsize(pipeline, name))
        meter.record_write(MemoryLevel.GLOBAL, count * INDEX_BYTES)
        meter.record_instructions(count * predicate.size())
        device.launch(f"{pipeline.name}.select{index}", "scan", count, meter)
        flags = np.broadcast_to(
            np.asarray(evaluate(predicate, scope), dtype=bool), (count,)
        )

        # Kernels 2-4: hierarchical prefix sum.
        scan = device_scan(device, flags, label=f"{pipeline.name}.prefix{index}")

        # Kernel 5: aligned write — compact every live column.
        scope = self._aligned_write(
            device, scope, flags, scan.total, live, pipeline, f"write{index}"
        )
        return scope, scan.total

    def _run_map(self, device, scope, count: int, stage: MapStage, pipeline: Pipeline) -> None:
        meter = device.new_meter()
        for name in sorted(stage.expr.columns()):
            meter.record_read(MemoryLevel.GLOBAL, count * self._itemsize(pipeline, name))
        meter.record_write(
            MemoryLevel.GLOBAL, count * self._itemsize(pipeline, stage.name)
        )
        meter.record_instructions(count * stage.expr.size())
        device.launch(f"{pipeline.name}.map_{stage.name}", "map", count, meter)
        values = np.broadcast_to(np.asarray(evaluate(stage.expr, scope)), (count,))
        scope[stage.name] = np.ascontiguousarray(values)

    def _run_probe(
        self,
        device,
        runtime: QueryRuntime,
        scope: dict[str, np.ndarray],
        count: int,
        stage: ProbeStage,
        live: set[str],
        pipeline: Pipeline,
        index: int,
    ) -> tuple[dict[str, np.ndarray], int]:
        entry = runtime.hash_table(stage.table_id)

        # Kernel 1: probe, write match rows + flags.
        meter = device.new_meter()
        key_arrays = []
        for key in stage.probe_keys:
            for name in sorted(key.columns()):
                meter.record_read(
                    MemoryLevel.GLOBAL, count * self._itemsize(pipeline, name)
                )
            values = np.broadcast_to(np.asarray(evaluate(key, scope)), (count,))
            key_arrays.append(np.ascontiguousarray(values))
        rows = entry.table.probe(meter, key_arrays, device.profile.l2_capacity)
        meter.record_write(MemoryLevel.GLOBAL, 2 * count * INDEX_BYTES)
        device.launch(f"{pipeline.name}.probe{index}", "probe", count, meter)

        found = rows >= 0
        if stage.kind in ("inner", "semi"):
            flags = found
        elif stage.kind == "anti":
            flags = ~found
        else:  # left join: every probe row survives
            flags = np.ones(count, dtype=bool)

        if stage.kind == "left":
            new_count = count
            # No compaction; gather payload with defaults for misses.
            for name in stage.payload:
                scope[name] = self._gather_payload(
                    device, entry, rows, name, count, pipeline,
                    default=stage.payload_defaults.get(name),
                )
        else:
            scan = device_scan(device, flags, label=f"{pipeline.name}.prefix{index}")
            new_count = scan.total
            scope = self._aligned_write(
                device, scope, flags, new_count, live, pipeline, f"write{index}"
            )
            matched_rows = rows[flags]
            for name in stage.payload:
                scope[name] = self._gather_payload(
                    device, entry, matched_rows, name, new_count, pipeline
                )
        count = new_count

        if stage.residual is not None:
            scope, count = self._run_filter(
                device, scope, count, stage.residual,
                live - set(), pipeline, index * 100 + 99,
            )
        return scope, count

    def _gather_payload(
        self, device, entry, rows: np.ndarray, name: str, count: int,
        pipeline: Pipeline, default=None,
    ) -> np.ndarray:
        source = entry.payload[name]
        itemsize = source.dtype.itemsize
        meter = device.new_meter()
        meter.record_read(MemoryLevel.GLOBAL, count * INDEX_BYTES)
        meter.record_read(
            MemoryLevel.GLOBAL,
            random_access_volume(count, itemsize, source.nbytes, device.profile.l2_capacity),
        )
        meter.record_write(MemoryLevel.GLOBAL, count * itemsize)
        meter.record_instructions(count)
        device.launch(f"{pipeline.name}.gather_{name}", "gather", count, meter)
        if len(source) == 0:
            values = np.zeros(len(rows), dtype=source.dtype)
        else:
            values = source[np.clip(rows, 0, None)]
        if default is not None:
            fill = np.asarray(default).astype(source.dtype)
            values = np.where(rows >= 0, values, fill)
        return np.ascontiguousarray(values)

    def _aligned_write(
        self,
        device,
        scope: dict[str, np.ndarray],
        flags: np.ndarray,
        selected: int,
        live: set[str],
        pipeline: Pipeline,
        label: str,
    ) -> dict[str, np.ndarray]:
        """Compact every live column into a dense array (one kernel)."""
        keep = [name for name in scope if name in live]
        meter = device.new_meter()
        count = len(flags)
        meter.record_read(MemoryLevel.GLOBAL, 2 * count * INDEX_BYTES)  # flags+prefix
        for name in keep:
            itemsize = scope[name].dtype.itemsize
            meter.record_read(MemoryLevel.GLOBAL, count * itemsize)
            meter.record_write(MemoryLevel.GLOBAL, selected * itemsize)
        meter.record_instructions(count * max(len(keep), 1))
        device.launch(f"{pipeline.name}.{label}", "gather", count, meter)
        return {name: np.ascontiguousarray(scope[name][flags]) for name in keep}

    # ------------------------------------------------------------------
    # sinks
    # ------------------------------------------------------------------
    def _run_build(
        self, device, runtime, scope, count: int, sink: BuildSink, pipeline: Pipeline
    ) -> None:
        key_arrays = []
        for key in sink.keys:
            key_arrays.append(self._materialize_expr(device, scope, count, key, pipeline))
        table = JoinHashTable.build(device, key_arrays, name=sink.table_id)
        payload: dict[str, np.ndarray] = {}
        for name in sink.payload:
            values = np.ascontiguousarray(scope[name])
            device.allocate(values, label=f"{sink.table_id}.{name}")
            payload[name] = values
        runtime.register_hash_table(sink.table_id, HashTableEntry(table, payload))

    def _run_aggregate(
        self, device, runtime, scope, count: int, sink: AggregateSink, pipeline: Pipeline
    ) -> dict[str, np.ndarray]:
        assert pipeline.output_schema is not None
        mask = np.ones(count, dtype=bool)
        # Materialize computed key / value columns first (map kernels).
        for _, expr in sink.group_keys:
            if not isinstance(expr, ColumnRef):
                self._materialize_expr(device, scope, count, expr, pipeline)
        value_bytes = 0
        for spec in sink.aggregates:
            if spec.expr is not None:
                values = self._materialize_expr(device, scope, count, spec.expr, pipeline)
                value_bytes += values.dtype.itemsize

        result = runtime.aggregate_rows(sink, scope, mask, pipeline.output_schema)
        if result.codes is not None:
            # C1: global sort by key, reduce segments (Experiment 2's
            # flat, sort-dominated curve).
            device_radix_sort(
                device, result.codes, payload_bytes=max(value_bytes, 4),
                label=f"{pipeline.name}.group_sort",
            )
            device_segmented_reduce(
                device,
                np.sort(result.codes),
                value_bytes_per_row=max(value_bytes, 4),
                num_groups=result.num_groups,
                label=f"{pipeline.name}.group_reduce",
            )
        else:
            for spec in sink.aggregates:
                if spec.expr is not None:
                    values = np.broadcast_to(
                        np.asarray(evaluate(spec.expr, scope)), (count,)
                    )
                else:
                    values = np.zeros(count, dtype=np.int32)
                device_reduce(
                    device,
                    values,
                    op="sum" if spec.op in ("count", "avg") else spec.op,
                    label=f"{pipeline.name}.{spec.name}",
                )
        return result.outputs

    def _materialize_expr(
        self, device, scope, count: int, expr: Expr, pipeline: Pipeline
    ) -> np.ndarray:
        """Evaluate an expression; charge a map kernel unless it is a
        plain column reference (already materialized)."""
        values = np.ascontiguousarray(
            np.broadcast_to(np.asarray(evaluate(expr, scope)), (count,))
        )
        if not isinstance(expr, ColumnRef):
            meter = device.new_meter()
            for name in sorted(expr.columns()):
                meter.record_read(
                    MemoryLevel.GLOBAL, count * self._itemsize(pipeline, name)
                )
            meter.record_write(MemoryLevel.GLOBAL, values.nbytes)
            meter.record_instructions(count * expr.size())
            device.launch(f"{pipeline.name}.map_expr", "map", count, meter)
        return values


def _liveness(pipeline: Pipeline) -> list[set[str]]:
    """Columns that must survive the materialization after each stage."""
    stages = pipeline.stages
    live_after: list[set[str]] = [set() for _ in stages]
    later = set(sink_input_columns(pipeline.sink))
    for index in range(len(stages) - 1, -1, -1):
        stage = stages[index]
        if isinstance(stage, ProbeStage) and stage.residual is not None:
            later |= stage.residual.columns() - set(stage.payload)
        live_after[index] = set(later)
        if isinstance(stage, FilterStage):
            later |= stage.predicate.columns()
        elif isinstance(stage, MapStage):
            later.discard(stage.name)
            later |= stage.expr.columns()
        elif isinstance(stage, ProbeStage):
            later -= set(stage.payload)
            for key in stage.probe_keys:
                later |= key.columns()
    return live_after
