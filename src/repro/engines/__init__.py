"""Execution engines: the paper's micro execution models.

* :class:`OperatorAtATimeEngine` — CoGaDB-style baseline (Figure 6)
* :class:`MultiPassEngine`       — HorseQC multi-pass compilation
  (Section 4: count / prefix sum / write)
* :class:`CompoundEngine`        — HorseQC fully pipelined compound
  kernels (Sections 5-6), in ``atomic`` (Pipelined) and ``lrgp_*``
  (Resolution) modes
* :class:`CpuOperatorAtATimeEngine` — MonetDB-like CPU baseline
"""

from ..errors import ConfigurationError, ReproError
from .base import Engine, ExecutionResult
from .compound import CompoundEngine
from .cpu_engine import CpuOperatorAtATimeEngine, make_cpu_device
from .multipass import MultiPassEngine
from .operator_at_a_time import OperatorAtATimeEngine
from .runtime import AggregationResult, HashTableEntry, QueryRuntime, VirtualTable
from .vector_at_a_time import VectorAtATimeEngine

#: Engine aliases accepted by :func:`make_engine` (and hence by
#: ``Session.execute`` and ``Server.submit``).
ENGINE_FACTORIES = {
    "operator-at-a-time": OperatorAtATimeEngine,
    "multipass": MultiPassEngine,
    "pipelined": lambda: CompoundEngine("atomic"),
    "resolution": lambda: CompoundEngine("lrgp_simd"),
    "resolution-simd": lambda: CompoundEngine("lrgp_simd"),
    "resolution-we": lambda: CompoundEngine("lrgp_we"),
    "cpu": CpuOperatorAtATimeEngine,
    "vector": VectorAtATimeEngine,
}


def make_engine(name: str) -> Engine:
    """Instantiate an engine by alias (see :data:`ENGINE_FACTORIES`)."""
    try:
        factory = ENGINE_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(ENGINE_FACTORIES))
        raise ConfigurationError(
            f"unknown engine {name!r}; known engines: {known} "
            "('auto' is accepted by Session/Server/CLI for the "
            "adaptive optimizer)"
        ) from None
    return factory()


__all__ = [
    "ENGINE_FACTORIES",
    "make_engine",
    "AggregationResult",
    "CompoundEngine",
    "CpuOperatorAtATimeEngine",
    "Engine",
    "ExecutionResult",
    "HashTableEntry",
    "MultiPassEngine",
    "OperatorAtATimeEngine",
    "QueryRuntime",
    "VectorAtATimeEngine",
    "VirtualTable",
    "make_cpu_device",
]
