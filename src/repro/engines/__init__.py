"""Execution engines: the paper's micro execution models.

* :class:`OperatorAtATimeEngine` — CoGaDB-style baseline (Figure 6)
* :class:`MultiPassEngine`       — HorseQC multi-pass compilation
  (Section 4: count / prefix sum / write)
* :class:`CompoundEngine`        — HorseQC fully pipelined compound
  kernels (Sections 5-6), in ``atomic`` (Pipelined) and ``lrgp_*``
  (Resolution) modes
* :class:`CpuOperatorAtATimeEngine` — MonetDB-like CPU baseline
"""

from .base import Engine, ExecutionResult
from .compound import CompoundEngine
from .cpu_engine import CpuOperatorAtATimeEngine, make_cpu_device
from .multipass import MultiPassEngine
from .operator_at_a_time import OperatorAtATimeEngine
from .runtime import AggregationResult, HashTableEntry, QueryRuntime, VirtualTable
from .vector_at_a_time import VectorAtATimeEngine

__all__ = [
    "AggregationResult",
    "CompoundEngine",
    "CpuOperatorAtATimeEngine",
    "Engine",
    "ExecutionResult",
    "HashTableEntry",
    "MultiPassEngine",
    "OperatorAtATimeEngine",
    "QueryRuntime",
    "VectorAtATimeEngine",
    "VirtualTable",
    "make_cpu_device",
]
