"""Vector-at-a-time on a GPU — Section 3's rejected design, quantified.

The paper argues that the CPU sweet spot of vector-at-a-time processing
does not exist on GPUs: "Kernel invocations are an order of magnitude
more expensive than CPU function calls. Furthermore, GPUs need much
larger batch sizes to facilitate over-subscription ... batches, which
fit in the GPU caches, are too small to be processed efficiently."

This engine implements that design anyway so the argument can be
measured: each fusion operator runs as a sequence of compound-kernel
launches over cache-sized vectors. Every launch pays the kernel-launch
overhead, and vectors smaller than the device's resident thread count
execute at proportionally reduced occupancy.

Restrictions: AVG aggregates cannot be merged across vectors (as with
block streaming), and build-sink pipelines run un-vectorized (a hash
table must see all build rows).
"""

from __future__ import annotations

import numpy as np

from ..kernels.codegen import generate_compound_kernel
from ..kernels.context import KernelContext
from ..plan.physical import BuildSink, Pipeline
from ..scaleout.merge import merge_partials
from .base import Engine
from .compound import CompoundEngine
from .runtime import QueryRuntime


class VectorAtATimeEngine(Engine):
    """Compound-kernel logic over cache-sized vectors (one launch each)."""

    def __init__(self, vector_rows: int = 1024, mode: str = "lrgp_simd"):
        if vector_rows <= 0:
            raise ValueError("vector_rows must be positive")
        self.vector_rows = vector_rows
        self.mode = mode
        self.name = f"vector-at-a-time[{vector_rows}]"
        self._fallback = CompoundEngine(mode)

    def execute_pipeline(
        self, pipeline: Pipeline, runtime: QueryRuntime
    ) -> dict[str, np.ndarray] | None:
        if isinstance(pipeline.sink, BuildSink):
            # Hash-table builds must observe every row at once.
            self._fallback.mode = self.mode
            return self._fallback.execute_pipeline(pipeline, runtime)

        scope = runtime.load_source(pipeline)
        if not scope:
            return self._fallback.execute_pipeline(pipeline, runtime)
        total_rows = len(next(iter(scope.values())))
        kernel = generate_compound_kernel(pipeline)

        partials: list[dict[str, np.ndarray]] = []
        counts: list[int] = []
        start = 0
        index = 0
        while start < total_rows or (total_rows == 0 and index == 0):
            stop = min(start + self.vector_rows, total_rows)
            vector = {name: values[start:stop] for name, values in scope.items()}
            ctx = KernelContext(
                runtime,
                vector,
                pipeline.scope_schema,
                mode=self.mode,
                sink=pipeline.sink,
                output_schema=pipeline.output_schema,
            )
            kernel(ctx)
            occupancy = min(1.0, max(ctx.n, 1) / runtime.device.profile.threads_resident)
            runtime.device.launch(
                f"{kernel.name}.vector{index}",
                "compound",
                ctx.n,
                ctx.meter,
                occupancy=occupancy,
            )
            partials.append(dict(ctx.outputs))
            counts.append(ctx.aggregation.inputs if ctx.aggregation is not None else 0)
            start = stop
            index += 1
            if total_rows == 0:
                break
        return self._merge(pipeline, partials, counts)

    # ------------------------------------------------------------------
    def _merge(
        self,
        pipeline: Pipeline,
        partials: list[dict[str, np.ndarray]],
        counts: list[int],
    ) -> dict[str, np.ndarray]:
        """Combine per-vector outputs via the shared partial-merge
        layer (:mod:`repro.scaleout.merge`).  ``counts`` (qualifying
        rows per vector, from ``ctx.aggregation``) mask the empty-
        selection min/max placeholders; no output-schema cast here —
        the engine's ordinary output handling casts downstream."""
        return merge_partials(
            pipeline.sink, None, partials, counts=counts, context="vectors"
        )
