"""The multi-pass query-compilation engine (Section 4).

Each fusion operator executes in three phases: a generated ``count``
kernel evaluates the cardinality-affecting primitives and writes
selection flags; a hierarchical device prefix sum (technique A1,
library-style, as the paper's boost::compute baseline) computes write
positions; a generated ``write`` kernel re-executes the primitives for
flagged threads and materializes the outputs.  Reduction sinks use the
pipeline-breaking library implementations B1 (global reduce) and C1
(global sort + segmented reduce).
"""

from __future__ import annotations

import numpy as np

from ..errors import PlanError
from ..kernels.codegen import generate_count_kernel, generate_write_kernel
from ..kernels.context import KernelContext
from ..plan.physical import AggregateSink, BuildSink, MaterializeSink, Pipeline
from ..primitives.hashtable import JoinHashTable
from ..primitives.prefix import device_scan
from ..primitives.reduce import device_reduce
from ..primitives.sortlib import device_radix_sort, device_segmented_reduce
from .base import Engine
from .runtime import HashTableEntry, QueryRuntime


class MultiPassEngine(Engine):
    """HorseQC: Multi-pass — count / prefix sum / write per pipeline."""

    name = "horseqc-multipass"

    def __init__(self):
        self.kernel_sources: dict[str, str] = {}

    def execute_pipeline(
        self, pipeline: Pipeline, runtime: QueryRuntime
    ) -> dict[str, np.ndarray] | None:
        device = runtime.device
        scope = runtime.load_source(pipeline, lazy_capable=True)

        # Phase 1: count kernel.
        count_ctx = KernelContext(
            runtime,
            scope,
            pipeline.scope_schema,
            mode="multipass",
            rows=runtime.source_rows(pipeline),
            pipeline=pipeline,
        )
        count_kernel = generate_count_kernel(pipeline)
        runtime.kernel_sources[f"{pipeline.name}.count"] = count_kernel.source
        count_kernel(count_ctx)
        device.launch(count_kernel.name, "count", count_ctx.n, count_ctx.meter)
        flags = count_ctx.flags
        assert flags is not None

        # Phase 2: hierarchical prefix sum over the materialized flags.
        scan = device_scan(device, flags, label=f"{pipeline.name}.prefix_sum")

        # Phase 3: write kernel (re-executes primitives for survivors).
        write_ctx = KernelContext(
            runtime,
            scope,
            pipeline.scope_schema,
            mode="multipass",
            base_count=scan.total,
            sink=pipeline.sink,
            output_schema=pipeline.output_schema,
            rows=runtime.source_rows(pipeline),
            pipeline=pipeline,
        )
        write_ctx.install_flags(flags)
        write_ctx.set_positions(scan)
        write_kernel = generate_write_kernel(pipeline)
        runtime.kernel_sources[f"{pipeline.name}.write"] = write_kernel.source
        write_kernel(write_ctx)
        device.launch(write_kernel.name, "write", write_ctx.n, write_ctx.meter)

        sink = pipeline.sink
        if isinstance(sink, MaterializeSink):
            return write_ctx.outputs
        if isinstance(sink, BuildSink):
            return self._finish_build(pipeline, runtime, write_ctx)
        if isinstance(sink, AggregateSink):
            return self._finish_aggregate(pipeline, runtime, write_ctx, flags)
        raise AssertionError(f"unhandled sink {type(sink).__name__}")

    # ------------------------------------------------------------------
    def _finish_build(
        self, pipeline: Pipeline, runtime: QueryRuntime, write_ctx: KernelContext
    ) -> None:
        """Build the hash table from the materialized key columns."""
        sink = pipeline.sink
        assert isinstance(sink, BuildSink)
        keys = [
            write_ctx.intermediates[f"key{index}"] for index in range(len(sink.keys))
        ]
        table = JoinHashTable.build(
            runtime.device, keys, name=sink.table_id
        )
        payload: dict[str, np.ndarray] = {}
        for name in sink.payload:
            values = write_ctx.intermediates[f"payload:{name}"]
            runtime.device.allocate(values, label=f"{sink.table_id}.{name}")
            payload[name] = values
        runtime.register_hash_table(sink.table_id, HashTableEntry(table, payload))
        return None

    # ------------------------------------------------------------------
    def _finish_aggregate(
        self,
        pipeline: Pipeline,
        runtime: QueryRuntime,
        write_ctx: KernelContext,
        flags: np.ndarray,
    ) -> dict[str, np.ndarray]:
        """Library reductions over the materialized intermediates."""
        sink = pipeline.sink
        assert isinstance(sink, AggregateSink)
        if pipeline.output_schema is None:
            raise PlanError(f"aggregate pipeline {pipeline.name} lacks an output schema")
        # write_ctx.scope carries the payload columns the probes added.
        result = runtime.aggregate_rows(
            sink, write_ctx.scope, flags, pipeline.output_schema
        )

        if result.codes is not None:
            # C1: global sort by group key, then reduce segments.
            value_bytes = sum(
                write_ctx.intermediates[f"value:{spec.name}"].dtype.itemsize
                for spec in sink.aggregates
                if spec.expr is not None
            )
            device_radix_sort(
                runtime.device,
                result.codes,
                payload_bytes=value_bytes,
                label=f"{pipeline.name}.group_sort",
            )
            device_segmented_reduce(
                runtime.device,
                np.sort(result.codes),
                value_bytes_per_row=max(value_bytes, 4),
                num_groups=result.num_groups,
                label=f"{pipeline.name}.group_reduce",
            )
        else:
            # B1: one hierarchical global reduce per aggregate.
            for spec in sink.aggregates:
                key = f"value:{spec.name}"
                values = write_ctx.intermediates.get(
                    key, np.zeros(result.inputs, dtype=np.int32)
                )
                device_reduce(
                    runtime.device,
                    values,
                    op="sum" if spec.op in ("count", "avg") else spec.op,
                    label=f"{pipeline.name}.{spec.name}",
                )
        return result.outputs
