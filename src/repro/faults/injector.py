"""The runtime half of fault injection: arming a plan over a fleet.

A :class:`FaultInjector` is created per query execution (the plan
itself stays immutable and replayable).  The scale-out executor calls
its three hooks at the injection points:

* :meth:`on_build` — before a device runs the broadcast build sides;
* :meth:`before_morsel` — before each fact-morsel attempt (device
  loss / OOM / straggler stall / timeout fire here);
* :meth:`deliver` — on the gathered partial of a morsel (corruption
  fires here: the partial is bit-flipped and the checksum verification
  in the executor flags the mismatch).

Spec matching is keyed by device/morsel/op, and each spec carries a
finite ``times`` budget, so firings are a deterministic function of the
execution schedule — retries of the same morsel consume budget in
order, which is what makes "fail twice then succeed" expressible.

All hooks are thread-safe (device workers run concurrently); because
specs are pinned to a device and/or a morsel, and a given morsel runs
on exactly one device per wave, the firing sequence per spec does not
depend on thread interleaving.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass

import numpy as np

from ..errors import DeviceMemoryError, MorselTimeoutError, TransferCorruptionError
from ..telemetry.trace import active_tracer
from .plan import FaultPlan, FaultSpec
from .recovery import RetryPolicy


def partial_checksum(arrays: dict) -> int:
    """CRC-32 over a gathered partial (column names + raw bytes).

    Computed device-side before the d2h transfer and re-verified on the
    host, so in-flight corruption is detected deterministically.
    """
    crc = 0
    for name in sorted(arrays):
        crc = zlib.crc32(name.encode("utf-8"), crc)
        values = np.ascontiguousarray(np.asarray(arrays[name]))
        crc = zlib.crc32(values.tobytes(), crc)
    return crc


@dataclass(frozen=True)
class FiredFault:
    """One fault firing (the injector's replay log)."""

    kind: str
    device: int
    morsel: int | None
    op: str


class FaultInjector:
    """Per-query armed state of a :class:`~repro.faults.plan.FaultPlan`."""

    def __init__(self, plan: FaultPlan, policy: RetryPolicy | None = None):
        self.plan = plan
        self.policy = policy if policy is not None else RetryPolicy()
        self._lock = threading.Lock()
        #: Remaining firings per spec (parallel to ``plan.specs``).
        self._remaining = [spec.times for spec in plan.specs]
        #: Every fault fired so far, in firing order per device.
        self.fired: list[FiredFault] = []

    # ------------------------------------------------------------------
    def _take(
        self,
        op: str,
        device: int,
        morsel: int | None,
        corruption: bool = False,
    ) -> list[FaultSpec]:
        """Consume (and log) every spec matching this execution event.

        Corruption specs fire at the gather point (:meth:`deliver`),
        every other kind at the pre-execution points, so each call
        consumes one phase's kinds only.
        """
        taken: list[FaultSpec] = []
        with self._lock:
            for index, spec in enumerate(self.plan.specs):
                if (spec.kind == "corruption") != corruption:
                    continue
                if self._remaining[index] < 1 or not spec.matches(op, device, morsel):
                    continue
                self._remaining[index] -= 1
                self.fired.append(
                    FiredFault(kind=spec.kind, device=device, morsel=morsel, op=op)
                )
                taken.append(spec)
        return taken

    def counts(self) -> dict:
        """Faults fired so far, by kind."""
        with self._lock:
            out: dict = {}
            for fired in self.fired:
                out[fired.kind] = out.get(fired.kind, 0) + 1
            return out

    def fired_count(self) -> int:
        """Total firings so far (marker for :meth:`fired_matching`)."""
        with self._lock:
            return len(self.fired)

    def fired_matching(
        self, start: int, device: int, morsel: int | None = None
    ) -> bool:
        """Did any firing since marker ``start`` hit this device (and
        morsel, when given)?  The executor uses this to tell injected
        failures (finite budgets — worth a fresh round) from genuine
        ones (which exhaust)."""
        with self._lock:
            return any(
                fired.device == device
                and (morsel is None or fired.morsel == morsel)
                for fired in self.fired[start:]
            )

    # ------------------------------------------------------------------
    # injection points
    # ------------------------------------------------------------------
    def on_build(self, device_index: int, device) -> None:
        """Fire build-phase faults for ``device_index`` (may raise)."""
        self._apply(self._take("build", device_index, None), device_index, None, device)

    def before_morsel(self, device_index: int, morsel: int, device) -> None:
        """Fire pre-execution faults for one morsel attempt (may raise)."""
        self._apply(
            self._take("morsel", device_index, morsel), device_index, morsel, device
        )

    def deliver(self, device_index: int, morsel: int, produced: dict) -> dict:
        """The gathered partial as it arrives on the host: corrupted
        when a corruption fault fires, untouched otherwise.  The caller
        verifies the checksum and raises on mismatch."""
        specs = self._take("morsel", device_index, morsel, corruption=True)
        if not specs:
            return produced
        self._trace("corruption", device_index, morsel)
        return _corrupt(produced)

    # ------------------------------------------------------------------
    def _apply(
        self,
        specs: list[FaultSpec],
        device_index: int,
        morsel: int | None,
        device,
    ) -> None:
        """Apply already-consumed non-corruption specs, raising the
        strongest failure last-wins order: loss > oom > timeout."""
        error = None
        for spec in specs:
            if spec.kind == "straggler":
                self._trace("straggler", device_index, morsel, delay_ms=spec.delay_ms)
                device.stall(
                    spec.delay_ms,
                    label=f"fault.straggler"
                    + (f".p{morsel}" if morsel is not None else ".build"),
                )
                timeout = self.policy.morsel_timeout_ms
                if (
                    timeout is not None
                    and morsel is not None
                    and spec.delay_ms >= timeout
                ):
                    error = MorselTimeoutError(
                        device_index, morsel, spec.delay_ms, timeout
                    )
            elif spec.kind == "oom":
                self._trace("oom", device_index, morsel)
                capacity = device.profile.memory_capacity
                available = capacity - device.allocated_bytes
                error = DeviceMemoryError(available + 1, available, capacity)
            elif spec.kind == "device-loss":
                self._trace("device-loss", device_index, morsel)
                # Mark the device dead and let the engine trip over it at
                # its next allocation/transfer/launch — loss lands
                # mid-morsel, exercising the partial-state cleanup path.
                device.mark_lost()
        if error is not None:
            raise error

    def _trace(self, kind: str, device: int, morsel: int | None, **attrs) -> None:
        tracer = active_tracer()
        if tracer is not None:
            where = f"p{morsel}" if morsel is not None else "build"
            tracer.event(
                f"fault {kind} {where}", "fault", device=device, morsel=morsel,
                kind=kind, **attrs,
            )


def _corrupt(produced: dict) -> dict:
    """A copy of ``produced`` with one byte flipped in the first
    non-empty column (simulated in-flight corruption)."""
    corrupted = {name: np.array(values, copy=True) for name, values in produced.items()}
    for values in corrupted.values():
        view = values.view(np.uint8).reshape(-1)
        if view.size:
            view[0] ^= 0xFF
            return corrupted
    return corrupted
