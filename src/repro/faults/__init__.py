"""Deterministic fault injection and recovery for scale-out execution.

The layer has three parts, one module each:

* :mod:`repro.faults.plan` — :class:`FaultPlan`/:class:`FaultSpec`, the
  seedable, JSON-serializable fault schedule (device loss, OOM,
  transfer corruption, stragglers) keyed by device/morsel/op;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the per-query
  armed state the scale-out executor consults at its injection points,
  plus the gather :func:`partial_checksum`;
* :mod:`repro.faults.recovery` — :class:`RetryPolicy` (capped
  exponential backoff, morsel timeout) and :class:`RecoveryStats`
  (the per-query accounting surfaced as ``ScaleOutStats.recovery`` and
  the ``repro_faults_*`` Prometheus counters).

See ``docs/fault-tolerance.md`` for the fault model and the recovery
ladder (retry -> redistribute -> degrade -> host fallback), and
``tests/test_faults_differential.py`` for the chaos harness asserting
that any schedule leaving one live device changes nothing in the
result.
"""

from __future__ import annotations

from .injector import FaultInjector, FiredFault, partial_checksum
from .plan import FAULT_KINDS, FAULT_OPS, FaultPlan, FaultSpec
from .recovery import RecoveryStats, RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "FAULT_OPS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "RecoveryStats",
    "RetryPolicy",
    "partial_checksum",
]
