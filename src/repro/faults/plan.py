"""Deterministic fault schedules: :class:`FaultSpec` and :class:`FaultPlan`.

A fault plan is a *data* description of every fault a run will see,
keyed by device / morsel / operation, so a chaos run replays exactly:
the same plan against the same database and device count produces the
same injected faults, the same recovery decisions, and — the headline
guarantee — the same bytes in the result table as a fault-free run
whenever at least one device survives.

Plans serialize to JSON (``to_json``/``from_json``) so a failing CI
seed can be replayed locally (see ``docs/fault-tolerance.md``), and
:meth:`FaultPlan.generate` derives a random-but-reproducible plan from
an integer seed, always leaving at least one device alive.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from ..errors import ConfigurationError

#: Injectable failure kinds.
#:
#: * ``device-loss`` — the device drops out before the matched op; the
#:   engine fails mid-morsel at its next device operation and the
#:   device stays dead for the rest of the query.
#: * ``oom`` — the matched op raises
#:   :class:`~repro.errors.DeviceMemoryError`.
#: * ``corruption`` — the gathered partial of the matched morsel is
#:   corrupted in flight; the checksum verification flags it and the
#:   morsel is re-executed.
#: * ``straggler`` — the device's simulated clock stalls ``delay_ms``
#:   before the matched op; if the delay exceeds the retry policy's
#:   ``morsel_timeout_ms`` it is promoted to a
#:   :class:`~repro.errors.MorselTimeoutError`.
FAULT_KINDS = ("device-loss", "oom", "corruption", "straggler")

#: Operations a fault can bind to: the broadcast build phase of one
#: device, or the execution of one fact morsel.
FAULT_OPS = ("build", "morsel")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``device``/``morsel`` select where it fires: a morsel-op spec must
    pin at least one of the two (both ``None`` would race across device
    threads and break replay); a build-op spec must pin the device.
    ``times`` is how many matched executions the fault fires on before
    burning out — retries of the same morsel consume firings, which is
    how a plan distinguishes "fails once, retry succeeds" (``times=1``)
    from "fails everywhere" (a large ``times``).
    """

    kind: str
    device: int | None = None
    morsel: int | None = None
    op: str = "morsel"
    times: int = 1
    #: Straggler stall in simulated milliseconds (``straggler`` only).
    delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            choices = ", ".join(FAULT_KINDS)
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; valid choices: {choices}"
            )
        if self.op not in FAULT_OPS:
            choices = ", ".join(FAULT_OPS)
            raise ConfigurationError(
                f"unknown fault op {self.op!r}; valid choices: {choices}"
            )
        if self.op == "build":
            if self.device is None:
                raise ConfigurationError(
                    "build-op faults must name a device (the build phase "
                    "runs on every device concurrently)"
                )
            if self.morsel is not None:
                raise ConfigurationError(
                    "build-op faults cannot name a morsel"
                )
        elif self.device is None and self.morsel is None:
            raise ConfigurationError(
                "morsel-op faults must pin a device and/or a morsel "
                "(a fully wildcarded fault would fire non-deterministically)"
            )
        if self.kind == "corruption" and self.op != "morsel":
            raise ConfigurationError(
                "corruption faults apply to gathered morsel partials only"
            )
        if not isinstance(self.times, int) or isinstance(self.times, bool) or self.times < 1:
            raise ConfigurationError(
                f"fault times must be an integer >= 1, got {self.times!r}"
            )
        if self.delay_ms < 0:
            raise ConfigurationError(
                f"fault delay_ms must be >= 0, got {self.delay_ms!r}"
            )
        if self.kind == "straggler" and self.delay_ms == 0:
            raise ConfigurationError(
                "straggler faults need a positive delay_ms"
            )

    # ------------------------------------------------------------------
    def matches(self, op: str, device: int, morsel: int | None) -> bool:
        """Does this spec bind to the given execution event?"""
        if self.op != op:
            return False
        if self.device is not None and self.device != device:
            return False
        if self.morsel is not None and self.morsel != morsel:
            return False
        return True

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "op": self.op, "times": self.times}
        if self.device is not None:
            out["device"] = self.device
        if self.morsel is not None:
            out["morsel"] = self.morsel
        if self.delay_ms:
            out["delay_ms"] = self.delay_ms
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fault spec must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"kind", "op", "times", "device", "morsel", "delay_ms"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault spec keys: {', '.join(sorted(unknown))}"
            )
        if "kind" not in data:
            raise ConfigurationError("fault spec is missing 'kind'")
        return cls(
            kind=data["kind"],
            device=data.get("device"),
            morsel=data.get("morsel"),
            op=data.get("op", "morsel"),
            times=data.get("times", 1),
            delay_ms=data.get("delay_ms", 0.0),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable fault schedule for one (or more) queries.

    The plan itself is stateless; each query execution arms a fresh
    :class:`~repro.faults.injector.FaultInjector` over it, so the same
    executor can replay the plan query after query.
    """

    specs: tuple = ()
    #: The generator seed (replay breadcrumb; not used at match time).
    seed: int | None = None
    note: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"fault plan entries must be FaultSpec, got {spec!r}"
                )

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def max_firings(self) -> int:
        """Upper bound on faults this plan can inject (sum of times)."""
        return sum(spec.times for spec in self.specs)

    @property
    def lost_devices(self) -> set:
        """Devices a full replay of the plan would take down."""
        return {
            spec.device for spec in self.specs
            if spec.kind == "device-loss" and spec.device is not None
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out: dict = {"specs": [spec.to_dict() for spec in self.specs]}
        if self.seed is not None:
            out["seed"] = self.seed
        if self.note:
            out["note"] = self.note
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fault plan must be an object, got {type(data).__name__}"
            )
        specs = data.get("specs", [])
        if not isinstance(specs, list):
            raise ConfigurationError("fault plan 'specs' must be a list")
        return cls(
            specs=tuple(FaultSpec.from_dict(entry) for entry in specs),
            seed=data.get("seed"),
            note=data.get("note", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"fault plan is not valid JSON: {error}")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file (the CLI's ``--fault-plan``)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise ConfigurationError(f"cannot read fault plan {path!r}: {error}")
        return cls.from_json(text)

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        devices: int,
        morsels: int,
        max_faults: int = 6,
        kinds: tuple = FAULT_KINDS,
        straggler_ms: tuple = (0.5, 8.0),
        note: str = "",
    ) -> "FaultPlan":
        """A reproducible random plan that leaves >= 1 device alive.

        The same ``(seed, devices, morsels)`` always yields the same
        plan; at most ``devices - 1`` distinct devices are ever lost,
        so a surviving device (and therefore an exact result) is
        guaranteed by construction.
        """
        if devices < 1:
            raise ConfigurationError(f"devices must be >= 1, got {devices}")
        if morsels < 1:
            raise ConfigurationError(f"morsels must be >= 1, got {morsels}")
        rng = random.Random(seed)
        specs: list[FaultSpec] = []
        lost: set[int] = set()
        for _ in range(rng.randint(1, max(1, max_faults))):
            kind = rng.choice(list(kinds))
            if kind == "device-loss":
                candidates = [d for d in range(devices) if d not in lost]
                if len(lost) >= devices - 1 or not candidates:
                    kind = "straggler"  # keep the survivor guarantee
                else:
                    device = rng.choice(candidates)
                    lost.add(device)
                    if rng.random() < 0.25:
                        specs.append(
                            FaultSpec(kind="device-loss", device=device, op="build")
                        )
                    else:
                        specs.append(
                            FaultSpec(
                                kind="device-loss",
                                device=device,
                                morsel=rng.randrange(morsels) if rng.random() < 0.5 else None,
                            )
                        )
                    continue
            morsel = rng.randrange(morsels)
            device = rng.randrange(devices) if rng.random() < 0.3 else None
            if kind == "straggler":
                low, high = straggler_ms
                specs.append(
                    FaultSpec(
                        kind="straggler",
                        device=device,
                        morsel=morsel,
                        times=rng.randint(1, 2),
                        delay_ms=round(rng.uniform(low, high), 3),
                    )
                )
            else:
                specs.append(
                    FaultSpec(
                        kind=kind,
                        device=device,
                        morsel=morsel,
                        times=rng.randint(1, 2),
                    )
                )
        return cls(specs=tuple(specs), seed=seed, note=note)

    def summary(self) -> str:
        if not self.specs:
            return "empty fault plan (injection armed, nothing scheduled)"
        kinds: dict[str, int] = {}
        for spec in self.specs:
            kinds[spec.kind] = kinds.get(spec.kind, 0) + 1
        parts = ", ".join(f"{count}x {kind}" for kind, count in sorted(kinds.items()))
        seed = f" (seed {self.seed})" if self.seed is not None else ""
        return f"{len(self.specs)} faults: {parts}{seed}"
