"""Recovery knobs and accounting: :class:`RetryPolicy`, :class:`RecoveryStats`.

Kept import-light (dataclasses only) so :mod:`repro.scaleout.stats` can
embed a :class:`RecoveryStats` without pulling the injection machinery
into every result object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Per-morsel retry behaviour of the recovering scale-out executor.

    A failing morsel is retried on the *same* device up to
    ``max_retries`` times with capped exponential backoff
    (``backoff_base_ms * 2**(attempt-1)``, capped at
    ``backoff_cap_ms``); once the device's retries are exhausted the
    morsel is re-scheduled onto a surviving device that has not failed
    it yet.  Backoff is charged to :class:`RecoveryStats` (and the
    trace), not slept on the host — chaos runs stay fast and exactly
    reproducible.

    ``morsel_timeout_ms`` promotes any injected straggler stall at or
    above the bound to a :class:`~repro.errors.MorselTimeoutError`
    (``None`` disables the timeout).
    """

    max_retries: int = 2
    backoff_base_ms: float = 1.0
    backoff_cap_ms: float = 32.0
    morsel_timeout_ms: float | None = None

    def __post_init__(self) -> None:
        if (
            isinstance(self.max_retries, bool)
            or not isinstance(self.max_retries, int)
            or self.max_retries < 0
        ):
            raise ConfigurationError(
                f"max_retries must be an integer >= 0, got {self.max_retries!r}"
            )
        if self.backoff_base_ms < 0:
            raise ConfigurationError(
                f"backoff_base_ms must be >= 0, got {self.backoff_base_ms!r}"
            )
        if self.backoff_cap_ms < self.backoff_base_ms:
            raise ConfigurationError(
                f"backoff_cap_ms ({self.backoff_cap_ms!r}) must be >= "
                f"backoff_base_ms ({self.backoff_base_ms!r})"
            )
        if self.morsel_timeout_ms is not None and self.morsel_timeout_ms <= 0:
            raise ConfigurationError(
                f"morsel_timeout_ms must be > 0 (or None), got "
                f"{self.morsel_timeout_ms!r}"
            )

    @property
    def max_attempts(self) -> int:
        """Attempts per device per wave (first try + retries)."""
        return self.max_retries + 1

    def backoff_ms(self, attempt: int) -> float:
        """Backoff charged before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(self.backoff_cap_ms, self.backoff_base_ms * 2.0 ** (attempt - 1))


@dataclass
class RecoveryStats:
    """Per-query fault and recovery accounting.

    Attached as ``ScaleOutStats.recovery`` on every partitioned
    scale-out execution; the Prometheus ``repro_faults_*`` counters are
    the cumulative sums of these per-query values.
    """

    #: Faults actually fired this query, by kind (injected only).
    injected: dict = field(default_factory=dict)
    #: Same-device morsel retries (injected *and* genuine failures).
    retries: int = 0
    #: Exponential-backoff delay charged across all retries.
    backoff_ms: float = 0.0
    #: Morsels re-scheduled onto surviving devices.
    redistributed_morsels: int = 0
    #: Scatter waves executed (1 = fault-free single wave).
    waves: int = 1
    #: Devices lost during the query (sorted).
    degraded_devices: list = field(default_factory=list)
    #: Morsel timeouts (stragglers promoted to failures).
    timeouts: int = 0
    #: The whole query fell back to the host out-of-core executor
    #: because no device survived.
    host_fallback: bool = False

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def faulted(self) -> bool:
        """Did this query see any fault or recovery action at all?"""
        return bool(
            self.injected
            or self.retries
            or self.redistributed_morsels
            or self.degraded_devices
            or self.timeouts
            or self.host_fallback
        )

    def record_injected(self, kind: str, count: int = 1) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + count

    def summary(self) -> str:
        if not self.faulted:
            return "no faults"
        kinds = ", ".join(
            f"{count}x {kind}" for kind, count in sorted(self.injected.items())
        ) or "none injected"
        tail = " -> host fallback" if self.host_fallback else ""
        return (
            f"faults {kinds}; {self.retries} retries "
            f"(backoff {self.backoff_ms:.1f} ms), "
            f"{self.redistributed_morsels} morsels redistributed over "
            f"{self.waves} waves, lost devices "
            f"{self.degraded_devices or '[]'}{tail}"
        )
