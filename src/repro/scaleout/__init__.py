"""Scale-out execution: partitioned multi-device scatter-gather.

See :mod:`repro.scaleout.executor` for the architecture overview and
``docs/scaleout.md`` for the user-facing story.

The merge/partition layers are imported eagerly (the engines and the
out-of-core batch executor depend on :mod:`repro.scaleout.merge`);
the executor side loads lazily so that ``engines -> scaleout.merge``
never re-enters ``scaleout -> engines``.
"""

from __future__ import annotations

from .merge import (
    MERGE_OPS,
    PartialScheme,
    merge_partials,
    rewrite_for_partials,
)
from .partition import (
    PARTITION_SCHEMES,
    PartitionPiece,
    PartitionSet,
    build_partitions,
    validate_devices,
    validate_partitioning,
)
from .scheduler import DeviceLoad, assign_pieces, imbalance
from .stats import DeviceShare, ScaleOutStats

__all__ = [
    "MERGE_OPS",
    "PARTITION_SCHEMES",
    "DeviceFleet",
    "DeviceLoad",
    "DeviceShare",
    "PartialScheme",
    "PartitionPiece",
    "PartitionSet",
    "ScaleOutExecutor",
    "ScaleOutStats",
    "assign_pieces",
    "build_partitions",
    "imbalance",
    "merge_partials",
    "rewrite_for_partials",
    "validate_devices",
    "validate_partitioning",
]

_LAZY = {"ScaleOutExecutor": "executor", "DeviceFleet": "fleet"}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
