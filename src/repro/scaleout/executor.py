"""The scale-out executor: partitioned multi-device scatter-gather.

One query runs data-parallel over a :class:`~repro.scaleout.fleet.DeviceFleet`:

1. **Partition** — the fact table (the final pipeline's base-table
   scan) is split into ``devices * morsels_per_device`` pieces (range
   or hash, see :mod:`repro.scaleout.partition`); the partitioned
   catalog is cached per parent database so repeat queries reuse it
   (and per-device buffer pools stay warm).
2. **Scatter** — pieces are assigned to devices by the deterministic
   LPT scheduler (:mod:`repro.scaleout.scheduler`).  Each
   participating device runs, concurrently on its own simulated
   clock: the dimension pipelines (build sides *broadcast* to every
   device), then its fact morsels through the rewritten final
   pipeline (:func:`repro.scaleout.merge.rewrite_for_partials` makes
   AVG and empty pieces mergeable), gathering each partial d2h.
3. **Gather/merge** — partials merge in piece order through the shared
   :func:`repro.scaleout.merge.merge_partials`, then the host applies
   ORDER BY/LIMIT exactly as single-device ``finalize`` does.

Queries whose final pipeline scans a *virtual* table (e.g. TPC-H Q13's
outer aggregate over an aggregate) cannot be partitioned this way and
fall back to whole-query execution on device 0 (counted in
``ScaleOutStats.fallback``).

**Fault tolerance** (see ``docs/fault-tolerance.md``): the scatter
phase runs in *waves*.  Each wave, every participating device runs its
share; a morsel that fails with a *recoverable* error (an injected
fault from an armed :class:`~repro.faults.FaultPlan`, a genuine
:class:`~repro.errors.DeviceMemoryError`, a morsel timeout) is retried
on the same device with capped exponential backoff, then — retries
exhausted or device lost — re-scheduled in the next wave onto
surviving devices that have not failed it, via the same LPT scheduler.
A morsel that fails on *every* surviving device raises
:class:`~repro.errors.MorselExhaustedError`; losing every device
degrades to a whole-query host fallback through the out-of-core
:class:`~repro.macro.batch.BatchExecutor`.  Everything else
(``KeyboardInterrupt`` included) is fatal and re-raised with its
original traceback.  Because partials are merged in global piece order
and each piece's partial does not depend on which device computed it,
any fault schedule that leaves at least one live device yields results
byte-identical to the fault-free run.

The returned :class:`~repro.engines.base.ExecutionResult` aggregates
the whole fleet: ``profile``/``total_ms`` is the *serial* sum of all
device work, while ``result.scaleout.makespan_ms`` is the parallel
completion time (the busiest device) — their ratio is the modeled
strong-scaling speedup the Fig-21-style benchmark reports.
"""

from __future__ import annotations

import contextlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from ..compression import CompressionStats, resolve_compression
from ..engines.base import Engine, ExecutionResult, _cast_outputs
from ..engines.runtime import QueryRuntime, _sort_order
from ..faults.injector import FaultInjector, partial_checksum
from ..faults.plan import FaultPlan
from ..faults.recovery import RecoveryStats, RetryPolicy
from ..hardware.interconnect import PCIE3, Interconnect
from ..hardware.profiles import GTX970, DeviceProfile, get_profile
from ..hardware.traffic import Profile
from ..errors import (
    ConfigurationError,
    DeviceLostError,
    DeviceMemoryError,
    FaultError,
    MorselExhaustedError,
    MorselTimeoutError,
    PlanError,
    TransferCorruptionError,
)
from ..plan.logical import LogicalPlan
from ..plan.physical import PhysicalQuery, Pipeline
from ..plan.pipelines import extract_pipelines
from ..storage.column import Column
from ..storage.database import Database
from ..storage.table import Table
from ..telemetry.events import current_query, record_event
from ..telemetry.trace import Tracer, active_tracer, tracing_enabled
from .fleet import DeviceFleet
from .merge import PartialScheme, merge_partials, rewrite_for_partials
from .partition import (
    PartitionSet,
    build_partitions,
    validate_devices,
    validate_partitioning,
)
from .scheduler import DeviceLoad, assign_pieces
from .stats import DeviceShare, ScaleOutStats


#: Errors the recovery machinery absorbs (retry / redistribute).
#: Everything else — ``KeyboardInterrupt``, ``SystemExit``, planner or
#: kernel bugs — is fatal and propagates with its original traceback.
_RECOVERABLE = (FaultError, DeviceMemoryError)


@dataclass
class _DeviceRun:
    """What one device's worker brings back to the merge (one wave)."""

    share: DeviceShare
    partials: dict[int, dict[str, np.ndarray]] = field(default_factory=dict)
    profile: Profile = field(default_factory=Profile)
    kernel_sources: dict[str, str] = field(default_factory=dict)
    placement: object | None = None
    tracer: Tracer | None = None
    #: Pieces this device gave up on this wave -> failure kind.
    failed: dict[int, str] = field(default_factory=dict)
    #: Failed pieces whose failing attempts involved an *injected*
    #: firing (finite budget -> the scheduler may grant a fresh round).
    fault_fired: set = field(default_factory=set)
    #: Device died during this wave (its unfinished pieces are failed).
    lost: bool = False
    retries: int = 0
    backoff_ms: float = 0.0
    timeouts: int = 0
    #: Per-device wire-compression accounting (None when disabled).
    compression: object | None = None


def _fault_kind(error: BaseException, device) -> str:
    """Failure-kind label used for ``RecoveryStats`` and tracing."""
    if isinstance(error, DeviceLostError) or not device.alive:
        return "device-loss"
    if isinstance(error, MorselTimeoutError):
        return "timeout"
    if isinstance(error, TransferCorruptionError):
        return "corruption"
    if isinstance(error, DeviceMemoryError):
        return "oom"
    return "fault"


class ScaleOutExecutor:
    """Data-parallel query execution over N virtual devices.

    Parameters
    ----------
    devices:
        Fleet size (>= 1).  ``1`` degenerates to single-device
        execution through the same code path (useful as a baseline).
    profile:
        Device profile (or name) each fleet member instantiates
        privately.
    partitioning:
        ``"range"`` (default, order-preserving views) or ``"hash"``.
    morsels_per_device:
        Over-partitioning factor: the fact table splits into
        ``devices * morsels_per_device`` pieces so the LPT scheduler
        can redistribute work around skewed partitions.
    residency:
        Attach a per-device :class:`~repro.placement.BufferPool`;
        broadcast dimension columns and fact pieces stay device-
        resident across queries.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` armed on every query
        (a fresh deterministic :class:`~repro.faults.FaultInjector` per
        query, so repeat queries replay the same schedule).
    retry_policy:
        :class:`~repro.faults.RetryPolicy` governing per-morsel retries,
        backoff and the morsel timeout (default ``RetryPolicy()``).
    """

    def __init__(
        self,
        devices: int,
        profile: DeviceProfile | str = GTX970,
        interconnect: Interconnect = PCIE3,
        partitioning: str = "range",
        morsels_per_device: int = 2,
        residency: bool = False,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        compression=None,
    ):
        self.devices = validate_devices(devices)
        self.partitioning = validate_partitioning(partitioning)
        if isinstance(morsels_per_device, bool) or not isinstance(
            morsels_per_device, int
        ) or morsels_per_device < 1:
            raise ConfigurationError(
                f"morsels_per_device must be an integer >= 1, got "
                f"{morsels_per_device!r}"
            )
        self.morsels_per_device = morsels_per_device
        if fault_plan is not None and not isinstance(fault_plan, FaultPlan):
            raise ConfigurationError(
                f"fault_plan must be a FaultPlan or None, got {fault_plan!r}"
            )
        if retry_policy is not None and not isinstance(retry_policy, RetryPolicy):
            raise ConfigurationError(
                f"retry_policy must be a RetryPolicy or None, got {retry_policy!r}"
            )
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.profile = get_profile(profile) if isinstance(profile, str) else profile
        self.compression = resolve_compression(compression)
        self.fleet = DeviceFleet(
            self.profile,
            self.devices,
            interconnect=interconnect,
            residency=residency,
            compression=self.compression,
        )
        self._partition_cache: dict[tuple, PartitionSet] = {}
        self._cache_lock = threading.Lock()
        #: One query at a time per fleet (device profiler state is
        #: per-query); the serving layer gives each worker its own
        #: executor, same as it gives each worker its own device.
        self._run_lock = threading.Lock()
        self._totals_lock = threading.Lock()
        self._queries = 0
        self._fallbacks = 0
        self._device_totals = [
            {"morsels": 0, "busy_ms": 0.0, "pcie_bytes": 0, "queries": 0}
            for _ in range(self.devices)
        ]
        self._fault_totals = {
            "injected": {},  # kind -> fired count
            "retries": 0,
            "backoff_ms": 0.0,
            "redistributed": 0,
            "timeouts": 0,
            "lost_devices": 0,
            "host_fallbacks": 0,
            "faulted_queries": 0,
        }
        self._last_live = self.devices
        self._event_query: str | None = None

    # ------------------------------------------------------------------
    def execute(
        self,
        engine: Engine,
        plan: LogicalPlan | PhysicalQuery,
        database: Database,
        seed: int = 42,
    ) -> ExecutionResult:
        """Run one query over the fleet and merge the partials."""
        if isinstance(plan, PhysicalQuery):
            query = plan
        else:
            query = extract_pipelines(plan, database)
        with self._run_lock:
            # The submitting thread's correlation id, re-stamped on
            # events emitted from the per-device worker threads (their
            # thread-locals don't inherit the query scope).  Safe to
            # keep on ``self``: the run lock serializes queries.
            self._event_query = current_query()
            final = query.final_pipeline
            if final.source_is_virtual:
                return self._execute_fallback(engine, query, database, seed)
            return self._execute_partitioned(engine, query, database, seed)

    # ------------------------------------------------------------------
    def _partitions(self, database: Database, fact_table: str) -> PartitionSet:
        parts = self.devices * self.morsels_per_device
        serial = database.fingerprint()[0]  # stable catalog identity
        key = (serial, fact_table, self.partitioning, parts)
        with self._cache_lock:
            cached = self._partition_cache.get(key)
            if cached is None:
                cached = build_partitions(
                    database, fact_table, parts, self.partitioning
                )
                self._partition_cache[key] = cached
            else:
                cached.refresh(database)
            return cached

    # ------------------------------------------------------------------
    def _execute_partitioned(
        self, engine: Engine, query: PhysicalQuery, database: Database, seed: int
    ) -> ExecutionResult:
        final = query.final_pipeline
        tracer = active_tracer()
        owned = tracer is None and tracing_enabled()
        if owned:
            tracer = Tracer(
                engine=f"scaleout[{self.devices}x{engine.name}]",
                device=self.profile.name,
            )
        activation = tracer.activate() if owned else contextlib.nullcontext()
        with activation:
            if tracer is not None:
                with tracer.span("partition", "scaleout") as span:
                    partition_set = self._partitions(database, final.source)
                    span.attrs.update(
                        fact=final.source,
                        scheme=self.partitioning,
                        parts=partition_set.parts,
                    )
            else:
                partition_set = self._partitions(database, final.source)
            rewritten, scheme = rewrite_for_partials(final)
            # Injected device losses last for the query that suffered
            # them; every query starts with the full fleet in service.
            self.fleet.revive_all()
            injector = (
                FaultInjector(self.fault_plan, self.retry_policy)
                if self.fault_plan is not None
                else None
            )
            recovery = RecoveryStats()
            loads = assign_pieces(
                [piece.nbytes for piece in partition_set.pieces], self.devices
            )
            runs, by_piece, unfinished = self._scatter(
                engine,
                query,
                rewritten,
                partition_set,
                loads,
                seed,
                tracer,
                injector,
                recovery,
            )
            if injector is not None:
                recovery.injected = injector.counts()
            if unfinished:
                # Every device lost: degrade to the host fallback.
                result = self._host_fallback(
                    engine, query, database, seed, partition_set, runs,
                    recovery, tracer,
                )
                if owned:
                    result.trace = tracer.finish()
                self._record_totals(result.scaleout)
                return result
            merge_start = time.perf_counter()
            # Merge in global piece order, independent of which device
            # ran which piece: deterministic results for free.
            ordered = [by_piece[index] for index in sorted(by_piece)]
            merged = merge_partials(
                final.sink,
                final.output_schema,
                ordered,
                scheme=scheme,
                context="partitions",
            )
            table = _finalize_host(query, merged)
            merge_ms = (time.perf_counter() - merge_start) * 1e3
            if tracer is not None:
                tracer.event(
                    "merge", "scaleout", partials=len(ordered), rows=table.num_rows
                )
            stats = ScaleOutStats(
                devices=self.devices,
                partitions=partition_set.parts,
                scheme=self.partitioning,
                fact_table=final.source,
                shares=_combined_shares(runs),
                merge_ms=merge_ms,
                recovery=recovery,
            )
            result = self._package(engine, runs, table, stats)
            if owned:
                result.trace = tracer.finish()
        self._record_totals(stats)
        return result

    # ------------------------------------------------------------------
    def _scatter(
        self,
        engine: Engine,
        query: PhysicalQuery,
        rewritten: Pipeline,
        partition_set: PartitionSet,
        loads: list[DeviceLoad],
        seed: int,
        tracer: Tracer | None,
        injector: FaultInjector | None,
        recovery: RecoveryStats,
    ) -> tuple[list[_DeviceRun], dict[int, dict[str, np.ndarray]], list[int]]:
        """Wave-based scatter with recovery.

        Returns ``(runs, partials by piece, unfinished pieces)``; the
        unfinished list is non-empty only when every device was lost
        (the caller degrades to the host fallback).  Raises
        :class:`MorselExhaustedError` when a piece has failed on every
        surviving device, and re-raises fatal errors unchanged.
        """
        pieces = partition_set.pieces
        runs: list[_DeviceRun] = []
        by_piece: dict[int, dict[str, np.ndarray]] = {}
        failed_on: dict[int, set[int]] = {}
        #: Pieces whose failures involved injected firings since their
        #: last grace round (see the eligibility loop below).
        fault_seen: set[int] = set()
        alive = list(range(self.devices))
        abort = threading.Event()
        wave_loads = [
            load
            for load in loads
            if any(pieces[piece].rows for piece in load.pieces)
        ]
        wave = 0
        while wave_loads:
            wave += 1
            recovery.waves = wave
            wave_runs: dict[int, _DeviceRun] = {}
            fatal: list[BaseException] = []

            def run_device(load: DeviceLoad) -> None:
                try:
                    wave_runs[load.device] = self._run_device(
                        engine, query, rewritten, partition_set, load, seed,
                        tracer, injector, abort,
                    )
                except BaseException as error:  # fatal: re-raised below
                    abort.set()
                    fatal.append(error)

            if len(wave_loads) == 1:
                run_device(wave_loads[0])
            else:
                with ThreadPoolExecutor(
                    max_workers=len(wave_loads), thread_name_prefix="repro-scaleout"
                ) as pool:
                    list(pool.map(run_device, wave_loads))
            ordered = [
                wave_runs[load.device]
                for load in wave_loads
                if load.device in wave_runs
            ]
            for run in ordered:
                runs.append(run)
                by_piece.update(run.partials)
                recovery.retries += run.retries
                recovery.backoff_ms += run.backoff_ms
                recovery.timeouts += run.timeouts
                for piece_index in run.failed:
                    failed_on.setdefault(piece_index, set()).add(run.share.device)
                fault_seen |= run.fault_fired
                if tracer is not None and run.tracer is not None:
                    tracer.adopt(run.tracer)
            if fatal:
                # KeyboardInterrupt/SystemExit win over concurrent
                # failures; original exception objects keep tracebacks.
                for error in fatal:
                    if isinstance(error, (KeyboardInterrupt, SystemExit)):
                        raise error
                raise fatal[0]
            for run in ordered:
                if run.lost and run.share.device in alive:
                    alive.remove(run.share.device)
                    recovery.degraded_devices.append(run.share.device)
                    record_event(
                        "device.lost",
                        query=self._event_query,
                        device=run.share.device,
                        wave=wave,
                    )
                    if tracer is not None:
                        tracer.event(
                            f"device {run.share.device} lost", "fault", wave=wave
                        )
            recovery.degraded_devices.sort()
            pending = sorted(
                piece_index
                for piece_index in failed_on
                if piece_index not in by_piece
            )
            if not pending:
                return runs, by_piece, []
            if not alive:
                return runs, by_piece, pending
            eligible: list[list[int]] = []
            for piece_index in pending:
                candidates = [
                    device for device in alive
                    if device not in failed_on[piece_index]
                ]
                if not candidates:
                    # Every survivor has failed this piece.  If any of
                    # those failures came from an *injected* firing, the
                    # fault budget is finite — clear the blacklist and
                    # grant a fresh round (this terminates: a new grace
                    # round needs a new firing, and firings are bounded
                    # by the plan's total budget).  Purely genuine
                    # failures exhaust instead.
                    if piece_index in fault_seen:
                        fault_seen.discard(piece_index)
                        failed_on[piece_index] = set()
                        candidates = list(alive)
                    else:
                        raise MorselExhaustedError(
                            piece_index, partition_set.fact_table, alive
                        )
                eligible.append(candidates)
            local = assign_pieces(
                [pieces[piece_index].nbytes for piece_index in pending],
                self.devices,
                eligible=eligible,
            )
            wave_loads = [
                DeviceLoad(
                    device=load.device,
                    pieces=sorted(pending[index] for index in load.pieces),
                    estimated_bytes=load.estimated_bytes,
                )
                for load in local
                if load.pieces
            ]
            recovery.redistributed_morsels += len(pending)
            record_event(
                "morsel.redistributed",
                query=self._event_query,
                wave=wave,
                morsels=len(pending),
                survivors=len(alive),
            )
            if tracer is not None:
                tracer.event(
                    "redistribute", "fault",
                    wave=wave, morsels=len(pending), survivors=len(alive),
                )
        return runs, by_piece, []

    def _run_device(
        self,
        engine: Engine,
        query: PhysicalQuery,
        rewritten: Pipeline,
        partition_set: PartitionSet,
        load: DeviceLoad,
        seed: int,
        parent_tracer: Tracer | None,
        injector: FaultInjector | None,
        abort: threading.Event,
    ) -> _DeviceRun:
        device = self.fleet.devices[load.device]
        pool = self.fleet.pools[load.device]
        self.fleet.begin_query(load.device)
        child = None
        if parent_tracer is not None:
            child = Tracer(
                f"device[{load.device}]",
                device_lane=load.device,
                device=device.profile.name,
            )
            child.root.category = "device"
        activation = child.activate() if child is not None else contextlib.nullcontext()
        partition_db = partition_set.database
        assert partition_db is not None
        with activation:
            runtime = QueryRuntime(device, partition_db, seed=seed, pool=pool)
            run = _DeviceRun(share=DeviceShare(device=load.device), tracer=child)
            try:
                try:
                    fired_mark = injector.fired_count() if injector else 0
                    if injector is not None:
                        injector.on_build(load.device, device)
                    # Build sides: every dimension pipeline runs on
                    # every participating device (broadcast join).
                    for index, pipeline in enumerate(query.pipelines[:-1]):
                        if child is None:
                            produced = engine.execute_pipeline(pipeline, runtime)
                        else:
                            produced = engine._execute_pipeline_traced(
                                index, pipeline, runtime, child
                            )
                        if pipeline.output_schema is not None and produced is not None:
                            runtime.register_virtual(
                                pipeline.output_name,
                                _cast_outputs(produced, pipeline.output_schema),
                                pipeline.output_schema,
                            )
                    run.share.broadcast_bytes = runtime.input_bytes
                except _RECOVERABLE as error:
                    # A build failure fails every piece of this share:
                    # without the build sides no morsel can run here.
                    run.share.broadcast_bytes = runtime.input_bytes
                    run.lost = not device.alive
                    kind = _fault_kind(error, device)
                    if isinstance(error, MorselTimeoutError):
                        run.timeouts += 1
                    injected = injector is not None and injector.fired_matching(
                        fired_mark, load.device
                    )
                    if injected:
                        record_event(
                            "fault.fired",
                            query=self._event_query,
                            fault=kind,
                            device=load.device,
                            stage="build",
                        )
                    for piece_index in load.pieces:
                        if partition_set.pieces[piece_index].rows:
                            run.failed[piece_index] = kind
                            if injected:
                                run.fault_fired.add(piece_index)
                    return run
                # Fact morsels, in piece order.
                for position, piece_index in enumerate(load.pieces):
                    if abort.is_set():
                        break
                    piece = partition_set.pieces[piece_index]
                    if piece.rows == 0:
                        continue
                    self._execute_morsel(
                        engine, query, rewritten, piece, runtime, device, run,
                        injector, child,
                    )
                    if run.lost:
                        for later in load.pieces[position + 1:]:
                            if partition_set.pieces[later].rows:
                                run.failed[later] = "device-loss"
                        break
                return run
            finally:
                share = run.share
                share.input_bytes = runtime.input_bytes
                share.partition_bytes = runtime.input_bytes - share.broadcast_bytes
                share.kernel_ms = device.log.kernel_time_ms
                share.transfer_ms = device.log.transfer_time_ms
                share.busy_ms = device.log.total_time_ms
                share.placement_hits = runtime.placement_hits
                run.profile = device.log
                run.kernel_sources = dict(runtime.kernel_sources)
                run.placement = runtime.query_placement()
                run.compression = runtime.compression_stats()
                runtime.close()

    def _execute_morsel(
        self,
        engine: Engine,
        query: PhysicalQuery,
        rewritten: Pipeline,
        piece,
        runtime: QueryRuntime,
        device,
        run: _DeviceRun,
        injector: FaultInjector | None,
        child: Tracer | None,
    ) -> bool:
        """One fact morsel with per-attempt cleanup and capped-backoff
        retries; returns True when the partial was gathered.  On defeat
        the piece lands in ``run.failed`` (and ``run.lost`` is set when
        the device died) for the next wave to redistribute."""
        policy = self.retry_policy
        attempt = 0
        while True:
            attempt += 1
            snapshot = device.transient_snapshot()
            fired_mark = injector.fired_count() if injector else 0
            try:
                if injector is not None:
                    injector.before_morsel(run.share.device, piece.index, device)
                morsel = replace(
                    rewritten,
                    name=f"{rewritten.name}_p{piece.index}",
                    source=piece.table_name,
                )
                if child is None:
                    produced = engine.execute_pipeline(morsel, runtime)
                else:
                    produced = engine._execute_pipeline_traced(
                        len(query.pipelines) - 1 + piece.index,
                        morsel,
                        runtime,
                        child,
                    )
                assert produced is not None
                if not device.alive:
                    raise DeviceLostError(device.profile.name, "lost mid-morsel")
                if injector is not None:
                    # Checksum-verified gather: a corrupted transfer is
                    # detected against the pre-delivery checksum and
                    # recomputed on retry.
                    reference = partial_checksum(produced)
                    produced = injector.deliver(
                        run.share.device, piece.index, produced
                    )
                    delivered = partial_checksum(produced)
                    if delivered != reference:
                        raise TransferCorruptionError(
                            run.share.device, piece.index, reference, delivered
                        )
            except _RECOVERABLE as error:
                # Free attempt-scoped buffers, keep the build sides.
                device.release_transient(keep=snapshot)
                kind = _fault_kind(error, device)
                if isinstance(error, MorselTimeoutError):
                    run.timeouts += 1
                if injector is not None and injector.fired_matching(
                    fired_mark, run.share.device, piece.index
                ):
                    run.fault_fired.add(piece.index)
                    record_event(
                        "fault.fired",
                        query=self._event_query,
                        fault=kind,
                        device=run.share.device,
                        morsel=piece.index,
                    )
                if not device.alive:
                    run.lost = True
                    run.failed[piece.index] = kind
                    return False
                if attempt < policy.max_attempts:
                    run.retries += 1
                    backoff = policy.backoff_ms(attempt)
                    run.backoff_ms += backoff
                    record_event(
                        "morsel.retry",
                        query=self._event_query,
                        device=run.share.device,
                        morsel=piece.index,
                        attempt=attempt,
                        fault=kind,
                        backoff_ms=backoff,
                    )
                    if child is not None:
                        child.event(
                            f"retry p{piece.index}", "fault",
                            attempt=attempt, backoff_ms=backoff, kind=kind,
                        )
                    continue
                run.failed[piece.index] = kind
                return False
            gather_bytes = self._gather_partial(
                produced, piece.index, runtime, device
            )
            run.partials[piece.index] = produced
            run.share.morsels += 1
            run.share.rows += piece.rows
            run.share.gather_bytes += gather_bytes
            return True

    # ------------------------------------------------------------------
    def _gather_partial(
        self, produced: dict, index: int, runtime: QueryRuntime, device
    ) -> int:
        """Ship one morsel's partial columns d2h.

        With a compression policy each column that clears the wire-ratio
        gate travels as a wire image: a device-side encode kernel pays
        for the packing, and the decode is charged to the host merge
        (``host_decode_bytes``) — the device never re-reads the partial.
        Returns the bytes that crossed the link.
        """
        policy = runtime.compression
        if policy is None:
            gather_bytes = sum(
                np.asarray(array).nbytes for array in produced.values()
            )
            device.record_stream_transfer(
                gather_bytes, "d2h", label=f"gather.p{index}"
            )
            return gather_bytes
        stats = runtime.compression_stats()
        gather_bytes = 0
        for name, array in produced.items():
            arr = np.asarray(array)
            encoded = policy.encode_array(arr)
            if (
                encoded is not None
                and encoded.codec != "passthrough"
                and encoded.wire_nbytes < arr.nbytes
            ):
                runtime._charge_encode(encoded, f"gather.p{index}.{name}")
                device.record_stream_transfer(
                    encoded.wire_nbytes,
                    "d2h",
                    label=f"gather.p{index}.{name}",
                    raw_nbytes=arr.nbytes,
                    codec=encoded.codec,
                )
                gather_bytes += encoded.wire_nbytes
                if stats is not None:
                    stats.record(arr.nbytes, encoded.wire_nbytes, encoded.codec)
                    stats.host_decode_bytes += arr.nbytes
            else:
                device.record_stream_transfer(
                    arr.nbytes, "d2h", label=f"gather.p{index}.{name}"
                )
                gather_bytes += arr.nbytes
                if stats is not None:
                    stats.record(arr.nbytes, arr.nbytes, "passthrough")
        return gather_bytes

    # ------------------------------------------------------------------
    def _execute_fallback(
        self, engine: Engine, query: PhysicalQuery, database: Database, seed: int
    ) -> ExecutionResult:
        """Whole-query execution on device 0 (unpartitionable plan)."""
        device = self.fleet.devices[0]
        pool = self.fleet.pools[0]
        if pool is not None:
            from ..placement import execute_with_placement

            result = execute_with_placement(engine, query, database, device, seed=seed)
        else:
            result = engine.execute(query, database, device, seed=seed)
        share = DeviceShare(
            device=0,
            morsels=1,
            rows=0,
            input_bytes=result.input_bytes,
            partition_bytes=result.input_bytes,
            gather_bytes=result.output_bytes,
            kernel_ms=result.profile.kernel_time_ms,
            transfer_ms=result.profile.transfer_time_ms,
            busy_ms=result.profile.total_time_ms,
        )
        stats = ScaleOutStats(
            devices=self.devices,
            partitions=1,
            scheme=self.partitioning,
            fact_table=None,
            shares=[share],
            fallback=True,
        )
        result.scaleout = stats
        result.engine = f"scaleout[{self.devices}x{engine.name}]"
        self._record_totals(stats)
        with self._totals_lock:
            self._fallbacks += 1
        return result

    # ------------------------------------------------------------------
    def _host_fallback(
        self,
        engine: Engine,
        query: PhysicalQuery,
        database: Database,
        seed: int,
        partition_set: PartitionSet,
        runs: list[_DeviceRun],
        recovery: RecoveryStats,
        tracer: Tracer | None,
    ) -> ExecutionResult:
        """Last rung of the degradation ladder: every fleet device is
        lost, so the whole query re-runs against the *parent* database
        on the reserve host device, streaming out-of-core (run-to-finish
        when the plan cannot stream)."""
        recovery.host_fallback = True
        record_event(
            "fallback.host",
            query=self._event_query,
            devices_lost=len(recovery.degraded_devices),
        )
        if tracer is not None:
            tracer.event(
                "host fallback", "fault", devices_lost=len(recovery.degraded_devices)
            )
        from ..engines.compound import CompoundEngine
        from ..macro.batch import execute_out_of_core

        device = self.fleet.host_device()
        device.reset_all()
        mode = engine.mode if isinstance(engine, CompoundEngine) else "lrgp_simd"
        try:
            result = execute_out_of_core(query, database, device, seed=seed, mode=mode)
        except PlanError:
            device.reset_all()
            result = engine.execute(query, database, device, seed=seed)
        stats = ScaleOutStats(
            devices=self.devices,
            partitions=partition_set.parts,
            scheme=self.partitioning,
            fact_table=partition_set.fact_table,
            shares=_combined_shares(runs),
            recovery=recovery,
        )
        result.scaleout = stats
        result.engine = f"scaleout[{self.devices}x{engine.name}]"
        return result

    # ------------------------------------------------------------------
    def _package(
        self,
        engine: Engine,
        runs: list[_DeviceRun],
        table: Table,
        stats: ScaleOutStats,
    ) -> ExecutionResult:
        profile = Profile(
            kernels=[trace for run in runs for trace in run.profile.kernels],
            transfers=[record for run in runs for record in run.profile.transfers],
        )
        kernel_sources: dict[str, str] = {}
        for run in runs:
            kernel_sources.update(run.kernel_sources)
        placement = None
        placements = [run.placement for run in runs if run.placement is not None]
        if placements:
            from ..placement.stats import QueryPlacement

            placement = QueryPlacement(
                hits=sum(p.hits for p in placements),
                misses=sum(p.misses for p in placements),
                hit_bytes=sum(p.hit_bytes for p in placements),
                transferred_bytes=sum(p.transferred_bytes for p in placements),
            )
        input_bytes = sum(run.share.input_bytes for run in runs)
        output_bytes = table.nbytes
        baseline_device = self.fleet.devices[0]
        return ExecutionResult(
            table=table,
            profile=profile,
            engine=f"scaleout[{self.devices}x{engine.name}]",
            device_name=f"{self.profile.name} x{self.devices}",
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            pcie_ms=baseline_device.pcie_baseline_ms(input_bytes, output_bytes),
            memory_bound_ms=baseline_device.memory_bound_ms(
                input_bytes + output_bytes
            ),
            kernel_sources=kernel_sources,
            placement=placement,
            scaleout=stats,
            compression=CompressionStats.aggregate(
                run.compression for run in runs
            ),
        )

    # ------------------------------------------------------------------
    def _record_totals(self, stats: ScaleOutStats) -> None:
        with self._totals_lock:
            self._queries += 1
            for share in stats.shares:
                totals = self._device_totals[share.device]
                totals["queries"] += 1
                totals["morsels"] += share.morsels
                totals["busy_ms"] += share.busy_ms
                totals["pcie_bytes"] += share.pcie_bytes
            recovery = stats.recovery
            if recovery is not None:
                faults = self._fault_totals
                for kind, count in recovery.injected.items():
                    faults["injected"][kind] = (
                        faults["injected"].get(kind, 0) + count
                    )
                faults["retries"] += recovery.retries
                faults["backoff_ms"] += recovery.backoff_ms
                faults["redistributed"] += recovery.redistributed_morsels
                faults["timeouts"] += recovery.timeouts
                faults["lost_devices"] += len(recovery.degraded_devices)
                faults["host_fallbacks"] += int(recovery.host_fallback)
                faults["faulted_queries"] += int(recovery.faulted)
                self._last_live = self.devices - len(recovery.degraded_devices)
            else:
                self._last_live = self.devices

    def placement_stats(self):
        """Aggregated fleet residency counters (None without it)."""
        return self.fleet.placement_stats()

    def observe_metrics(self, metrics, **labels) -> None:
        """Export cumulative per-device gauges/counters into a
        :class:`~repro.telemetry.metrics.MetricsRegistry` (the serving
        layer calls this from ``Server.metrics_text``)."""
        with self._totals_lock:
            totals = [dict(entry) for entry in self._device_totals]
            queries, fallbacks = self._queries, self._fallbacks
            faults = {
                key: (dict(value) if isinstance(value, dict) else value)
                for key, value in self._fault_totals.items()
            }
            last_live = self._last_live
        metrics.gauge(
            "repro_scaleout_devices", "Fleet size of the scale-out executor",
            **labels,
        ).set(self.devices)
        metrics.counter(
            "repro_scaleout_queries_total", "Queries executed by the fleet",
            **labels,
        ).set_total(queries)
        metrics.counter(
            "repro_scaleout_fallbacks_total",
            "Queries that ran unpartitioned on one device", **labels,
        ).set_total(fallbacks)
        for index, entry in enumerate(totals):
            device_labels = dict(labels, device=str(index))
            metrics.counter(
                "repro_scaleout_device_morsels_total",
                "Fact morsels executed per device", **device_labels,
            ).set_total(entry["morsels"])
            metrics.counter(
                "repro_scaleout_device_busy_ms_total",
                "Simulated busy milliseconds per device", **device_labels,
            ).set_total(entry["busy_ms"])
            metrics.counter(
                "repro_scaleout_device_pcie_bytes_total",
                "PCIe bytes (h2d + d2h) per device", **device_labels,
            ).set_total(entry["pcie_bytes"])
        metrics.gauge(
            "repro_faults_live_devices",
            "Devices in service after the most recent query", **labels,
        ).set(last_live)
        for kind, count in sorted(faults["injected"].items()):
            metrics.counter(
                "repro_faults_injected_total",
                "Injected faults fired, by kind", kind=kind, **labels,
            ).set_total(count)
        metrics.counter(
            "repro_faults_retries_total",
            "Same-device morsel retries", **labels,
        ).set_total(faults["retries"])
        metrics.counter(
            "repro_faults_backoff_ms_total",
            "Simulated retry backoff milliseconds", **labels,
        ).set_total(faults["backoff_ms"])
        metrics.counter(
            "repro_faults_redistributed_morsels_total",
            "Morsels re-scheduled onto surviving devices", **labels,
        ).set_total(faults["redistributed"])
        metrics.counter(
            "repro_faults_timeouts_total",
            "Morsel attempts abandoned past the morsel timeout", **labels,
        ).set_total(faults["timeouts"])
        metrics.counter(
            "repro_faults_lost_devices_total",
            "Device losses suffered across all queries", **labels,
        ).set_total(faults["lost_devices"])
        metrics.counter(
            "repro_faults_host_fallbacks_total",
            "Queries degraded to the host out-of-core fallback", **labels,
        ).set_total(faults["host_fallbacks"])
        metrics.counter(
            "repro_faults_queries_total",
            "Queries that saw any fault or recovery action", **labels,
        ).set_total(faults["faulted_queries"])


def _combined_shares(runs: list[_DeviceRun]) -> list[DeviceShare]:
    """Sum each device's per-wave shares into one ``DeviceShare`` (a
    device that ran two recovery waves did all of that work)."""
    by_device: dict[int, DeviceShare] = {}
    for run in runs:
        share = run.share
        merged = by_device.get(share.device)
        if merged is None:
            by_device[share.device] = replace(share)
            continue
        merged.morsels += share.morsels
        merged.rows += share.rows
        merged.input_bytes += share.input_bytes
        merged.broadcast_bytes += share.broadcast_bytes
        merged.partition_bytes += share.partition_bytes
        merged.gather_bytes += share.gather_bytes
        merged.kernel_ms += share.kernel_ms
        merged.transfer_ms += share.transfer_ms
        merged.busy_ms += share.busy_ms
        merged.placement_hits += share.placement_hits
    return [by_device[device] for device in sorted(by_device)]


def _finalize_host(query: PhysicalQuery, merged: dict[str, np.ndarray]) -> Table:
    """Host-side result assembly: the scale-out twin of
    ``QueryRuntime.finalize`` — the d2h cost was already charged per
    gathered partial, so only the cast/sort/limit remain."""
    schema = query.output_schema
    assert schema is not None
    columns: dict[str, Column] = {}
    for name in query.output_columns:
        dtype = schema.dtypes[name]
        values = np.asarray(merged[name]).astype(dtype.numpy_dtype)
        columns[name] = Column(dtype, values, schema.dictionaries.get(name))
    table = Table(columns)
    if query.sort_keys:
        table = table.take(_sort_order(table, query.sort_keys))
    if query.limit is not None:
        table = table.slice(0, query.limit)
    return table
