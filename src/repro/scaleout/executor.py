"""The scale-out executor: partitioned multi-device scatter-gather.

One query runs data-parallel over a :class:`~repro.scaleout.fleet.DeviceFleet`:

1. **Partition** — the fact table (the final pipeline's base-table
   scan) is split into ``devices * morsels_per_device`` pieces (range
   or hash, see :mod:`repro.scaleout.partition`); the partitioned
   catalog is cached per parent database so repeat queries reuse it
   (and per-device buffer pools stay warm).
2. **Scatter** — pieces are assigned to devices by the deterministic
   LPT scheduler (:mod:`repro.scaleout.scheduler`).  Each
   participating device runs, concurrently on its own simulated
   clock: the dimension pipelines (build sides *broadcast* to every
   device), then its fact morsels through the rewritten final
   pipeline (:func:`repro.scaleout.merge.rewrite_for_partials` makes
   AVG and empty pieces mergeable), gathering each partial d2h.
3. **Gather/merge** — partials merge in piece order through the shared
   :func:`repro.scaleout.merge.merge_partials`, then the host applies
   ORDER BY/LIMIT exactly as single-device ``finalize`` does.

Queries whose final pipeline scans a *virtual* table (e.g. TPC-H Q13's
outer aggregate over an aggregate) cannot be partitioned this way and
fall back to whole-query execution on device 0 (counted in
``ScaleOutStats.fallback``).

The returned :class:`~repro.engines.base.ExecutionResult` aggregates
the whole fleet: ``profile``/``total_ms`` is the *serial* sum of all
device work, while ``result.scaleout.makespan_ms`` is the parallel
completion time (the busiest device) — their ratio is the modeled
strong-scaling speedup the Fig-21-style benchmark reports.
"""

from __future__ import annotations

import contextlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from ..engines.base import Engine, ExecutionResult, _cast_outputs
from ..engines.runtime import QueryRuntime, _sort_order
from ..hardware.interconnect import PCIE3, Interconnect
from ..hardware.profiles import GTX970, DeviceProfile, get_profile
from ..hardware.traffic import Profile
from ..errors import ConfigurationError
from ..plan.logical import LogicalPlan
from ..plan.physical import PhysicalQuery, Pipeline
from ..plan.pipelines import extract_pipelines
from ..storage.column import Column
from ..storage.database import Database
from ..storage.table import Table
from ..telemetry.trace import Tracer, active_tracer, tracing_enabled
from .fleet import DeviceFleet
from .merge import PartialScheme, merge_partials, rewrite_for_partials
from .partition import (
    PartitionSet,
    build_partitions,
    validate_devices,
    validate_partitioning,
)
from .scheduler import DeviceLoad, assign_pieces
from .stats import DeviceShare, ScaleOutStats


@dataclass
class _DeviceRun:
    """What one device's worker brings back to the merge."""

    share: DeviceShare
    partials: dict[int, dict[str, np.ndarray]] = field(default_factory=dict)
    profile: Profile = field(default_factory=Profile)
    kernel_sources: dict[str, str] = field(default_factory=dict)
    placement: object | None = None
    tracer: Tracer | None = None


class ScaleOutExecutor:
    """Data-parallel query execution over N virtual devices.

    Parameters
    ----------
    devices:
        Fleet size (>= 1).  ``1`` degenerates to single-device
        execution through the same code path (useful as a baseline).
    profile:
        Device profile (or name) each fleet member instantiates
        privately.
    partitioning:
        ``"range"`` (default, order-preserving views) or ``"hash"``.
    morsels_per_device:
        Over-partitioning factor: the fact table splits into
        ``devices * morsels_per_device`` pieces so the LPT scheduler
        can redistribute work around skewed partitions.
    residency:
        Attach a per-device :class:`~repro.placement.BufferPool`;
        broadcast dimension columns and fact pieces stay device-
        resident across queries.
    """

    def __init__(
        self,
        devices: int,
        profile: DeviceProfile | str = GTX970,
        interconnect: Interconnect = PCIE3,
        partitioning: str = "range",
        morsels_per_device: int = 2,
        residency: bool = False,
    ):
        self.devices = validate_devices(devices)
        self.partitioning = validate_partitioning(partitioning)
        if isinstance(morsels_per_device, bool) or not isinstance(
            morsels_per_device, int
        ) or morsels_per_device < 1:
            raise ConfigurationError(
                f"morsels_per_device must be an integer >= 1, got "
                f"{morsels_per_device!r}"
            )
        self.morsels_per_device = morsels_per_device
        self.profile = get_profile(profile) if isinstance(profile, str) else profile
        self.fleet = DeviceFleet(
            self.profile, self.devices, interconnect=interconnect, residency=residency
        )
        self._partition_cache: dict[tuple, PartitionSet] = {}
        self._cache_lock = threading.Lock()
        #: One query at a time per fleet (device profiler state is
        #: per-query); the serving layer gives each worker its own
        #: executor, same as it gives each worker its own device.
        self._run_lock = threading.Lock()
        self._totals_lock = threading.Lock()
        self._queries = 0
        self._fallbacks = 0
        self._device_totals = [
            {"morsels": 0, "busy_ms": 0.0, "pcie_bytes": 0, "queries": 0}
            for _ in range(self.devices)
        ]

    # ------------------------------------------------------------------
    def execute(
        self,
        engine: Engine,
        plan: LogicalPlan | PhysicalQuery,
        database: Database,
        seed: int = 42,
    ) -> ExecutionResult:
        """Run one query over the fleet and merge the partials."""
        if isinstance(plan, PhysicalQuery):
            query = plan
        else:
            query = extract_pipelines(plan, database)
        with self._run_lock:
            final = query.final_pipeline
            if final.source_is_virtual:
                return self._execute_fallback(engine, query, database, seed)
            return self._execute_partitioned(engine, query, database, seed)

    # ------------------------------------------------------------------
    def _partitions(self, database: Database, fact_table: str) -> PartitionSet:
        parts = self.devices * self.morsels_per_device
        serial = database.fingerprint()[0]  # stable catalog identity
        key = (serial, fact_table, self.partitioning, parts)
        with self._cache_lock:
            cached = self._partition_cache.get(key)
            if cached is None:
                cached = build_partitions(
                    database, fact_table, parts, self.partitioning
                )
                self._partition_cache[key] = cached
            else:
                cached.refresh(database)
            return cached

    # ------------------------------------------------------------------
    def _execute_partitioned(
        self, engine: Engine, query: PhysicalQuery, database: Database, seed: int
    ) -> ExecutionResult:
        final = query.final_pipeline
        tracer = active_tracer()
        owned = tracer is None and tracing_enabled()
        if owned:
            tracer = Tracer(
                engine=f"scaleout[{self.devices}x{engine.name}]",
                device=self.profile.name,
            )
        activation = tracer.activate() if owned else contextlib.nullcontext()
        with activation:
            if tracer is not None:
                with tracer.span("partition", "scaleout") as span:
                    partition_set = self._partitions(database, final.source)
                    span.attrs.update(
                        fact=final.source,
                        scheme=self.partitioning,
                        parts=partition_set.parts,
                    )
            else:
                partition_set = self._partitions(database, final.source)
            rewritten, scheme = rewrite_for_partials(final)
            loads = assign_pieces(
                [piece.nbytes for piece in partition_set.pieces], self.devices
            )
            runs = self._scatter(
                engine, query, rewritten, partition_set, loads, seed, tracer
            )
            merge_start = time.perf_counter()
            # Merge in global piece order, independent of which device
            # ran which piece: deterministic results for free.
            by_piece: dict[int, dict[str, np.ndarray]] = {}
            for run in runs:
                by_piece.update(run.partials)
            ordered = [by_piece[index] for index in sorted(by_piece)]
            merged = merge_partials(
                final.sink,
                final.output_schema,
                ordered,
                scheme=scheme,
                context="partitions",
            )
            table = _finalize_host(query, merged)
            merge_ms = (time.perf_counter() - merge_start) * 1e3
            if tracer is not None:
                tracer.event(
                    "merge", "scaleout", partials=len(ordered), rows=table.num_rows
                )
            stats = ScaleOutStats(
                devices=self.devices,
                partitions=partition_set.parts,
                scheme=self.partitioning,
                fact_table=final.source,
                shares=[run.share for run in runs],
                merge_ms=merge_ms,
            )
            result = self._package(engine, runs, table, stats)
            if owned:
                result.trace = tracer.finish()
        self._record_totals(stats)
        return result

    # ------------------------------------------------------------------
    def _scatter(
        self,
        engine: Engine,
        query: PhysicalQuery,
        rewritten: Pipeline,
        partition_set: PartitionSet,
        loads: list[DeviceLoad],
        seed: int,
        tracer: Tracer | None,
    ) -> list[_DeviceRun]:
        """Run every device's share concurrently; returns device order."""
        active = [
            load
            for load in loads
            if any(partition_set.pieces[piece].rows for piece in load.pieces)
        ]
        if not active:
            return []
        runs: dict[int, _DeviceRun] = {}
        errors: list[BaseException] = []

        def run_device(load: DeviceLoad) -> None:
            try:
                runs[load.device] = self._run_device(
                    engine, query, rewritten, partition_set, load, seed, tracer
                )
            except BaseException as error:  # re-raised on the caller
                errors.append(error)

        if len(active) == 1:
            run_device(active[0])
        else:
            with ThreadPoolExecutor(
                max_workers=len(active), thread_name_prefix="repro-scaleout"
            ) as pool:
                list(pool.map(run_device, active))
        if errors:
            raise errors[0]
        ordered = [runs[load.device] for load in active]
        if tracer is not None:
            for run in ordered:
                if run.tracer is not None:
                    tracer.adopt(run.tracer)
        return ordered

    def _run_device(
        self,
        engine: Engine,
        query: PhysicalQuery,
        rewritten: Pipeline,
        partition_set: PartitionSet,
        load: DeviceLoad,
        seed: int,
        parent_tracer: Tracer | None,
    ) -> _DeviceRun:
        device = self.fleet.devices[load.device]
        pool = self.fleet.pools[load.device]
        self.fleet.begin_query(load.device)
        child = None
        if parent_tracer is not None:
            child = Tracer(
                f"device[{load.device}]",
                device_lane=load.device,
                device=device.profile.name,
            )
            child.root.category = "device"
        activation = child.activate() if child is not None else contextlib.nullcontext()
        partition_db = partition_set.database
        assert partition_db is not None
        with activation:
            runtime = QueryRuntime(device, partition_db, seed=seed, pool=pool)
            run = _DeviceRun(share=DeviceShare(device=load.device), tracer=child)
            try:
                # Build sides: every dimension pipeline runs on every
                # participating device (broadcast join).
                for index, pipeline in enumerate(query.pipelines[:-1]):
                    if child is None:
                        produced = engine.execute_pipeline(pipeline, runtime)
                    else:
                        produced = engine._execute_pipeline_traced(
                            index, pipeline, runtime, child
                        )
                    if pipeline.output_schema is not None and produced is not None:
                        runtime.register_virtual(
                            pipeline.output_name,
                            _cast_outputs(produced, pipeline.output_schema),
                            pipeline.output_schema,
                        )
                run.share.broadcast_bytes = runtime.input_bytes
                # Fact morsels, in piece order.
                for piece_index in load.pieces:
                    piece = partition_set.pieces[piece_index]
                    if piece.rows == 0:
                        continue
                    morsel = replace(
                        rewritten,
                        name=f"{rewritten.name}_p{piece.index}",
                        source=piece.table_name,
                    )
                    if child is None:
                        produced = engine.execute_pipeline(morsel, runtime)
                    else:
                        produced = engine._execute_pipeline_traced(
                            len(query.pipelines) - 1 + piece.index,
                            morsel,
                            runtime,
                            child,
                        )
                    assert produced is not None
                    gather_bytes = sum(
                        np.asarray(array).nbytes for array in produced.values()
                    )
                    device.record_stream_transfer(
                        gather_bytes, "d2h", label=f"gather.p{piece.index}"
                    )
                    run.partials[piece.index] = produced
                    run.share.morsels += 1
                    run.share.rows += piece.rows
                    run.share.gather_bytes += gather_bytes
                share = run.share
                share.input_bytes = runtime.input_bytes
                share.partition_bytes = runtime.input_bytes - share.broadcast_bytes
                share.kernel_ms = device.log.kernel_time_ms
                share.transfer_ms = device.log.transfer_time_ms
                share.busy_ms = device.log.total_time_ms
                share.placement_hits = runtime.placement_hits
                run.profile = device.log
                run.kernel_sources = dict(runtime.kernel_sources)
                run.placement = runtime.query_placement()
                return run
            finally:
                runtime.close()

    # ------------------------------------------------------------------
    def _execute_fallback(
        self, engine: Engine, query: PhysicalQuery, database: Database, seed: int
    ) -> ExecutionResult:
        """Whole-query execution on device 0 (unpartitionable plan)."""
        device = self.fleet.devices[0]
        pool = self.fleet.pools[0]
        if pool is not None:
            from ..placement import execute_with_placement

            result = execute_with_placement(engine, query, database, device, seed=seed)
        else:
            result = engine.execute(query, database, device, seed=seed)
        share = DeviceShare(
            device=0,
            morsels=1,
            rows=0,
            input_bytes=result.input_bytes,
            partition_bytes=result.input_bytes,
            gather_bytes=result.output_bytes,
            kernel_ms=result.profile.kernel_time_ms,
            transfer_ms=result.profile.transfer_time_ms,
            busy_ms=result.profile.total_time_ms,
        )
        stats = ScaleOutStats(
            devices=self.devices,
            partitions=1,
            scheme=self.partitioning,
            fact_table=None,
            shares=[share],
            fallback=True,
        )
        result.scaleout = stats
        result.engine = f"scaleout[{self.devices}x{engine.name}]"
        self._record_totals(stats)
        with self._totals_lock:
            self._fallbacks += 1
        return result

    # ------------------------------------------------------------------
    def _package(
        self,
        engine: Engine,
        runs: list[_DeviceRun],
        table: Table,
        stats: ScaleOutStats,
    ) -> ExecutionResult:
        profile = Profile(
            kernels=[trace for run in runs for trace in run.profile.kernels],
            transfers=[record for run in runs for record in run.profile.transfers],
        )
        kernel_sources: dict[str, str] = {}
        for run in runs:
            kernel_sources.update(run.kernel_sources)
        placement = None
        placements = [run.placement for run in runs if run.placement is not None]
        if placements:
            from ..placement.stats import QueryPlacement

            placement = QueryPlacement(
                hits=sum(p.hits for p in placements),
                misses=sum(p.misses for p in placements),
                hit_bytes=sum(p.hit_bytes for p in placements),
                transferred_bytes=sum(p.transferred_bytes for p in placements),
            )
        input_bytes = sum(run.share.input_bytes for run in runs)
        output_bytes = table.nbytes
        baseline_device = self.fleet.devices[0]
        return ExecutionResult(
            table=table,
            profile=profile,
            engine=f"scaleout[{self.devices}x{engine.name}]",
            device_name=f"{self.profile.name} x{self.devices}",
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            pcie_ms=baseline_device.pcie_baseline_ms(input_bytes, output_bytes),
            memory_bound_ms=baseline_device.memory_bound_ms(
                input_bytes + output_bytes
            ),
            kernel_sources=kernel_sources,
            placement=placement,
            scaleout=stats,
        )

    # ------------------------------------------------------------------
    def _record_totals(self, stats: ScaleOutStats) -> None:
        with self._totals_lock:
            self._queries += 1
            for share in stats.shares:
                totals = self._device_totals[share.device]
                totals["queries"] += 1
                totals["morsels"] += share.morsels
                totals["busy_ms"] += share.busy_ms
                totals["pcie_bytes"] += share.pcie_bytes

    def placement_stats(self):
        """Aggregated fleet residency counters (None without it)."""
        return self.fleet.placement_stats()

    def observe_metrics(self, metrics, **labels) -> None:
        """Export cumulative per-device gauges/counters into a
        :class:`~repro.telemetry.metrics.MetricsRegistry` (the serving
        layer calls this from ``Server.metrics_text``)."""
        with self._totals_lock:
            totals = [dict(entry) for entry in self._device_totals]
            queries, fallbacks = self._queries, self._fallbacks
        metrics.gauge(
            "repro_scaleout_devices", "Fleet size of the scale-out executor",
            **labels,
        ).set(self.devices)
        metrics.counter(
            "repro_scaleout_queries_total", "Queries executed by the fleet",
            **labels,
        ).set_total(queries)
        metrics.counter(
            "repro_scaleout_fallbacks_total",
            "Queries that ran unpartitioned on one device", **labels,
        ).set_total(fallbacks)
        for index, entry in enumerate(totals):
            device_labels = dict(labels, device=str(index))
            metrics.counter(
                "repro_scaleout_device_morsels_total",
                "Fact morsels executed per device", **device_labels,
            ).set_total(entry["morsels"])
            metrics.counter(
                "repro_scaleout_device_busy_ms_total",
                "Simulated busy milliseconds per device", **device_labels,
            ).set_total(entry["busy_ms"])
            metrics.counter(
                "repro_scaleout_device_pcie_bytes_total",
                "PCIe bytes (h2d + d2h) per device", **device_labels,
            ).set_total(entry["pcie_bytes"])


def _finalize_host(query: PhysicalQuery, merged: dict[str, np.ndarray]) -> Table:
    """Host-side result assembly: the scale-out twin of
    ``QueryRuntime.finalize`` — the d2h cost was already charged per
    gathered partial, so only the cast/sort/limit remain."""
    schema = query.output_schema
    assert schema is not None
    columns: dict[str, Column] = {}
    for name in query.output_columns:
        dtype = schema.dtypes[name]
        values = np.asarray(merged[name]).astype(dtype.numpy_dtype)
        columns[name] = Column(dtype, values, schema.dictionaries.get(name))
    table = Table(columns)
    if query.sort_keys:
        table = table.take(_sort_order(table, query.sort_keys))
    if query.limit is not None:
        table = table.slice(0, query.limit)
    return table
