"""Morsel scheduling with per-device load accounting.

The executor over-partitions the fact table into more pieces (morsels)
than devices and assigns them with a deterministic longest-processing-
time (LPT) greedy: heaviest remaining morsel to the least-loaded
device.  With skewed partitions (hash partitioning of a Zipf-skewed
key) piece sizes vary widely; over-partitioning plus LPT redistributes
the small morsels around the straggler so the makespan approaches the
mean load instead of the max piece.  The assignment is computed from
*estimated* cost (piece bytes) before execution — not from observed
host timings — so results merge in deterministic piece order and the
simulated timeline is reproducible run to run.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class DeviceLoad:
    """Per-device load account, filled during scheduling and execution."""

    device: int
    pieces: list[int] = field(default_factory=list)
    #: Scheduling-time estimate (piece bytes).
    estimated_bytes: int = 0
    #: Observed simulated busy time, recorded after execution.
    busy_ms: float = 0.0


def assign_pieces(
    costs: Sequence[int],
    devices: int,
    eligible: Sequence[Sequence[int]] | None = None,
) -> list[DeviceLoad]:
    """LPT assignment of pieces (indexed 0..n-1, weighted by ``costs``)
    onto ``devices`` devices; deterministic (ties break on the lower
    piece index, then the lower device index).

    ``eligible`` (one device-index collection per piece) restricts
    which devices each piece may land on — the recovery path uses it to
    re-schedule failed morsels onto *surviving* devices that have not
    already failed them.  A piece with no eligible device raises
    ``ValueError`` (the executor turns that into
    :class:`~repro.errors.MorselExhaustedError` before scheduling).
    """
    if devices < 1:
        raise ValueError("devices must be >= 1")
    loads = [DeviceLoad(device=index) for index in range(devices)]
    order = sorted(range(len(costs)), key=lambda piece: (-costs[piece], piece))
    if eligible is None:
        heap: list[tuple[int, int]] = [(0, index) for index in range(devices)]
        heapq.heapify(heap)
        for piece in order:
            load_bytes, device = heapq.heappop(heap)
            loads[device].pieces.append(piece)
            loads[device].estimated_bytes = load_bytes + costs[piece]
            heapq.heappush(heap, (loads[device].estimated_bytes, device))
    else:
        if len(eligible) != len(costs):
            raise ValueError("eligible must list candidate devices per piece")
        for piece in order:
            candidates = sorted(set(eligible[piece]))
            if not candidates:
                raise ValueError(f"piece {piece} has no eligible device")
            if any(d < 0 or d >= devices for d in candidates):
                raise ValueError(
                    f"piece {piece} names an unknown device in {candidates}"
                )
            device = min(candidates, key=lambda d: (loads[d].estimated_bytes, d))
            loads[device].pieces.append(piece)
            loads[device].estimated_bytes += costs[piece]
    for load in loads:
        load.pieces.sort()  # execute (and merge) in piece order
    return loads


def imbalance(values: Sequence[float]) -> float:
    """Max/mean ratio over the non-zero loads (1.0 = perfectly even)."""
    active = [value for value in values if value > 0]
    if not active:
        return 1.0
    return max(active) / (sum(active) / len(active))
