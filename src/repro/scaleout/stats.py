"""Scale-out execution statistics (dataclasses only).

``ScaleOutStats.recovery`` embeds the per-query
:class:`~repro.faults.recovery.RecoveryStats` (itself import-light) so
every result of the recovering executor carries its fault accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults.recovery import RecoveryStats


@dataclass
class DeviceShare:
    """One device's share of a scale-out execution."""

    device: int
    #: Fact morsels this device executed.
    morsels: int = 0
    #: Fact rows this device scanned.
    rows: int = 0
    #: Total PCIe h2d bytes this device paid.
    input_bytes: int = 0
    #: h2d bytes of the broadcast build sides (dimension pipelines),
    #: duplicated on every participating device.
    broadcast_bytes: int = 0
    #: h2d bytes of this device's fact partitions (disjoint across
    #: devices; sums to the single-device fact volume).
    partition_bytes: int = 0
    #: d2h bytes of the partial results gathered back to the host.
    gather_bytes: int = 0
    kernel_ms: float = 0.0
    transfer_ms: float = 0.0
    #: Simulated busy time (kernels + transfers) on this device.
    busy_ms: float = 0.0
    #: Buffer-pool hits (0 without residency).
    placement_hits: int = 0

    @property
    def pcie_bytes(self) -> int:
        """Total bytes over this device's link (h2d + d2h)."""
        return self.input_bytes + self.gather_bytes


@dataclass
class ScaleOutStats:
    """Fleet-level accounting, attached as ``ExecutionResult.scaleout``."""

    devices: int
    partitions: int
    scheme: str
    fact_table: str | None
    shares: list[DeviceShare] = field(default_factory=list)
    #: Host-side scatter-gather merge time (wall clock).
    merge_ms: float = 0.0
    #: True when the query could not be partitioned (virtual-table
    #: final pipeline) and ran whole on one device instead.
    fallback: bool = False
    #: Per-query fault/recovery accounting (``None`` on the
    #: unpartitioned fallback path, which bypasses the morsel recovery
    #: machinery).
    recovery: RecoveryStats | None = None

    # ------------------------------------------------------------------
    @property
    def makespan_ms(self) -> float:
        """Parallel completion time: the busiest device's clock."""
        return max((share.busy_ms for share in self.shares), default=0.0)

    @property
    def serial_ms(self) -> float:
        """Total device work (what one device would have to do)."""
        return sum(share.busy_ms for share in self.shares)

    @property
    def imbalance(self) -> float:
        """makespan / mean busy over participating devices (1.0 = even)."""
        active = [share.busy_ms for share in self.shares if share.busy_ms > 0]
        if not active:
            return 1.0
        return max(active) / (sum(active) / len(active))

    @property
    def input_bytes(self) -> int:
        return sum(share.input_bytes for share in self.shares)

    @property
    def partition_bytes(self) -> int:
        return sum(share.partition_bytes for share in self.shares)

    @property
    def broadcast_bytes(self) -> int:
        return sum(share.broadcast_bytes for share in self.shares)

    @property
    def gather_bytes(self) -> int:
        return sum(share.gather_bytes for share in self.shares)

    @property
    def broadcast_overhead_bytes(self) -> int:
        """Extra h2d bytes paid for duplicating the build sides beyond
        the one copy a single device would transfer."""
        per_device = [share.broadcast_bytes for share in self.shares if share.morsels]
        if not per_device:
            return 0
        return sum(per_device) - max(per_device)

    def summary(self) -> str:
        mode = "fallback (unpartitionable final pipeline)" if self.fallback else (
            f"{self.partitions} {self.scheme} partitions of {self.fact_table}"
        )
        text = (
            f"{self.devices} devices, {mode}; "
            f"makespan {self.makespan_ms:.3f} ms "
            f"(serial {self.serial_ms:.3f} ms, imbalance {self.imbalance:.2f}), "
            f"broadcast overhead {self.broadcast_overhead_bytes / 1e6:.2f} MB, "
            f"gather {self.gather_bytes / 1e3:.1f} KB"
        )
        if self.recovery is not None and self.recovery.faulted:
            text += f"; recovery: {self.recovery.summary()}"
        return text
