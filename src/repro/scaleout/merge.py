"""Partial-result merging shared by every partitioned execution path.

Three macro execution models in this repo split one pipeline's input
into pieces and re-reduce the per-piece outputs: the out-of-core block
streamer (:class:`repro.macro.batch.BatchExecutor`), the
vector-at-a-time engine, and the scale-out multi-device executor.
They all share :func:`merge_partials` so the merge semantics — and
their empty-partial edge cases — live in exactly one place.

Two subtleties this module owns:

* **Empty partials must not poison min/max/avg.** A piece where no row
  survived the filters emits the single-tuple placeholder ``[0.0]``
  (see ``repro.engines.runtime._reduce_spec``), which is
  indistinguishable from a real aggregate of 0.  Callers that know the
  per-piece qualifying-row counts pass them via ``counts`` (the vector
  engine reads ``ctx.aggregation.inputs``); the scale-out path instead
  rewrites the pipeline with :func:`rewrite_for_partials`, which
  injects a hidden ``count(*)`` so the counts travel inside the
  partials themselves and work for *any* engine.
* **AVG does not merge from plain partials** (an average of averages is
  wrong under skew).  Without a :class:`PartialScheme` the merge
  refuses, exactly as block streaming always has; with a scheme, AVG
  is decomposed into hidden SUM and COUNT partials and recombined
  exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import PlanError
from ..plan.logical import AggSpec, aggregate_dtype
from ..plan.physical import AggregateSink, MaterializeSink, Pipeline, Sink
from ..plan.logical import PlanSchema
from ..primitives.segmented import factorize, grouped_reduce
from ..storage.dtypes import DType

#: How each aggregate op combines across partials (AVG is absent on
#: purpose: it only merges via a :class:`PartialScheme` decomposition).
MERGE_OPS = {"sum": "sum", "count": "sum", "min": "min", "max": "max"}

#: Hidden column carrying the per-partial qualifying-row count.
PARTIAL_ROWS = "__partial_rows__"


def _sum_name(name: str) -> str:
    return f"__partial_sum__{name}"


def _count_name(name: str) -> str:
    return f"__partial_count__{name}"


@dataclass(frozen=True)
class PartialScheme:
    """How a rewritten pipeline smuggles merge metadata in its partials.

    ``rows_name`` is the hidden single-tuple ``count(*)`` output (None
    for grouped sinks, where empty pieces simply contribute zero
    groups); ``avg_parts`` maps each original AVG output to its hidden
    ``(sum, count)`` decomposition.
    """

    rows_name: str | None = None
    avg_parts: dict[str, tuple[str, str]] = field(default_factory=dict)

    @property
    def hidden_names(self) -> set[str]:
        names = set()
        if self.rows_name is not None:
            names.add(self.rows_name)
        for sum_name, count_name in self.avg_parts.values():
            names.add(sum_name)
            names.add(count_name)
        return names


def rewrite_for_partials(pipeline: Pipeline) -> tuple[Pipeline, PartialScheme]:
    """A clone of ``pipeline`` whose partials are always mergeable.

    For aggregate sinks this (a) replaces each AVG spec by hidden SUM
    and COUNT specs, and (b) for single-tuple sinks appends a hidden
    ``count(*)`` so the merge can tell a real 0 from the empty-piece
    placeholder.  Materialize sinks pass through unchanged.  The clone
    shares stages with the original (both are read-only at execution
    time); its sink and output schema are fresh objects.
    """
    sink = pipeline.sink
    if not isinstance(sink, AggregateSink):
        return pipeline, PartialScheme()
    scope_dtypes = pipeline.scope_schema.dtypes
    specs: list[AggSpec] = []
    avg_parts: dict[str, tuple[str, str]] = {}
    schema = (
        pipeline.output_schema.copy()
        if pipeline.output_schema is not None
        else PlanSchema({}, {})
    )
    for spec in sink.aggregates:
        if spec.op != "avg":
            specs.append(spec)
            continue
        sum_name, count_name = _sum_name(spec.name), _count_name(spec.name)
        avg_parts[spec.name] = (sum_name, count_name)
        sum_spec = AggSpec("sum", spec.expr, sum_name)
        specs.append(sum_spec)
        specs.append(AggSpec("count", None, count_name))
        schema.dtypes[sum_name] = aggregate_dtype(sum_spec, scope_dtypes)
        schema.dtypes[count_name] = DType.INT64
    rows_name = None
    if not sink.group_keys:
        rows_name = PARTIAL_ROWS
        specs.append(AggSpec("count", None, rows_name))
        schema.dtypes[rows_name] = DType.INT64
    scheme = PartialScheme(rows_name=rows_name, avg_parts=avg_parts)
    rewritten = replace(
        pipeline,
        sink=AggregateSink(group_keys=list(sink.group_keys), aggregates=specs),
        output_schema=schema,
    )
    return rewritten, scheme


def merge_partials(
    sink: Sink,
    schema: PlanSchema | None,
    partials: list[dict[str, np.ndarray]],
    counts: list[int] | None = None,
    scheme: PartialScheme | None = None,
    context: str = "partitions",
) -> dict[str, np.ndarray]:
    """Re-reduce per-piece pipeline outputs into one output dict.

    Parameters
    ----------
    sink:
        The *original* sink (its spec list names the outputs to
        produce).  Materialize outputs concatenate in piece order;
        aggregate outputs re-reduce per :data:`MERGE_OPS`.
    schema:
        When given, merged aggregate columns are cast to these dtypes
        (the block streamer's behaviour; the vector engine passes
        ``None`` and lets the engine's output cast handle it).
    counts:
        Per-piece qualifying-row counts, used to mask empty-piece
        min/max placeholders (single-tuple sinks only).
    scheme:
        The :class:`PartialScheme` of a pipeline rewritten by
        :func:`rewrite_for_partials`; enables AVG merging and supplies
        row counts from the hidden ``count(*)`` when ``counts`` is not
        given.
    context:
        Word for error messages: ``"blocks"``, ``"vectors"``, or
        ``"partitions"``.
    """
    if isinstance(sink, MaterializeSink):
        return {
            name: (
                np.concatenate([partial[name] for partial in partials])
                if partials
                else np.zeros(0)
            )
            for name in sink.outputs
        }
    if not isinstance(sink, AggregateSink):
        raise PlanError(
            f"cannot merge partials across {context} for sink "
            f"{type(sink).__name__} (materialize and aggregate only)"
        )
    if scheme is None:
        scheme = PartialScheme()
    for spec in sink.aggregates:
        if spec.op not in MERGE_OPS and spec.name not in scheme.avg_parts:
            raise PlanError(
                f"aggregate {spec.op!r} cannot be merged across {context} "
                "(use run-to-finish for AVG queries)"
            )
    if sink.group_keys:
        merged = _merge_grouped(sink, partials, scheme, schema)
    else:
        merged = _merge_single(sink, partials, counts, scheme)
    if schema is not None:
        for name, dtype in schema.dtypes.items():
            if name in merged:
                merged[name] = np.asarray(merged[name]).astype(dtype.numpy_dtype)
    return merged


def _partial_rows(
    partials: list[dict[str, np.ndarray]],
    counts: list[int] | None,
    scheme: PartialScheme,
) -> list[int] | None:
    """Qualifying rows per piece, from whichever channel is available."""
    if counts is not None:
        return counts
    if scheme.rows_name is not None:
        return [int(np.asarray(partial[scheme.rows_name]).sum()) for partial in partials]
    return None


def _merge_single(
    sink: AggregateSink,
    partials: list[dict[str, np.ndarray]],
    counts: list[int] | None,
    scheme: PartialScheme,
) -> dict[str, np.ndarray]:
    rows = _partial_rows(partials, counts, scheme)
    merged: dict[str, np.ndarray] = {}
    for spec in sink.aggregates:
        if spec.name in scheme.avg_parts:
            sum_name, count_name = scheme.avg_parts[spec.name]
            total = sum(float(np.asarray(p[sum_name]).sum()) for p in partials)
            n = sum(int(np.asarray(p[count_name]).sum()) for p in partials)
            merged[spec.name] = np.array([total / n if n else 0.0])
            continue
        op = MERGE_OPS[spec.op]
        arrays = [partial[spec.name] for partial in partials]
        if op in ("min", "max") and rows is not None:
            # Pieces where no row qualified emit the empty-selection
            # placeholder 0, which must not participate in the merge.
            arrays = [array for array, n in zip(arrays, rows) if n]
            if not arrays:
                merged[spec.name] = np.array([0.0])
                continue
        stacked = np.concatenate(arrays) if arrays else np.zeros(0)
        value = getattr(np, op)(stacked) if len(stacked) else 0
        merged[spec.name] = np.asarray([value])
    return merged


def _merge_grouped(
    sink: AggregateSink,
    partials: list[dict[str, np.ndarray]],
    scheme: PartialScheme,
    schema: PlanSchema | None,
) -> dict[str, np.ndarray]:
    key_names = [name for name, _ in sink.group_keys]
    if not partials:
        # Every piece was empty: zero groups, empty output columns.
        empty: dict[str, np.ndarray] = {}
        for name in key_names + [spec.name for spec in sink.aggregates]:
            dtype = (
                schema.dtypes[name].numpy_dtype
                if schema is not None and name in schema.dtypes
                else np.float64
            )
            empty[name] = np.zeros(0, dtype=dtype)
        return empty
    stacked_keys = [
        np.concatenate([partial[name] for partial in partials]) for name in key_names
    ]
    codes, uniques = factorize(stacked_keys)
    merged = {name: unique for name, unique in zip(key_names, uniques)}
    groups = len(uniques[0]) if uniques else 0

    def stack(name: str) -> np.ndarray:
        return np.concatenate([partial[name] for partial in partials])

    for spec in sink.aggregates:
        if spec.name in scheme.avg_parts:
            sum_name, count_name = scheme.avg_parts[spec.name]
            sums = grouped_reduce(codes, groups, stack(sum_name), "sum")
            ns = grouped_reduce(codes, groups, stack(count_name), "sum")
            merged[spec.name] = np.asarray(sums, dtype=np.float64) / np.maximum(ns, 1)
            continue
        merged[spec.name] = grouped_reduce(
            codes, groups, stack(spec.name), MERGE_OPS[spec.op]
        )
    return merged
