"""A fleet of virtual devices for data-parallel execution.

Each fleet member is a fully independent :class:`VirtualCoprocessor`
with its **own** :class:`~repro.hardware.profiles.DeviceProfile` copy,
its own simulated clock (the device profile log), and — when residency
is enabled — its own :class:`~repro.placement.BufferPool`, mirroring
how the serving layer gives every worker a private device (profiler
state is per-query and must not be shared across concurrent work).
"""

from __future__ import annotations

from dataclasses import replace

from ..hardware.device import VirtualCoprocessor
from ..hardware.interconnect import PCIE3, Interconnect
from ..hardware.profiles import DeviceProfile
from ..placement import BufferPool
from ..placement.stats import PlacementStats


class DeviceFleet:
    """N private virtual devices (and optional per-device pools)."""

    def __init__(
        self,
        profile: DeviceProfile,
        count: int,
        interconnect: Interconnect = PCIE3,
        residency: bool = False,
    ):
        if count < 1:
            raise ValueError("fleet needs at least one device")
        self.profile = profile
        self.devices = [
            VirtualCoprocessor(replace(profile), interconnect=interconnect)
            for _ in range(count)
        ]
        self.pools: list[BufferPool | None] = [
            BufferPool(device) if residency else None for device in self.devices
        ]

    def __len__(self) -> int:
        return len(self.devices)

    def begin_query(self, device_index: int) -> None:
        """Start a fresh query on one device: keep pool-resident
        buffers when residency is on, full reset otherwise."""
        device = self.devices[device_index]
        if self.pools[device_index] is not None:
            device.begin_query()
        else:
            device.reset_all()

    def placement_stats(self) -> PlacementStats | None:
        """Aggregated residency counters (None without residency)."""
        snapshots = [pool.stats() for pool in self.pools if pool is not None]
        if not snapshots:
            return None
        return PlacementStats.aggregate(snapshots)
