"""A fleet of virtual devices for data-parallel execution.

Each fleet member is a fully independent :class:`VirtualCoprocessor`
with its **own** :class:`~repro.hardware.profiles.DeviceProfile` copy,
its own simulated clock (the device profile log), and — when residency
is enabled — its own :class:`~repro.placement.BufferPool`, mirroring
how the serving layer gives every worker a private device (profiler
state is per-query and must not be shared across concurrent work).
"""

from __future__ import annotations

from dataclasses import replace

from ..hardware.device import VirtualCoprocessor
from ..hardware.interconnect import PCIE3, Interconnect
from ..hardware.profiles import DeviceProfile
from ..placement import BufferPool
from ..placement.stats import PlacementStats


class DeviceFleet:
    """N private virtual devices (and optional per-device pools)."""

    def __init__(
        self,
        profile: DeviceProfile,
        count: int,
        interconnect: Interconnect = PCIE3,
        residency: bool = False,
        compression=None,
    ):
        if count < 1:
            raise ValueError("fleet needs at least one device")
        self.profile = profile
        self.compression = compression
        self.devices = [
            VirtualCoprocessor(replace(profile), interconnect=interconnect)
            for _ in range(count)
        ]
        for device in self.devices:
            device.compression = compression
        self.pools: list[BufferPool | None] = [
            BufferPool(device) if residency else None for device in self.devices
        ]
        self._interconnect = interconnect
        #: Reserve device for the host out-of-core fallback (created on
        #: first use): when every fleet member is lost mid-query, the
        #: whole query re-runs through the streaming
        #: :class:`~repro.macro.batch.BatchExecutor` on this device,
        #: modeling the host-managed degradation path.
        self._host_device: VirtualCoprocessor | None = None

    def __len__(self) -> int:
        return len(self.devices)

    @property
    def live_devices(self) -> list[int]:
        """Indices of the devices currently in service."""
        return [index for index, device in enumerate(self.devices) if device.alive]

    def revive_all(self) -> None:
        """Return every lost device to service (start-of-query recovery:
        an injected loss lasts for the query that suffered it)."""
        for device in self.devices:
            if not device.alive:
                device.revive()

    def host_device(self) -> VirtualCoprocessor:
        """The lazily created host-fallback device (no buffer pool:
        the fallback streams out-of-core and keeps nothing resident)."""
        if self._host_device is None:
            self._host_device = VirtualCoprocessor(
                replace(self.profile), interconnect=self._interconnect
            )
            self._host_device.compression = self.compression
        return self._host_device

    def begin_query(self, device_index: int) -> None:
        """Start a fresh query on one device: keep pool-resident
        buffers when residency is on, full reset otherwise."""
        device = self.devices[device_index]
        if self.pools[device_index] is not None:
            device.begin_query()
        else:
            device.reset_all()

    def placement_stats(self) -> PlacementStats | None:
        """Aggregated residency counters (None without residency)."""
        snapshots = [pool.stats() for pool in self.pools if pool is not None]
        if not snapshots:
            return None
        return PlacementStats.aggregate(snapshots)
