"""Base-table partitioning for the scale-out executor.

The fact table (the final pipeline's base-table scan) is split into
``parts`` horizontal pieces, each registered as its own table in a
derived :class:`~repro.storage.database.Database` so per-device
:class:`~repro.engines.runtime.QueryRuntime` transfer dedup and
:class:`~repro.placement.BufferPool` residency key on stable names.
Dimension tables are *not* partitioned — they are shared by reference
and broadcast (transferred in full) to every device that builds a hash
table from them, the classic small-build-side broadcast join.

Two schemes:

* ``range`` — contiguous row ranges (zero-copy numpy views).  Pieces
  follow the generator's row order; results concatenate back in the
  original order, so range partitioning is also order-preserving.
* ``hash`` — rows are spread by a multiplicative hash of the first
  integer column (falling back to the row index), which decorrelates
  clustered/skewed inputs at the cost of one gather per piece.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..storage.database import Database
from ..storage.table import Table

#: Supported partitioning schemes.
PARTITION_SCHEMES = ("hash", "range")

#: Knuth's multiplicative constant (golden ratio, 64-bit).
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


def validate_devices(devices) -> int:
    """``devices`` as a positive int, or :class:`ConfigurationError`."""
    if isinstance(devices, bool) or not isinstance(devices, int):
        raise ConfigurationError(
            f"devices must be an integer >= 1, got {devices!r} "
            "(valid values: 1, 2, 3, ...)"
        )
    if devices < 1:
        raise ConfigurationError(
            f"devices must be >= 1, got {devices} (valid values: 1, 2, 3, ...)"
        )
    return devices


def validate_partitioning(scheme: str) -> str:
    """A known partitioning scheme name, or :class:`ConfigurationError`."""
    if scheme not in PARTITION_SCHEMES:
        choices = ", ".join(PARTITION_SCHEMES)
        raise ConfigurationError(
            f"unknown partitioning scheme {scheme!r}; valid choices: {choices}"
        )
    return scheme


def partition_name(fact_table: str, index: int) -> str:
    """The catalog name of piece ``index`` of ``fact_table``."""
    return f"__scaleout__{fact_table}__p{index}"


def hash_key_column(table: Table) -> str | None:
    """The partition key for hash partitioning: the first integer
    column (schema order), or ``None`` to hash the row index."""
    for name in table.column_names:
        if table.column(name).values.dtype.kind in "iu":
            return name
    return None


def partition_selectors(
    table: Table, parts: int, scheme: str, key_column: str | None = None
) -> list[slice] | list[np.ndarray]:
    """Row selectors (slices for range, index arrays for hash), one per
    piece; every row lands in exactly one piece."""
    rows = table.num_rows
    if scheme == "range":
        bounds = [rows * j // parts for j in range(parts + 1)]
        return [slice(bounds[j], bounds[j + 1]) for j in range(parts)]
    if key_column is not None:
        keys = table.column(key_column).values.astype(np.uint64)
    else:
        keys = np.arange(rows, dtype=np.uint64)
    hashed = keys * _HASH_MULTIPLIER
    codes = ((hashed >> np.uint64(32)) % np.uint64(parts)).astype(np.int64)
    return [np.flatnonzero(codes == j) for j in range(parts)]


@dataclass
class PartitionPiece:
    """One horizontal piece of the fact table."""

    index: int
    table_name: str
    rows: int
    #: Bytes of ALL columns of the piece (scheduling weight; the bytes
    #: a query actually moves depend on its required columns).
    nbytes: int


@dataclass
class PartitionSet:
    """A partitioned view of one catalog, reusable across queries.

    ``database`` contains every parent table *by reference* plus one
    table per fact piece under :func:`partition_name`.  The derived
    catalog keeps its own serial but is cached per parent, so plan and
    buffer-pool keys stay stable across queries; :meth:`refresh`
    re-registers the pieces (bumping the derived version, which
    invalidates pool entries) when the parent catalog mutates.
    """

    fact_table: str
    scheme: str
    parts: int
    key_column: str | None
    pieces: list[PartitionPiece] = field(default_factory=list)
    database: Database | None = None
    parent_fingerprint: tuple = (0, 0)

    def refresh(self, parent: Database) -> None:
        if (
            self.database is not None
            and self.parent_fingerprint == parent.fingerprint()
        ):
            return
        fact = parent.table(self.fact_table)
        key = hash_key_column(fact) if self.scheme == "hash" else None
        selectors = partition_selectors(fact, self.parts, self.scheme, key)
        tables: dict[str, Table] = {
            name: parent.table(name) for name in parent.table_names
        }
        self.pieces = []
        for index, selector in enumerate(selectors):
            if isinstance(selector, slice):
                piece_table = fact.slice(selector.start, selector.stop)
            else:
                piece_table = fact.take(selector)
            name = partition_name(self.fact_table, index)
            tables[name] = piece_table
            self.pieces.append(
                PartitionPiece(
                    index=index,
                    table_name=name,
                    rows=piece_table.num_rows,
                    nbytes=piece_table.nbytes,
                )
            )
        self.key_column = key
        if self.database is None:
            self.database = Database(tables)
        else:
            stale = set(self.database.table_names) - set(tables)
            for name, table in tables.items():
                self.database.replace(name, table)
            for name in stale:
                self.database.drop(name)
        self.parent_fingerprint = parent.fingerprint()


def build_partitions(
    parent: Database, fact_table: str, parts: int, scheme: str
) -> PartitionSet:
    """Partition ``fact_table`` of ``parent`` into ``parts`` pieces."""
    validate_partitioning(scheme)
    partition_set = PartitionSet(
        fact_table=fact_table, scheme=scheme, parts=parts, key_column=None
    )
    partition_set.refresh(parent)
    return partition_set
