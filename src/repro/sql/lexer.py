"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SqlError

KEYWORDS = {
    "select",
    "from",
    "where",
    "group",
    "order",
    "by",
    "having",
    "as",
    "and",
    "or",
    "not",
    "between",
    "in",
    "asc",
    "desc",
    "limit",
    "sum",
    "count",
    "min",
    "max",
    "avg",
}

_PUNCT = {
    "<=": "LE",
    ">=": "GE",
    "<>": "NE",
    "!=": "NE",
    "=": "EQ",
    "<": "LT",
    ">": "GT",
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    "+": "PLUS",
    "-": "MINUS",
    "*": "STAR",
    "/": "SLASH",
    "%": "PERCENT",
    ";": "SEMI",
}


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD, IDENT, NUMBER, STRING, or a punct kind
    value: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text, lowercasing keywords and identifiers."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 1
            if j >= n:
                raise SqlError(f"unterminated string literal at offset {i}")
            tokens.append(Token("STRING", text[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j].lower()
            kind = "KEYWORD" if word in KEYWORDS else "IDENT"
            tokens.append(Token(kind, word, i))
            i = j
            continue
        two = text[i : i + 2]
        if two in _PUNCT:
            tokens.append(Token(_PUNCT[two], two, i))
            i += 2
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, i))
            i += 1
            continue
        raise SqlError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(Token("EOF", "", n))
    return tokens
