"""Recursive-descent parser for the SQL subset.

Grammar (roughly)::

    query     := SELECT item (',' item)* FROM ident (',' ident)*
                 [WHERE disjunction] [GROUP BY expr (',' expr)*]
                 [HAVING disjunction]
                 [ORDER BY ident [ASC|DESC] (',' ...)*] [LIMIT number]
    item      := agg '(' ['*'|expr] ')' [AS ident] | expr [AS ident]
    disjunction := conjunction (OR conjunction)*
    conjunction := predicate (AND predicate)*
    predicate := NOT predicate | '(' disjunction ')'
               | expr (=|<>|<|<=|>|>=) expr
               | expr BETWEEN expr AND expr
               | expr IN '(' literal (',' literal)* ')'
    expr      := additive arithmetic over primaries

The subset covers the star schema benchmark and the simple TPC-H
queries; everything else uses the builder or JSON plans, matching the
paper's two translation workflows (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SqlError
from ..expressions.expr import (
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    Not,
)
from .lexer import Token, tokenize

_AGG_OPS = {"sum", "count", "min", "max", "avg"}

_COMPARISON_TOKENS = {
    "EQ": "==",
    "NE": "!=",
    "LT": "<",
    "LE": "<=",
    "GT": ">",
    "GE": ">=",
}


@dataclass
class AggCall:
    """An aggregate call in the select list (``expr`` None for COUNT(*))."""

    op: str
    expr: Expr | None


@dataclass
class SelectItem:
    value: Expr | AggCall
    alias: str | None


@dataclass
class OrderItem:
    column: str
    ascending: bool


@dataclass
class QueryAst:
    items: list[SelectItem]
    tables: list[str]
    where: Expr | None
    group_by: list[Expr]
    having: Expr | None
    order_by: list[OrderItem]
    limit: int | None


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            actual = self.peek()
            wanted = value or kind
            raise SqlError(
                f"expected {wanted!r} at offset {actual.position}, got {actual.value!r}"
            )
        return token

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token.kind == "KEYWORD" and token.value == word

    # ------------------------------------------------------------------
    def parse_query(self) -> QueryAst:
        self.expect("KEYWORD", "select")
        items = [self.parse_select_item()]
        while self.accept("COMMA"):
            items.append(self.parse_select_item())
        self.expect("KEYWORD", "from")
        tables = [self.expect("IDENT").value]
        while self.accept("COMMA"):
            tables.append(self.expect("IDENT").value)
        where = None
        if self.accept("KEYWORD", "where"):
            where = self.parse_disjunction()
        group_by: list[Expr] = []
        if self.accept("KEYWORD", "group"):
            self.expect("KEYWORD", "by")
            group_by.append(self.parse_additive())
            while self.accept("COMMA"):
                group_by.append(self.parse_additive())
        having = None
        if self.accept("KEYWORD", "having"):
            having = self.parse_disjunction()
        order_by: list[OrderItem] = []
        if self.accept("KEYWORD", "order"):
            self.expect("KEYWORD", "by")
            order_by.append(self.parse_order_item())
            while self.accept("COMMA"):
                order_by.append(self.parse_order_item())
        limit = None
        if self.accept("KEYWORD", "limit"):
            limit = int(self.expect("NUMBER").value)
        self.accept("SEMI")
        self.expect("EOF")
        return QueryAst(
            items=items,
            tables=tables,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
        )

    def parse_select_item(self) -> SelectItem:
        token = self.peek()
        if token.kind == "KEYWORD" and token.value in _AGG_OPS:
            self.advance()
            self.expect("LPAREN")
            if self.accept("STAR"):
                if token.value != "count":
                    raise SqlError(f"{token.value}(*) is not valid")
                call = AggCall("count", None)
            else:
                call = AggCall(token.value, self.parse_additive())
            self.expect("RPAREN")
            alias = self.parse_alias()
            return SelectItem(call, alias)
        expr = self.parse_additive()
        return SelectItem(expr, self.parse_alias())

    def parse_alias(self) -> str | None:
        if self.accept("KEYWORD", "as"):
            return self.expect("IDENT").value
        token = self.accept("IDENT")
        return token.value if token else None

    def parse_order_item(self) -> OrderItem:
        name = self.expect("IDENT").value
        ascending = True
        if self.accept("KEYWORD", "desc"):
            ascending = False
        else:
            self.accept("KEYWORD", "asc")
        return OrderItem(name, ascending)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def parse_disjunction(self) -> Expr:
        operands = [self.parse_conjunction()]
        while self.accept("KEYWORD", "or"):
            operands.append(self.parse_conjunction())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("or", tuple(operands))

    def parse_conjunction(self) -> Expr:
        operands = [self.parse_predicate()]
        while self.accept("KEYWORD", "and"):
            operands.append(self.parse_predicate())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("and", tuple(operands))

    def parse_predicate(self) -> Expr:
        if self.accept("KEYWORD", "not"):
            return Not(self.parse_predicate())
        # Parenthesized boolean vs parenthesized arithmetic: try boolean
        # first by lookahead for a comparison after the closing paren.
        if self.peek().kind == "LPAREN" and self._paren_is_boolean():
            self.expect("LPAREN")
            inner = self.parse_disjunction()
            self.expect("RPAREN")
            return inner
        left = self.parse_additive()
        token = self.peek()
        if token.kind in _COMPARISON_TOKENS:
            self.advance()
            right = self.parse_additive()
            return Comparison(_COMPARISON_TOKENS[token.kind], left, right)
        if self.accept("KEYWORD", "between"):
            low = self.parse_additive()
            self.expect("KEYWORD", "and")
            high = self.parse_additive()
            return BooleanOp(
                "and", (Comparison(">=", left, low), Comparison("<=", left, high))
            )
        if self.accept("KEYWORD", "in"):
            self.expect("LPAREN")
            options = [self.parse_literal()]
            while self.accept("COMMA"):
                options.append(self.parse_literal())
            self.expect("RPAREN")
            return InList(left, tuple(options))
        raise SqlError(
            f"expected a comparison at offset {token.position}, got {token.value!r}"
        )

    def _paren_is_boolean(self) -> bool:
        """Lookahead: does this parenthesized group contain AND/OR/NOT or
        a comparison at depth 1?"""
        depth = 0
        for token in self.tokens[self.pos :]:
            if token.kind == "LPAREN":
                depth += 1
            elif token.kind == "RPAREN":
                depth -= 1
                if depth == 0:
                    return False
            elif depth >= 1:
                if token.kind == "KEYWORD" and token.value in ("and", "or", "not", "between", "in"):
                    return True
                if token.kind in _COMPARISON_TOKENS:
                    return True
            if token.kind == "EOF":
                break
        return False

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            if self.accept("PLUS"):
                left = BinaryOp("+", left, self.parse_multiplicative())
            elif self.accept("MINUS"):
                left = BinaryOp("-", left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            if self.accept("STAR"):
                left = BinaryOp("*", left, self.parse_unary())
            elif self.accept("SLASH"):
                left = BinaryOp("/", left, self.parse_unary())
            elif self.accept("PERCENT"):
                left = BinaryOp("%", left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expr:
        if self.accept("MINUS"):
            operand = self.parse_unary()
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                return Literal(-operand.value)
            return BinaryOp("-", Literal(0), operand)
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.kind == "STRING":
            self.advance()
            return Literal(token.value)
        if token.kind == "IDENT":
            self.advance()
            return ColumnRef(token.value)
        if token.kind == "LPAREN":
            self.advance()
            inner = self.parse_additive()
            self.expect("RPAREN")
            return inner
        raise SqlError(
            f"unexpected token {token.value!r} at offset {token.position}"
        )

    def parse_literal(self) -> Literal:
        expr = self.parse_unary()
        if not isinstance(expr, Literal):
            raise SqlError("IN lists accept only literals")
        return expr


def parse_query(text: str) -> QueryAst:
    """Parse a SELECT statement into a :class:`QueryAst`."""
    return _Parser(tokenize(text)).parse_query()


def parse_expression(text: str) -> Expr:
    """Parse a standalone (boolean or arithmetic) expression.

    Used by the JSON plan loader for predicate and projection strings.
    """
    parser = _Parser(tokenize(text))
    # Heuristic: try a boolean predicate first, fall back to arithmetic.
    try:
        expr = parser.parse_disjunction()
    except SqlError:
        parser = _Parser(tokenize(text))
        expr = parser.parse_additive()
    parser.accept("SEMI")
    parser.expect("EOF")
    return expr
