"""Translate a parsed SQL query into a logical plan.

Implements the paper's workflow (1): SQL -> query plan -> fusion
operators (Section 7).  The planner handles single-table queries and
*star joins* — one fact table (the largest) equi-joined with any number
of dimension tables, each carrying its own local predicates.  Snowflake
shapes and subqueries go through the plan builder or JSON plans
(workflow 2), exactly as in the paper.  HAVING is supported over the
query's output column names.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SqlError
from ..expressions.expr import BooleanOp, ColumnRef, Comparison, Expr
from ..plan.builder import PlanBuilder
from ..plan.logical import AggSpec, LogicalPlan
from ..storage.database import Database
from .parser import AggCall, QueryAst, parse_query


@dataclass
class _JoinEdge:
    dim_table: str
    dim_columns: list[str]
    fact_columns: list[str]


@dataclass
class _TableInfo:
    name: str
    columns: set[str]
    rows: int
    local_predicates: list[Expr] = field(default_factory=list)


def translate(ast: QueryAst, database: Database) -> LogicalPlan:
    """Turn a :class:`QueryAst` into a :class:`LogicalPlan`."""
    return _Translator(ast, database).run()


def plan_sql(text: str, database: Database) -> LogicalPlan:
    """Parse and translate a SQL string in one step."""
    return translate(parse_query(text), database)


class _Translator:
    def __init__(self, ast: QueryAst, database: Database):
        self.ast = ast
        self.database = database
        self.tables: dict[str, _TableInfo] = {}
        for name in ast.tables:
            table = database.table(name)
            if name in self.tables:
                raise SqlError(
                    f"table {name} listed twice; the SQL front-end has no aliases "
                    "(use the plan builder for self-joins)"
                )
            self.tables[name] = _TableInfo(
                name=name, columns=set(table.column_names), rows=table.num_rows
            )
        self.join_edges: list[tuple[str, str, str, str]] = []

    # ------------------------------------------------------------------
    def run(self) -> LogicalPlan:
        self._classify_where()
        builder = self._build_joins()
        builder = self._apply_output(builder)
        if self.ast.having is not None:
            builder = self._apply_having(builder)
        if self.ast.order_by:
            builder = builder.order_by(
                [(item.column, item.ascending) for item in self.ast.order_by]
            )
        if self.ast.limit is not None:
            builder = builder.limit(self.ast.limit)
        return builder.build()

    # ------------------------------------------------------------------
    def _owner(self, column: str) -> str:
        owners = [info.name for info in self.tables.values() if column in info.columns]
        if not owners:
            raise SqlError(f"column {column!r} not found in any FROM table")
        if len(owners) > 1:
            raise SqlError(f"column {column!r} is ambiguous across {owners}")
        return owners[0]

    def _tables_of(self, expr: Expr) -> set[str]:
        return {self._owner(column) for column in expr.columns()}

    def _classify_where(self) -> None:
        if self.ast.where is None:
            return
        conjuncts: list[Expr] = []
        _flatten_and(self.ast.where, conjuncts)
        for conjunct in conjuncts:
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op == "=="
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                left_table = self._owner(conjunct.left.name)
                right_table = self._owner(conjunct.right.name)
                if left_table != right_table:
                    self.join_edges.append(
                        (left_table, conjunct.left.name, right_table, conjunct.right.name)
                    )
                    continue
            owners = self._tables_of(conjunct)
            if len(owners) != 1:
                raise SqlError(
                    f"predicate {conjunct!r} spans tables {sorted(owners)}; only "
                    "equi-join predicates may cross tables"
                )
            self.tables[owners.pop()].local_predicates.append(conjunct)

    # ------------------------------------------------------------------
    def _build_joins(self) -> PlanBuilder:
        fact = max(self.tables.values(), key=lambda info: info.rows)
        dims = [info for info in self.tables.values() if info.name != fact.name]
        if dims and not self.join_edges:
            raise SqlError("multiple tables but no join predicates (cross products unsupported)")

        builder = PlanBuilder.scan(fact.name)
        if fact.local_predicates:
            builder = builder.filter(_and_all(fact.local_predicates))

        # Group the join edges per dimension; every edge must touch the
        # fact table (star shape).
        edges_by_dim: dict[str, _JoinEdge] = {}
        for left_table, left_col, right_table, right_col in self.join_edges:
            if left_table == fact.name:
                dim, dim_col, fact_col = right_table, right_col, left_col
            elif right_table == fact.name:
                dim, dim_col, fact_col = left_table, left_col, right_col
            else:
                raise SqlError(
                    f"join {left_table}.{left_col} = {right_table}.{right_col} does "
                    "not touch the fact table; snowflake joins need the plan builder"
                )
            edge = edges_by_dim.setdefault(dim, _JoinEdge(dim, [], []))
            edge.dim_columns.append(dim_col)
            edge.fact_columns.append(fact_col)

        referenced = self._referenced_columns()
        # Attach dimensions in FROM-clause order.
        for info in (self.tables[name] for name in self.ast.tables):
            if info.name == fact.name:
                continue
            edge = edges_by_dim.get(info.name)
            if edge is None:
                raise SqlError(f"table {info.name} has no join predicate to the fact table")
            build = PlanBuilder.scan(info.name)
            if info.local_predicates:
                build = build.filter(_and_all(info.local_predicates))
            payload = sorted(referenced & info.columns)
            builder = builder.join(
                build,
                build_keys=edge.dim_columns,
                probe_keys=edge.fact_columns,
                payload=payload,
            )
        return builder

    def _referenced_columns(self) -> set[str]:
        """Columns needed downstream of the joins (select/group exprs)."""
        needed: set[str] = set()
        for item in self.ast.items:
            if isinstance(item.value, AggCall):
                if item.value.expr is not None:
                    needed |= item.value.expr.columns()
            else:
                needed |= item.value.columns()
        for expr in self.ast.group_by:
            needed |= expr.columns()
        return needed

    # ------------------------------------------------------------------
    def _apply_output(self, builder: PlanBuilder) -> PlanBuilder:
        # Bind every referenced column early for a clear error message.
        for column in sorted(self._referenced_columns()):
            self._owner(column)
        has_aggregates = any(isinstance(item.value, AggCall) for item in self.ast.items)
        if not has_aggregates and not self.ast.group_by:
            outputs = []
            for index, item in enumerate(self.ast.items):
                name = item.alias or _default_name(item.value, index)
                outputs.append((name, item.value))
            return builder.project(outputs)

        group_keys: list[tuple[str, Expr]] = []
        aggregates: list[AggSpec] = []
        key_exprs = {repr(expr): expr for expr in self.ast.group_by}
        matched_keys: set[str] = set()
        ordered_names: list[str] = []
        for index, item in enumerate(self.ast.items):
            if isinstance(item.value, AggCall):
                name = item.alias or f"{item.value.op}_{index}"
                aggregates.append(AggSpec(item.value.op, item.value.expr, name))
                ordered_names.append(name)
            else:
                key = repr(item.value)
                if key not in key_exprs:
                    raise SqlError(
                        f"select item {item.value!r} is neither aggregated nor in GROUP BY"
                    )
                name = item.alias or _default_name(item.value, index)
                group_keys.append((name, item.value))
                matched_keys.add(key)
                ordered_names.append(name)
        for key, expr in key_exprs.items():
            if key not in matched_keys:
                group_keys.append((f"group_{len(group_keys)}", expr))
        builder = builder.aggregate(group_by=group_keys, aggregates=aggregates)
        default_order = [name for name, _ in group_keys] + [spec.name for spec in aggregates]
        if ordered_names != default_order[: len(ordered_names)]:
            builder = builder.project(ordered_names)
        return builder


    def _apply_having(self, builder: PlanBuilder) -> PlanBuilder:
        """HAVING predicates reference the query's *output* columns
        (group keys or aggregate aliases) by name."""
        having = self.ast.having
        assert having is not None
        output_names = set()
        for index, item in enumerate(self.ast.items):
            if isinstance(item.value, AggCall):
                output_names.add(item.alias or f"{item.value.op}_{index}")
            else:
                output_names.add(item.alias or _default_name(item.value, index))
        unknown = having.columns() - output_names
        if unknown:
            raise SqlError(
                f"HAVING references {sorted(unknown)}; only output column "
                f"names are allowed ({sorted(output_names)})"
            )
        if not self.ast.group_by and not any(
            isinstance(item.value, AggCall) for item in self.ast.items
        ):
            raise SqlError("HAVING requires GROUP BY or aggregates")
        return builder.filter(having)


def _default_name(expr: Expr, index: int) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    return f"column_{index}"


def _flatten_and(expr: Expr, out: list[Expr]) -> None:
    if isinstance(expr, BooleanOp) and expr.op == "and":
        for operand in expr.operands:
            _flatten_and(operand, out)
    else:
        out.append(expr)


def _and_all(predicates: list[Expr]) -> Expr:
    if len(predicates) == 1:
        return predicates[0]
    return BooleanOp("and", tuple(predicates))
