"""SQL front-end: lexer, parser, and star-join planner (workflow 1)."""

from .lexer import Token, tokenize
from .parser import AggCall, OrderItem, QueryAst, SelectItem, parse_expression, parse_query
from .translate import plan_sql, translate

__all__ = [
    "AggCall",
    "OrderItem",
    "QueryAst",
    "SelectItem",
    "Token",
    "parse_expression",
    "parse_query",
    "plan_sql",
    "tokenize",
    "translate",
]
