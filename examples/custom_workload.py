"""Bring your own data: build a database, query it, profile it.

The adoption path for using this library outside the paper's
benchmarks: construct `Column`/`Table`/`Database` objects from your own
arrays, query them with SQL or the builder, and read the per-kernel
profile to see where the simulated device spends its time.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import Column, Database, Table, connect

rng = np.random.default_rng(2024)

# --- a small sensor-readings schema ----------------------------------
N_READINGS = 200_000
N_SENSORS = 500

sensors = Table(
    {
        "sensor_id": Column.int32(np.arange(N_SENSORS)),
        "site": Column.from_strings(
            [f"SITE-{index % 12:02d}" for index in range(N_SENSORS)]
        ),
        "unit": Column.from_strings(
            ["celsius" if index % 3 else "pascal" for index in range(N_SENSORS)]
        ),
    }
)

readings = Table(
    {
        "r_sensor_id": Column.int32(rng.integers(0, N_SENSORS, N_READINGS)),
        "r_day": Column.int32(rng.integers(0, 365, N_READINGS)),
        "r_value": Column.float32(rng.normal(20.0, 8.0, N_READINGS)),
        "r_quality": Column.int32(rng.integers(0, 100, N_READINGS)),
    }
)

database = Database({"sensors": sensors, "readings": readings})


def main() -> None:
    session = connect(database)  # virtual GTX970, Resolution:SIMD

    query = """
        select site, count(*) as n, avg(r_value) as mean_value
        from sensors, readings
        where r_sensor_id = sensor_id
          and r_quality >= 50
          and unit = 'celsius'
        group by site
        order by mean_value desc
    """
    print("Pipeline decomposition:")
    print(session.explain(query))
    print()

    result = session.execute(query)
    print("site                n     mean")
    for site, count, mean in result.table.to_rows():
        print(f"{site:<12s} {count:>8d}  {mean:7.3f}")

    print()
    print("Per-kernel profile (nvprof-style):")
    print(result.kernel_report())

    print()
    print(
        f"Would this query saturate PCIe 3.0?  kernels {result.kernel_ms:.3f} ms "
        f"vs transfers {result.pcie_ms:.3f} ms -> "
        + ("yes" if result.kernel_ms < result.pcie_ms else "no")
    )

    # The same session can compare engines on your data.
    baseline = session.execute(query, engine="operator-at-a-time")
    print(
        f"\nOperator-at-a-time would move "
        f"{baseline.global_memory_bytes / result.global_memory_bytes:.1f}x more "
        "GPU global memory for this query."
    )


if __name__ == "__main__":
    main()
