"""What-if study: faster interconnects shift the bottleneck.

Section 9 of the paper argues that "with upcoming OpenCAPI and NVLink
interconnects, these improvements to GPU-local processing are
essential to benefit from increased bandwidth of the new hardware."
This example quantifies that: the same SSB queries run on a GTX970
behind PCIe 3.0, OpenCAPI, and NVLink links, and we check which micro
execution model can still keep up with each link.

Run:  python examples/interconnect_whatif.py
"""

from repro import generate_ssb
from repro.analysis import format_table
from repro.engines import CompoundEngine, OperatorAtATimeEngine
from repro.hardware import GTX970, NVLINK1, OPENCAPI, PCIE3, VirtualCoprocessor
from repro.workloads import PAPER_SSB_SET, ssb_plan

LINKS = {"PCIe 3.0": PCIE3, "OpenCAPI": OPENCAPI, "NVLink": NVLINK1}


def main() -> None:
    database = generate_ssb(scale_factor=0.02)
    rows = []
    saturation = {label: [0, 0] for label in LINKS}  # [op-at-a-time, compound]
    for name in PAPER_SSB_SET:
        plan = ssb_plan(name, database)
        row = [name]
        for label, link in LINKS.items():
            opaat = OperatorAtATimeEngine().execute(
                plan, database, VirtualCoprocessor(GTX970, interconnect=link)
            )
            compound = CompoundEngine("lrgp_simd").execute(
                plan, database, VirtualCoprocessor(GTX970, interconnect=link)
            )
            saturation[label][0] += opaat.kernel_ms < opaat.pcie_ms
            saturation[label][1] += compound.kernel_ms < compound.pcie_ms
            row.append(round(compound.pcie_ms, 4))
        row.append(round(compound.kernel_ms, 4))
        row.append(round(opaat.kernel_ms, 4))
        rows.append(row)

    print(
        format_table(
            [
                "query",
                *[f"{label} (ms)" for label in LINKS],
                "compound kernels (ms)",
                "op-at-a-time kernels (ms)",
            ],
            rows,
            title="Link transfer time vs kernel time, SSB on GTX970 (SF 0.02)",
            float_format="{:.4f}",
        )
    )
    print()
    total = len(PAPER_SSB_SET)
    for label, (opaat_count, compound_count) in saturation.items():
        print(
            f"{label:>9}: operator-at-a-time keeps up on {opaat_count}/{total} "
            f"queries; the compound kernel on {compound_count}/{total}."
        )
    print(
        "\nAs the link gets faster, operator-at-a-time falls behind on every "
        "query — only the compound kernel can exploit NVLink-class bandwidth, "
        "which is the paper's closing argument."
    )


if __name__ == "__main__":
    main()
