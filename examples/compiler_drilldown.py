"""Compiler drilldown: see the kernels HorseQC generates.

Reproduces the paper's Appendix E experience: for SSB Q3.1 we print
the generated count/write kernels of the multi-pass model and the
single compound kernel of the fully pipelined model, then compare the
per-kernel data movement of all three micro execution models
(Figures 6 vs 7 vs 10 made concrete).

Run:  python examples/compiler_drilldown.py
"""

from repro import generate_ssb
from repro.analysis import movement_breakdown, reduction_factor
from repro.engines import CompoundEngine, MultiPassEngine, OperatorAtATimeEngine
from repro.hardware import GTX970, VirtualCoprocessor
from repro.workloads import ssb_plan


def main() -> None:
    database = generate_ssb(scale_factor=0.01)
    plan = ssb_plan("q3.1", database)

    # --- generated kernel sources -----------------------------------
    compound_engine = CompoundEngine("lrgp_simd")
    compound_result = compound_engine.execute(plan, database, VirtualCoprocessor(GTX970))
    final_pipeline = sorted(compound_engine.kernel_sources)[-1]
    print("=" * 72)
    print(f"Compound kernel for the fact pipeline ({final_pipeline}):")
    print("=" * 72)
    print(compound_engine.kernel_sources[final_pipeline])

    multipass_engine = MultiPassEngine()
    multipass_result = multipass_engine.execute(plan, database, VirtualCoprocessor(GTX970))
    count_name = sorted(k for k in multipass_engine.kernel_sources if k.endswith(".count"))[-1]
    print("=" * 72)
    print(f"Multi-pass count kernel ({count_name}) — Figure 8, left:")
    print("=" * 72)
    print(multipass_engine.kernel_sources[count_name])

    # --- movement comparison -----------------------------------------
    opaat_device = VirtualCoprocessor(GTX970)
    opaat_result = OperatorAtATimeEngine().execute(plan, database, opaat_device)

    print("=" * 72)
    print("Data movement, SSB Q3.1 (compare Figures 5/9/13):")
    print("=" * 72)
    baseline = movement_breakdown("operator-at-a-time", opaat_result, opaat_device)
    print(baseline.format())
    for label, result in (
        ("multi-pass", multipass_result),
        ("compound", compound_result),
    ):
        breakdown = movement_breakdown(label, result, VirtualCoprocessor(GTX970))
        print(breakdown.format())
        print(
            f"  -> {reduction_factor(baseline, breakdown):.1f}x less GPU global "
            "memory than operator-at-a-time"
        )


if __name__ == "__main__":
    main()
