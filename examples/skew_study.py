"""Frequent items: grouping under key skew (Section 6.1's design space).

"The ability to control scratchpad memory opens up a new design space
for grouping algorithms in pipelined computations (e.g. handling
frequent items)."  This example generates increasingly skewed SSB fact
tables and shows how the atomic hash reduce (C2) collapses on the hot
keys while segmented pre-aggregation (C3) absorbs them in scratchpad.

Run:  python examples/skew_study.py
"""

from repro import CompoundEngine, GTX970, VirtualCoprocessor, generate_ssb
from repro.analysis import format_table
from repro.expressions import col
from repro.plan import PlanBuilder

SKEWS = (0.0, 0.2, 0.4, 0.8)


def group_by_customer():
    return (
        PlanBuilder.scan("lineorder")
        .aggregate(
            group_by=["lo_custkey"],
            aggregates=[("sum", col("lo_revenue"), "revenue")],
        )
        .build()
    )


def main() -> None:
    rows = []
    for skew in SKEWS:
        database = generate_ssb(0.02, seed=7, skew=skew)
        plan = group_by_customer()
        hottest = _hottest_share(database)
        atomic = CompoundEngine("atomic").execute(
            plan, database, VirtualCoprocessor(GTX970)
        )
        resolution = CompoundEngine("lrgp_simd").execute(
            plan, database, VirtualCoprocessor(GTX970)
        )
        rows.append(
            [
                skew,
                f"{hottest * 100:.1f}%",
                round(atomic.kernel_ms, 4),
                round(resolution.kernel_ms, 4),
                f"{atomic.kernel_ms / resolution.kernel_ms:.1f}x",
            ]
        )
    print(
        format_table(
            ["zipf skew", "hottest key share", "Pipelined C2 (ms)",
             "Resolution C3 (ms)", "C3 advantage"],
            rows,
            title="Grouped aggregation by lo_custkey under key skew (GTX970, SF 0.02)",
            float_format="{:.4f}",
        )
    )
    print(
        "\nThe hot key's conflict chain serializes C2's atomic hash updates; "
        "C3 pre-aggregates each CTA's slice in scratchpad, so the hot key "
        "costs one insert per CTA regardless of its popularity — the paper's "
        "frequent-items argument, measured."
    )


def _hottest_share(database) -> float:
    import numpy as np

    keys = database["lineorder"]["lo_custkey"].values
    counts = np.bincount(keys)
    return float(counts.max()) / len(keys)


if __name__ == "__main__":
    main()
