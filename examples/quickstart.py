"""Quickstart: run SQL on the simulated coprocessor.

Generates a small star schema benchmark database, connects a session
backed by a virtual GTX970, and runs a query with the fully pipelined
HorseQC engine — printing the result, the fusion-operator plan, and
the data-movement metrics the paper's evaluation revolves around.

Run:  python examples/quickstart.py
"""

from repro import connect, generate_ssb

QUERY = """
    select c_nation, d_year, sum(lo_revenue) as revenue
    from customer, lineorder, date
    where lo_custkey = c_custkey
      and lo_orderdate = d_datekey
      and c_region = 'ASIA'
      and lo_discount between 1 and 3
    group by c_nation, d_year
    order by d_year asc, revenue desc
    limit 10
"""


def main() -> None:
    print("Generating SSB database (scale factor 0.01)...")
    database = generate_ssb(scale_factor=0.01)
    session = connect(database)  # GTX970 + Resolution:SIMD by default

    print("\nFusion operators (produce/consume pipeline decomposition):")
    print(session.explain(QUERY))

    result = session.execute(QUERY)
    print("\nTop rows:")
    for row in result.table.head(10):
        print("  ", row)

    print("\nMetrics:")
    print(f"  engine            : {result.engine} on {result.device_name}")
    print(f"  kernel time       : {result.kernel_ms:.4f} ms (simulated)")
    print(f"  PCIe transfer time: {result.pcie_ms:.4f} ms (the dashed baseline)")
    print(f"  memory bound      : {result.memory_bound_ms:.4f} ms (the solid baseline)")
    print(f"  GPU global memory : {result.global_memory_bytes / 1e6:.2f} MB")
    print(f"  on-chip memory    : {result.onchip_bytes / 1e6:.2f} MB")
    print(f"  passes            : {result.passes:.1f} (global volume / PCIe volume)")

    # Compare against the operator-at-a-time baseline the paper beats.
    baseline = session.execute(QUERY, engine="operator-at-a-time")
    print(
        f"\nOperator-at-a-time needs {baseline.kernel_ms:.4f} ms of kernels and "
        f"{baseline.global_memory_bytes / 1e6:.2f} MB of GPU global memory — "
        f"{baseline.global_memory_bytes / result.global_memory_bytes:.1f}x more "
        "traffic than the compound kernel."
    )


if __name__ == "__main__":
    main()
