"""Workflow 2: JSON plans and the plan builder.

The paper's translation layer has two front doors (Section 7): SQL for
plannable queries and JSON plan documents for everything the SQL
front-end cannot unnest.  This example runs the same query through
both, then builds a genuinely non-SQL-able plan — a left join against
an aggregate (the core of TPC-H Q13) — with the fluent builder.

Run:  python examples/json_and_builder_plans.py
"""

import json

from repro import PlanBuilder, connect, generate_tpch, load_json_plan
from repro.expressions import col

JSON_PLAN = {
    "plan": {
        "op": "aggregate",
        "group_by": ["o_orderpriority"],
        "aggregates": [["count", None, "order_count"]],
        "input": {
            "op": "filter",
            "predicate": "o_orderdate >= 19930701 and o_orderdate < 19931001",
            "input": {"op": "scan", "table": "orders"},
        },
    },
    "order_by": [["o_orderpriority", "asc"]],
}

SQL = """
    select o_orderpriority, count(*) as order_count
    from orders
    where o_orderdate >= 19930701 and o_orderdate < 19931001
    group by o_orderpriority
    order by o_orderpriority
"""


def main() -> None:
    database = generate_tpch(scale_factor=0.01)
    session = connect(database)

    # Workflow 1: SQL.
    sql_result = session.execute(SQL)
    # Workflow 2: the equivalent JSON plan document.
    json_result = session.execute(load_json_plan(json.dumps(JSON_PLAN)))

    print("SQL result:  ", sql_result.table.to_rows())
    print("JSON result: ", json_result.table.to_rows())
    assert sql_result.table.to_rows() == json_result.table.to_rows()
    print("Both workflows produce identical results.\n")

    # Builder: customer order-count distribution (TPC-H Q13's shape —
    # a LEFT join against an aggregate, beyond the SQL front-end).
    per_customer = PlanBuilder.scan("orders").aggregate(
        group_by=["o_custkey"], aggregates=[("count", None, "c_count")]
    )
    plan = (
        PlanBuilder.scan("customer")
        .join(
            per_customer,
            build_keys=["o_custkey"],
            probe_keys=["c_custkey"],
            payload=["c_count"],
            kind="left",
            payload_defaults={"c_count": 0},
        )
        .aggregate(group_by=["c_count"], aggregates=[("count", None, "custdist")])
        .order_by([("custdist", False), ("c_count", False)])
        .limit(8)
        .build()
    )
    print("Customer distribution (orders per customer -> customers):")
    print(session.explain(plan))
    result = session.execute(plan)
    for c_count, custdist in result.table.to_rows():
        print(f"  {c_count:>3} orders : {custdist} customers")


if __name__ == "__main__":
    main()
