"""Tests for the exception hierarchy and error-path behaviours."""

import pytest

from repro.errors import (
    AllocationError,
    CompilationError,
    DeviceMemoryError,
    ExpressionError,
    PlanError,
    ReproError,
    SchemaError,
    SqlError,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            AllocationError,
            CompilationError,
            DeviceMemoryError,
            ExpressionError,
            PlanError,
            SchemaError,
            SqlError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_device_memory_error_carries_context(self):
        error = DeviceMemoryError(requested=1000, available=100, capacity=4000)
        assert error.requested == 1000
        assert error.available == 100
        assert error.capacity == 4000
        assert "1000" in str(error)

    def test_catching_the_base_class_covers_everything(self, tiny_db):
        """Library failures are catchable with one except clause."""
        from repro.api import connect

        session = connect(tiny_db)
        with pytest.raises(ReproError):
            session.execute("select ghost from lineorder")
        with pytest.raises(ReproError):
            session.execute("selec broken")
        with pytest.raises(ReproError):
            session.execute("select lo_revenue from missing_table")


class TestErrorMessages:
    """Error messages must name what's known, not just what's wrong."""

    def test_schema_errors_list_alternatives(self, tiny_db):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError, match="table has:"):
            tiny_db["lineorder"].column("nope")

    def test_plan_errors_name_missing_columns(self, tiny_db):
        from repro.expressions import col
        from repro.plan import PlanBuilder, extract_pipelines

        plan = PlanBuilder.scan("lineorder").filter(col("ghost") > 1).build()
        with pytest.raises(PlanError, match="ghost"):
            extract_pipelines(plan, tiny_db)

    def test_engine_alias_errors_list_engines(self):
        from repro.api import make_engine

        with pytest.raises(ReproError, match="operator-at-a-time"):
            make_engine("warp-drive")

    def test_sql_errors_carry_offsets(self):
        from repro.sql import parse_query

        try:
            parse_query("select from t")
        except SqlError as error:
            assert "offset" in str(error)
        else:  # pragma: no cover
            pytest.fail("expected SqlError")
