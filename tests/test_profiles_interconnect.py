"""Unit tests for device profiles and interconnect models."""

import pytest

from repro.hardware import (
    A10,
    GTX770,
    GTX970,
    NVLINK1,
    PCIE3,
    RX480,
    TABLE2_DEVICES,
    XEON_E5,
    get_profile,
    list_profiles,
)


class TestTable2Values:
    """The published hardware numbers of Table 2."""

    def test_gtx970(self):
        assert GTX970.compute_units == 13
        assert GTX970.scratchpad_per_unit == 96 * 1024
        assert GTX970.global_bandwidth == pytest.approx(146.1)

    def test_gtx770(self):
        assert GTX770.compute_units == 8
        assert GTX770.scratchpad_per_unit == 48 * 1024
        assert GTX770.global_bandwidth == pytest.approx(167.6)

    def test_rx480(self):
        assert RX480.compute_units == 32
        assert RX480.scratchpad_per_unit == 32 * 1024
        assert RX480.global_bandwidth == pytest.approx(104.9)
        assert RX480.simd_width == 64  # AMD wavefront

    def test_a10_is_zero_copy(self):
        assert A10.zero_copy
        assert A10.global_bandwidth == pytest.approx(18.7)

    def test_table2_roster(self):
        assert tuple(profile.name for profile in TABLE2_DEVICES) == (
            "GTX970",
            "GTX770",
            "RX480",
            "A10",
        )


class TestRegistry:
    def test_lookup_is_case_insensitive(self):
        assert get_profile("gtx970") is GTX970
        assert get_profile("GTX970") is GTX970

    def test_cpu_alias(self):
        assert get_profile("cpu") is XEON_E5

    def test_unknown_device(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_profile("rtx5090")

    def test_list_profiles_no_duplicates(self):
        names = [profile.name for profile in list_profiles()]
        assert len(names) == len(set(names))

    def test_overrides_do_not_mutate(self):
        modified = GTX970.with_overrides(global_bandwidth=999.0)
        assert modified.global_bandwidth == 999.0
        assert GTX970.global_bandwidth == pytest.approx(146.1)
        assert modified.name == GTX970.name


class TestInterconnect:
    def test_transfer_time_includes_latency(self):
        assert PCIE3.transfer_time(0, "h2d") == 0.0
        one_gb = PCIE3.transfer_time(16_000_000_000, "h2d")
        assert one_gb == pytest.approx(1.0 + PCIE3.latency, rel=1e-6)

    def test_invalid_direction(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError) as excinfo:
            PCIE3.transfer_time(100, "sideways")
        # The error must name the valid directions, like every other
        # ConfigurationError in the project.
        assert "h2d" in str(excinfo.value)
        assert "d2h" in str(excinfo.value)
        assert "sideways" in str(excinfo.value)

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            PCIE3.transfer_time(-1, "h2d")

    def test_balanced_time_measured_bidirectional(self):
        # The paper measured 12.1 GB/s bidirectional on PCIe 3.0.
        seconds = PCIE3.balanced_time(6_050_000_000, 6_050_000_000)
        assert seconds == pytest.approx(1.0, rel=1e-6)

    def test_balanced_time_asymmetric_floor(self):
        # One direction alone cannot exceed 16 GB/s.
        seconds = PCIE3.balanced_time(16_000_000_000, 0)
        assert seconds == pytest.approx(1.0, rel=1e-6)

    def test_nvlink_is_faster(self):
        assert NVLINK1.balanced_time(10**9, 10**9) < PCIE3.balanced_time(10**9, 10**9)
