"""Tests for produce/consume pipeline extraction (fusion operators)."""

import pytest

from repro.errors import PlanError
from repro.expressions import col, lit
from repro.plan import (
    AggregateSink,
    BuildSink,
    FilterStage,
    MapStage,
    MaterializeSink,
    PlanBuilder,
    ProbeStage,
    RESULT_NAME,
    extract_pipelines,
)


class TestSimplePipelines:
    def test_scan_project_is_one_pipeline(self, tiny_db):
        plan = PlanBuilder.scan("lineorder").project(["lo_revenue"]).build()
        query = extract_pipelines(plan, tiny_db)
        assert len(query.pipelines) == 1
        pipeline = query.pipelines[0]
        assert isinstance(pipeline.sink, MaterializeSink)
        assert pipeline.is_final
        assert pipeline.required_columns == ["lo_revenue"]

    def test_filter_map_absorbed(self, tiny_db):
        plan = (
            PlanBuilder.scan("lineorder")
            .filter(col("lo_quantity") < 25)
            .map("revenue", col("lo_extendedprice") * col("lo_discount"))
            .project(["revenue"])
            .build()
        )
        query = extract_pipelines(plan, tiny_db)
        assert len(query.pipelines) == 1
        stages = query.pipelines[0].stages
        assert isinstance(stages[0], FilterStage)
        assert isinstance(stages[1], MapStage)

    def test_top_aggregate_is_final_pipeline(self, tiny_db):
        plan = (
            PlanBuilder.scan("lineorder")
            .aggregate(group_by=["lo_orderdate"], aggregates=[("count", None, "n")])
            .build()
        )
        query = extract_pipelines(plan, tiny_db)
        assert len(query.pipelines) == 1
        assert query.pipelines[0].output_name == RESULT_NAME
        assert isinstance(query.pipelines[0].sink, AggregateSink)
        assert query.output_columns == ["lo_orderdate", "n"]


class TestJoins:
    def test_join_creates_build_pipeline(self, tiny_db):
        plan = (
            PlanBuilder.scan("lineorder")
            .join(
                PlanBuilder.scan("customer").filter(col("c_region") == lit("ASIA")),
                build_keys=["c_custkey"],
                probe_keys=["lo_custkey"],
                payload=["c_nation"],
            )
            .project(["c_nation", "lo_revenue"])
            .build()
        )
        query = extract_pipelines(plan, tiny_db)
        assert len(query.pipelines) == 2
        build = query.pipelines[0]
        assert isinstance(build.sink, BuildSink)
        assert build.source == "customer"
        probe_stage = query.pipelines[1].stages[-1]
        assert isinstance(probe_stage, ProbeStage)
        assert probe_stage.table_id == build.output_name
        assert probe_stage.payload == ["c_nation"]

    def test_string_filters_resolved_during_extraction(self, tiny_db):
        plan = (
            PlanBuilder.scan("customer")
            .filter(col("c_region") == lit("ASIA"))
            .project(["c_custkey"])
            .build()
        )
        query = extract_pipelines(plan, tiny_db)
        predicate = query.pipelines[0].stages[0].predicate
        # No string literal survives extraction.
        from repro.expressions.expr import Literal

        literals = [
            node.value
            for node in _walk_expr(predicate)
            if isinstance(node, Literal)
        ]
        assert all(not isinstance(value, str) for value in literals)

    def test_join_on_string_column_rejected(self, tiny_db):
        plan = (
            PlanBuilder.scan("lineorder")
            .map("tag", col("lo_custkey"))
            .join(
                PlanBuilder.scan("customer"),
                build_keys=["c_nation"],
                probe_keys=["tag"],
            )
            .project(["lo_revenue"])
            .build()
        )
        with pytest.raises(PlanError, match="string column"):
            extract_pipelines(plan, tiny_db)


class TestAggregationBoundaries:
    def test_aggregate_then_filter_spawns_virtual_pipeline(self, tiny_db):
        plan = (
            PlanBuilder.scan("lineorder")
            .aggregate(
                group_by=["lo_custkey"],
                aggregates=[("sum", col("lo_revenue"), "total")],
            )
            .filter(col("total") > 100)
            .project(["lo_custkey", "total"])
            .build()
        )
        query = extract_pipelines(plan, tiny_db)
        assert len(query.pipelines) == 2
        first, second = query.pipelines
        assert isinstance(first.sink, AggregateSink)
        assert second.source == first.output_name
        assert second.source_is_virtual

    def test_required_columns_cover_sink_inputs(self, tiny_db):
        plan = (
            PlanBuilder.scan("lineorder")
            .filter(col("lo_quantity") < 10)
            .aggregate(group_by=[], aggregates=[("sum", col("lo_revenue"), "r")])
            .build()
        )
        query = extract_pipelines(plan, tiny_db)
        required = query.pipelines[0].required_columns
        assert set(required) == {"lo_quantity", "lo_revenue"}

    def test_map_output_not_required_from_source(self, tiny_db):
        plan = (
            PlanBuilder.scan("lineorder")
            .map("x", col("lo_revenue") * 2)
            .project(["x"])
            .build()
        )
        required = extract_pipelines(plan, tiny_db).pipelines[0].required_columns
        assert "x" not in required
        assert "lo_revenue" in required


class TestPostOps:
    def test_sort_and_limit_captured(self, tiny_db):
        plan = (
            PlanBuilder.scan("lineorder")
            .project(["lo_revenue"])
            .order_by([("lo_revenue", False)])
            .limit(5)
            .build()
        )
        query = extract_pipelines(plan, tiny_db)
        assert query.limit == 5
        assert query.sort_keys[0].column == "lo_revenue"
        assert not query.sort_keys[0].ascending

    def test_sort_key_must_be_in_output(self, tiny_db):
        plan = (
            PlanBuilder.scan("lineorder")
            .project(["lo_revenue"])
            .order_by(["lo_quantity"])
            .build()
        )
        with pytest.raises(PlanError, match="sort key"):
            extract_pipelines(plan, tiny_db)

    def test_describe_is_readable(self, tiny_db):
        plan = (
            PlanBuilder.scan("lineorder")
            .filter(col("lo_quantity") < 10)
            .project(["lo_revenue"])
            .build()
        )
        description = extract_pipelines(plan, tiny_db).describe()
        assert "lineorder" in description
        assert "filter" in description


def _walk_expr(expr):
    yield expr
    for child in expr.children():
        yield from _walk_expr(child)
