"""Tests for the analysis helpers and the public API."""

import pytest

from repro.analysis import (
    affordable_passes,
    count_passes,
    format_factor,
    format_table,
    memory_limited,
    movement_breakdown,
    reduction_factor,
)
from repro.api import Session, connect, make_engine
from repro.engines import CompoundEngine, OperatorAtATimeEngine
from repro.errors import ReproError
from repro.hardware import GTX970, VirtualCoprocessor
from repro.workloads import ssb_plan


class TestPasses:
    def test_affordable_passes_thresholds(self):
        # Section 2.3: 146 / 16 ~ 9 passes in the worst case.
        assert affordable_passes(GTX970) == pytest.approx(146.1 / 16.0)

    def test_count_passes(self, ssb_db, device):
        count = count_passes(
            "q3.1", ssb_plan("q3.1", ssb_db), ssb_db, OperatorAtATimeEngine(), device
        )
        assert count.passes > 1.0
        assert count.global_bytes > count.pcie_bytes

    def test_memory_limited_flag(self, ssb_db, device):
        count = count_passes(
            "q2.1", ssb_plan("q2.1", ssb_db), ssb_db, OperatorAtATimeEngine(), device
        )
        assert memory_limited(count, GTX970) == (
            count.passes > affordable_passes(GTX970)
        )

    def test_row_render(self, ssb_db, device):
        count = count_passes(
            "q1.1", ssb_plan("q1.1", ssb_db), ssb_db, OperatorAtATimeEngine(), device
        )
        assert "q1.1" in count.row()


class TestMovement:
    def test_breakdown_and_reduction_factor(self, ssb_db):
        plan = ssb_plan("q3.1", ssb_db)
        opaat_device = VirtualCoprocessor(GTX970)
        opaat = OperatorAtATimeEngine().execute(plan, ssb_db, opaat_device)
        baseline = movement_breakdown("op-at-a-time", opaat, opaat_device)
        compound_device = VirtualCoprocessor(GTX970)
        compound = CompoundEngine().execute(plan, ssb_db, compound_device)
        improved = movement_breakdown("compound", compound, compound_device)
        factor = reduction_factor(baseline, improved)
        assert factor > 2.0  # paper: 4.7x on SSB Q3.1
        assert "gather" in baseline.by_kind
        assert "compound" in improved.by_kind
        assert "MB" in baseline.format()


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            ["query", "ms"], [["q1", 1.5], ["q21", 10.25]], title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "query" in lines[2]
        assert any("10.25" in line or "10.2" in line for line in lines)

    def test_format_factor(self):
        assert format_factor(4.7123) == "4.7x"
        assert format_factor(float("inf")) == "inf"


class TestApi:
    def test_connect_and_execute_sql(self, ssb_db):
        session = connect(ssb_db)
        result = session.execute(
            "select sum(lo_revenue) as total from lineorder"
        )
        assert result.table.column_names == ["total"]
        assert result.engine.startswith("horseqc-compound")

    def test_engine_aliases(self):
        assert make_engine("pipelined").mode == "atomic"
        assert make_engine("resolution-we").mode == "lrgp_we"
        assert make_engine("operator-at-a-time").name == "operator-at-a-time"
        with pytest.raises(ReproError, match="unknown engine"):
            make_engine("quantum")

    def test_device_by_name(self, ssb_db):
        session = Session(ssb_db, device="rx480", engine="multipass")
        result = session.execute("select sum(lo_revenue) as r from lineorder")
        assert result.device_name == "RX480"
        assert result.engine == "horseqc-multipass"

    def test_per_query_engine_override(self, ssb_db):
        session = connect(ssb_db)
        result = session.execute(
            "select sum(lo_revenue) as r from lineorder", engine="operator-at-a-time"
        )
        assert result.engine == "operator-at-a-time"

    def test_explain_shows_pipelines(self, ssb_db):
        session = connect(ssb_db)
        text = session.explain(ssb_plan("q3.1", ssb_db))
        assert "lineorder" in text
        assert "build" in text

    def test_plans_pass_through(self, ssb_db):
        session = connect(ssb_db)
        plan = ssb_plan("q1.1", ssb_db)
        assert session.plan(plan) is plan

    def test_summary_string(self, ssb_db):
        session = connect(ssb_db)
        result = session.execute("select sum(lo_revenue) as r from lineorder")
        assert "kernels" in result.summary()
