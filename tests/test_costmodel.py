"""Unit tests for the kernel cost model."""

import pytest

from repro.hardware import AtomicBatch, GTX970, KernelCostModel, MemoryLevel, TrafficMeter
from repro.hardware.costmodel import DEFAULT_EFFICIENCY, MEMORY_EFFICIENCY


@pytest.fixture()
def model() -> KernelCostModel:
    return KernelCostModel(GTX970)


def _meter(**kwargs) -> TrafficMeter:
    meter = TrafficMeter()
    if "global_bytes" in kwargs:
        meter.record_read(MemoryLevel.GLOBAL, kwargs["global_bytes"])
    if "onchip_bytes" in kwargs:
        meter.record_read(MemoryLevel.ONCHIP, kwargs["onchip_bytes"])
    if "instructions" in kwargs:
        meter.record_instructions(kwargs["instructions"])
    if "atomics" in kwargs:
        count, chain = kwargs["atomics"]
        meter.record_atomics(AtomicBatch(count, chain))
    return meter


class TestBreakdown:
    def test_memory_term(self, model):
        breakdown = model.breakdown(_meter(global_bytes=146_100_000))
        assert breakdown.memory == pytest.approx(1e-3, rel=0.01)
        assert breakdown.bound_by == "memory"

    def test_compute_term_can_dominate(self, model):
        meter = _meter(global_bytes=1000, instructions=int(GTX970.compute_throughput))
        breakdown = model.breakdown(meter)
        assert breakdown.bound_by == "compute"
        assert breakdown.compute == pytest.approx(1.0)

    def test_atomic_chain_term(self, model):
        count = int(GTX970.same_address_atomic_rate)
        breakdown = model.breakdown(_meter(atomics=(count, count)))
        assert breakdown.atomics == pytest.approx(1.0, rel=0.01)
        assert breakdown.bound_by == "atomics"

    def test_atomic_throughput_term_without_contention(self, model):
        # Many atomics spread across addresses: throughput term governs.
        count = int(GTX970.atomic_throughput)
        breakdown = model.breakdown(_meter(atomics=(count, 1)))
        assert breakdown.atomics == pytest.approx(1.0, rel=0.01)

    def test_total_takes_max_plus_overheads(self, model):
        meter = _meter(global_bytes=146_100_000, instructions=100)
        breakdown = model.breakdown(meter)
        assert breakdown.total == pytest.approx(
            GTX970.kernel_launch_overhead + breakdown.memory, rel=1e-6
        )

    def test_launch_bound_for_empty_kernels(self, model):
        breakdown = model.breakdown(_meter())
        assert breakdown.bound_by == "launch"


class TestEfficiency:
    def test_fused_kernels_reach_peak(self, model):
        fused = model.breakdown(_meter(global_bytes=1_000_000), kind="compound")
        gather = model.breakdown(_meter(global_bytes=1_000_000), kind="gather")
        assert gather.memory == pytest.approx(
            fused.memory * MEMORY_EFFICIENCY["compound"] / MEMORY_EFFICIENCY["gather"]
        )

    def test_unknown_kind_uses_default(self, model):
        breakdown = model.breakdown(_meter(global_bytes=1_000_000), kind="mystery")
        expected = 1_000_000 / (GTX970.global_bandwidth * 1e9 * DEFAULT_EFFICIENCY)
        assert breakdown.memory == pytest.approx(expected)

    def test_every_efficiency_is_a_fraction(self):
        for kind, efficiency in MEMORY_EFFICIENCY.items():
            assert 0 < efficiency <= 1.0, kind


class TestBaselines:
    def test_memory_bound_time(self, model):
        assert model.memory_bound_time(146_100_000) == pytest.approx(1e-3, rel=0.01)

    def test_memory_bound_rejects_negative(self, model):
        with pytest.raises(ValueError):
            model.memory_bound_time(-1)
