"""Session-level interconnect configuration and the NVLink argument."""

import pytest

from repro.api import Session
from repro.engines import CompoundEngine, OperatorAtATimeEngine
from repro.hardware import GTX970, NVLINK1, OPENCAPI, PCIE3, VirtualCoprocessor
from repro.workloads import ssb_plan


class TestSessionInterconnect:
    def test_custom_interconnect_changes_pcie_baseline(self, ssb_db):
        pcie = Session(ssb_db, device=GTX970, interconnect=PCIE3)
        nvlink = Session(ssb_db, device=GTX970, interconnect=NVLINK1)
        sql = "select sum(lo_revenue) as r from lineorder"
        slow = pcie.execute(sql)
        fast = nvlink.execute(sql)
        assert fast.pcie_ms < slow.pcie_ms
        assert fast.table.to_rows() == slow.table.to_rows()

    def test_kernel_time_is_link_independent(self, ssb_db):
        """The device-side work does not change with the link."""
        sql = "select sum(lo_revenue) as r from lineorder"
        pcie = Session(ssb_db, device=GTX970, interconnect=PCIE3).execute(sql)
        capi = Session(ssb_db, device=GTX970, interconnect=OPENCAPI).execute(sql)
        assert pcie.kernel_ms == pytest.approx(capi.kernel_ms)


class TestSection9Argument:
    """'With upcoming OpenCAPI and NVLink interconnects, these
    improvements to GPU-local processing are essential to benefit from
    increased bandwidth of the new hardware.'"""

    def test_op_at_a_time_cannot_exploit_nvlink(self, ssb_db):
        plan = ssb_plan("q3.1", ssb_db)
        device = VirtualCoprocessor(GTX970, interconnect=NVLINK1)
        result = OperatorAtATimeEngine().execute(plan, ssb_db, device)
        # The faster link has made the kernels the bottleneck.
        assert result.kernel_ms > result.pcie_ms

    def test_compound_kernels_track_nvlink_far_better(self, ssb_db):
        plan = ssb_plan("q3.1", ssb_db)
        compound = CompoundEngine("lrgp_simd").execute(
            plan, ssb_db, VirtualCoprocessor(GTX970, interconnect=NVLINK1)
        )
        opaat = OperatorAtATimeEngine().execute(
            plan, ssb_db, VirtualCoprocessor(GTX970, interconnect=NVLINK1)
        )
        # Behind NVLink, the compound kernel stays several times closer
        # to the link rate than operator-at-a-time does.
        assert compound.kernel_ms / compound.pcie_ms < (
            opaat.kernel_ms / opaat.pcie_ms
        ) / 3

    def test_link_upgrade_factor(self, ssb_db):
        """Upgrading the link only helps engines that saturate it."""
        plan = ssb_plan("q1.1", ssb_db)
        compound_pcie = CompoundEngine().execute(
            plan, ssb_db, VirtualCoprocessor(GTX970, interconnect=PCIE3)
        )
        compound_nvlink = CompoundEngine().execute(
            plan, ssb_db, VirtualCoprocessor(GTX970, interconnect=NVLINK1)
        )
        opaat_pcie = OperatorAtATimeEngine().execute(
            plan, ssb_db, VirtualCoprocessor(GTX970, interconnect=PCIE3)
        )
        opaat_nvlink = OperatorAtATimeEngine().execute(
            plan, ssb_db, VirtualCoprocessor(GTX970, interconnect=NVLINK1)
        )
        compound_gain = compound_pcie.total_ms / compound_nvlink.total_ms
        opaat_gain = opaat_pcie.total_ms / opaat_nvlink.total_ms
        assert compound_gain > opaat_gain
