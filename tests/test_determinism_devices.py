"""Determinism and cross-device integration tests."""

import numpy as np
import pytest

from repro.engines import CompoundEngine, MultiPassEngine, OperatorAtATimeEngine
from repro.hardware import (
    A10,
    GTX770,
    GTX970,
    PCIE3,
    RX480,
    VirtualCoprocessor,
)
from repro.storage.table import rows_approx_equal
from repro.workloads import generate_ssb, generate_tpch, ssb_plan


class TestDeterminism:
    def test_same_seed_same_rows_and_times(self, ssb_db):
        plan = ssb_plan("q3.1", ssb_db)
        engine = CompoundEngine("lrgp_simd")
        first = engine.execute(plan, ssb_db, VirtualCoprocessor(GTX970), seed=5)
        second = engine.execute(plan, ssb_db, VirtualCoprocessor(GTX970), seed=5)
        assert first.table.to_rows() == second.table.to_rows()
        assert first.kernel_ms == second.kernel_ms
        assert first.global_memory_bytes == second.global_memory_bytes

    def test_different_seed_same_multiset(self, ssb_db):
        """The rng only controls the undefined atomic allocation order —
        it must never change the result content."""
        from repro.workloads import projection_query

        plan = projection_query(8)
        engine = CompoundEngine("atomic")
        first = engine.execute(plan, ssb_db, VirtualCoprocessor(GTX970), seed=1)
        second = engine.execute(plan, ssb_db, VirtualCoprocessor(GTX970), seed=2)
        assert first.table.sorted_rows() == second.table.sorted_rows()
        assert first.kernel_ms == second.kernel_ms

    def test_generators_are_seed_deterministic(self):
        first = generate_tpch(0.002, seed=3)
        second = generate_tpch(0.002, seed=3)
        assert np.array_equal(
            first["lineitem"]["l_extendedprice"].values,
            second["lineitem"]["l_extendedprice"].values,
        )


class TestAllDevices:
    """Engines must be correct on every Table 2 device, including the
    zero-copy APU."""

    @pytest.mark.parametrize("profile", [GTX970, GTX770, RX480, A10],
                             ids=lambda p: p.name)
    def test_q31_identical_rows_everywhere(self, ssb_db, profile):
        plan = ssb_plan("q3.1", ssb_db)
        reference = CompoundEngine().execute(
            plan, ssb_db, VirtualCoprocessor(GTX970, interconnect=PCIE3)
        )
        result = CompoundEngine().execute(
            plan, ssb_db, VirtualCoprocessor(profile, interconnect=PCIE3)
        )
        assert rows_approx_equal(
            reference.table.sorted_rows(), result.table.sorted_rows()
        )

    def test_apu_records_no_link_traffic(self, ssb_db):
        plan = ssb_plan("q1.1", ssb_db)
        result = CompoundEngine().execute(
            plan, ssb_db, VirtualCoprocessor(A10)
        )
        assert result.transfer_ms == 0.0
        assert result.profile.transfer_bytes() == 0
        # The PCIe "baseline" for an APU is the memory-stream time.
        assert result.pcie_ms == pytest.approx(
            (result.input_bytes + result.output_bytes) / (A10.global_bandwidth * 1e9) * 1e3
        )

    def test_apu_slower_than_dedicated_gpu(self, ssb_db):
        plan = ssb_plan("q3.1", ssb_db)
        gtx = CompoundEngine().execute(plan, ssb_db, VirtualCoprocessor(GTX970))
        apu = CompoundEngine().execute(plan, ssb_db, VirtualCoprocessor(A10))
        assert apu.kernel_ms > gtx.kernel_ms

    @pytest.mark.parametrize("engine_factory", [
        OperatorAtATimeEngine, MultiPassEngine, lambda: CompoundEngine("atomic"),
    ])
    def test_engines_agree_on_the_apu(self, ssb_db, engine_factory):
        plan = ssb_plan("q2.1", ssb_db)
        reference = CompoundEngine().execute(plan, ssb_db, VirtualCoprocessor(A10))
        result = engine_factory().execute(plan, ssb_db, VirtualCoprocessor(A10))
        assert rows_approx_equal(
            reference.table.sorted_rows(), result.table.sorted_rows(),
            rel_tol=1e-3, abs_tol=0.5,
        )


class TestSeedIndependentWorkloads:
    def test_other_seeds_still_agree_across_engines(self):
        database = generate_ssb(0.003, seed=1234)
        plan = ssb_plan("q4.2", database)
        results = [
            factory().execute(plan, database, VirtualCoprocessor(GTX970))
            for factory in (
                OperatorAtATimeEngine,
                MultiPassEngine,
                lambda: CompoundEngine("lrgp_we"),
            )
        ]
        for result in results[1:]:
            assert rows_approx_equal(
                results[0].table.sorted_rows(), result.table.sorted_rows(),
                rel_tol=1e-3, abs_tol=0.5,
            )
