"""Tests for residual (post-probe) join predicates."""

import numpy as np
import pytest

from repro.engines import CompoundEngine, MultiPassEngine, OperatorAtATimeEngine
from repro.errors import PlanError
from repro.expressions import col
from repro.hardware import GTX970, VirtualCoprocessor
from repro.plan import PlanBuilder
from repro.storage import Column, Database, Table
from repro.storage.table import rows_approx_equal


@pytest.fixture(scope="module")
def pair_db():
    rng = np.random.default_rng(8)
    n = 400
    fact = Table(
        {
            "f_key": Column.int32(rng.integers(0, 10, n)),
            "f_weight": Column.int32(rng.integers(0, 100, n)),
        }
    )
    dim = Table(
        {
            "d_key": Column.int32(np.arange(10)),
            "d_threshold": Column.int32(rng.integers(20, 80, 10)),
        }
    )
    return Database({"fact": fact, "dim": dim})


def _plan(residual):
    return (
        PlanBuilder.scan("fact")
        .join(
            PlanBuilder.scan("dim"),
            build_keys=["d_key"],
            probe_keys=["f_key"],
            payload=["d_threshold"],
            residual=residual,
        )
        .aggregate(group_by=[], aggregates=[("count", None, "n")])
        .build()
    )


def test_residual_equals_filter_after_join(pair_db):
    residual_plan = _plan(col("f_weight") > col("d_threshold"))
    filter_plan = (
        PlanBuilder.scan("fact")
        .join(
            PlanBuilder.scan("dim"),
            build_keys=["d_key"],
            probe_keys=["f_key"],
            payload=["d_threshold"],
        )
        .filter(col("f_weight") > col("d_threshold"))
        .aggregate(group_by=[], aggregates=[("count", None, "n")])
        .build()
    )
    left = CompoundEngine().execute(residual_plan, pair_db, VirtualCoprocessor(GTX970))
    right = CompoundEngine().execute(filter_plan, pair_db, VirtualCoprocessor(GTX970))
    assert left.table.to_rows() == right.table.to_rows()


def test_residual_agrees_across_engines(pair_db):
    plan = _plan(col("f_weight") > col("d_threshold"))
    reference = None
    for engine in (OperatorAtATimeEngine(), MultiPassEngine(), CompoundEngine("atomic")):
        result = engine.execute(plan, pair_db, VirtualCoprocessor(GTX970))
        rows = result.table.sorted_rows()
        if reference is None:
            reference = rows
        else:
            assert rows_approx_equal(reference, rows)


def test_residual_matches_python_reference(pair_db):
    plan = _plan(col("f_weight") > col("d_threshold"))
    result = CompoundEngine().execute(plan, pair_db, VirtualCoprocessor(GTX970))
    fact = pair_db["fact"]
    thresholds = pair_db["dim"]["d_threshold"].values
    expected = sum(
        int(fact["f_weight"].values[i]) > int(thresholds[fact["f_key"].values[i]])
        for i in range(fact.num_rows)
    )
    assert result.table.to_rows() == [(expected,)]


def test_residual_only_on_inner_joins(pair_db):
    with pytest.raises(PlanError, match="inner"):
        PlanBuilder.scan("fact").join(
            PlanBuilder.scan("dim"),
            build_keys=["d_key"],
            probe_keys=["f_key"],
            kind="semi",
            residual=col("f_weight") > 5,
        )
