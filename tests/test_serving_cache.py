"""Cache-correctness tests: normalization, invalidation, no collisions.

The plan cache must be *invisible* except for speed: a mutated catalog
must never be served a stale plan, and identical SQL against two
different databases must never share an entry.  The kernel cache must
report hits on repeated pipeline structures after a cold start.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session, connect
from repro.kernels.codegen import clear_kernel_cache, kernel_cache_stats
from repro.plan.logical import LogicalPlan
from repro.serving import PlanCache, Server, normalize_sql
from repro.sql.translate import plan_sql
from repro.storage import Column, Database, Table


def _orders_db(revenues) -> Database:
    revenues = np.asarray(revenues)
    n = len(revenues)
    return Database(
        {
            "orders": Table(
                {
                    "o_revenue": Column.int32(revenues),
                    "o_quantity": Column.int32(np.arange(1, n + 1)),
                }
            )
        }
    )


SQL = "select sum(o_revenue) as total from orders where o_quantity >= 1"


# ----------------------------------------------------------------------
# normalize_sql
# ----------------------------------------------------------------------
def test_normalize_collapses_whitespace_and_case():
    assert (
        normalize_sql("SELECT   sum(x)\n\tFROM  t  WHERE y = 1;")
        == "select sum(x) from t where y = 1"
    )


def test_normalize_preserves_string_literals():
    a = normalize_sql("select * from t where r = 'ASIA'")
    b = normalize_sql("select * from t where r = 'asia'")
    assert a != b
    assert "'ASIA'" in a and "'asia'" in b
    # Whitespace inside literals survives byte-for-byte.
    assert "'A  B'" in normalize_sql("SELECT * FROM t WHERE r = 'A  B'")


def test_variant_spellings_share_a_plan_cache_entry():
    database = _orders_db([10, 20, 30])
    cache = PlanCache()
    _, hit1 = cache.lookup(SQL, database)
    _, hit2 = cache.lookup(
        "SELECT  SUM(o_revenue)  AS total\nFROM orders\nWHERE o_quantity >= 1;",
        database,
    )
    assert (hit1, hit2) == (False, True)
    assert len(cache) == 1


# ----------------------------------------------------------------------
# invalidation
# ----------------------------------------------------------------------
def test_replace_invalidates_and_serves_fresh_results():
    database = _orders_db([10, 20, 30])
    session = connect(database, plan_cache=PlanCache())
    first = session.execute(SQL)
    assert first.table.sorted_rows() == [(60,)]
    assert not first.serving.plan_cache_hit
    warm = session.execute(SQL)
    assert warm.serving.plan_cache_hit

    # Append rows: replace the table with a longer one.
    old = database["orders"]
    database.replace(
        "orders",
        Table(
            {
                "o_revenue": Column.int32(
                    np.concatenate([old["o_revenue"].values, [40]])
                ),
                "o_quantity": Column.int32(
                    np.concatenate([old["o_quantity"].values, [4]])
                ),
            }
        ),
    )
    after = session.execute(SQL)
    assert not after.serving.plan_cache_hit, "stale plan served after mutation"
    assert after.table.sorted_rows() == [(100,)]


def test_add_and_drop_bump_the_fingerprint():
    database = _orders_db([1, 2])
    before = database.fingerprint()
    database.add("extra", Table({"x": Column.int32([1])}))
    assert database.fingerprint() != before
    middle = database.fingerprint()
    database.drop("extra")
    assert database.fingerprint() not in (before, middle)


def test_identical_sql_on_two_databases_does_not_collide():
    db_a = _orders_db([10, 20, 30])
    db_b = _orders_db([1000, 2000, 3000])  # same schema, different data
    cache = PlanCache()
    session_a = Session(db_a, plan_cache=cache)
    session_b = Session(db_b, plan_cache=cache)
    assert session_a.execute(SQL).table.sorted_rows() == [(60,)]
    result_b = session_b.execute(SQL)
    assert not result_b.serving.plan_cache_hit, "cross-database cache collision"
    assert result_b.table.sorted_rows() == [(6000,)]
    assert len(cache) == 2
    # Warm repeats on each database hit their own entry.
    assert session_a.execute(SQL).serving.plan_cache_hit
    assert session_b.execute(SQL).serving.plan_cache_hit


def test_server_plan_cache_invalidation_end_to_end():
    database = _orders_db([5, 5, 5])
    with Server(database, workers=2) as server:
        assert server.execute(SQL).table.sorted_rows() == [(15,)]
        database.replace(
            "orders",
            Table(
                {
                    "o_revenue": Column.int32([5, 5, 5, 85]),
                    "o_quantity": Column.int32([1, 2, 3, 4]),
                }
            ),
        )
        fresh = server.execute(SQL)
        assert not fresh.serving.plan_cache_hit
        assert fresh.table.sorted_rows() == [(100,)]


# ----------------------------------------------------------------------
# eviction & bypass
# ----------------------------------------------------------------------
def test_plan_cache_lru_eviction():
    database = _orders_db([1, 2, 3])
    cache = PlanCache(capacity=2)
    texts = [
        "select sum(o_revenue) as a from orders",
        "select min(o_revenue) as b from orders",
        "select max(o_revenue) as c from orders",
    ]
    for text in texts:
        cache.lookup(text, database)
    stats = cache.stats()
    assert stats.evictions == 1
    assert stats.size == 2
    # The oldest entry was evicted; the newest two still hit.
    assert cache.lookup(texts[0], database)[1] is False
    assert cache.lookup(texts[2], database)[1] is True


def test_logical_plans_bypass_the_cache():
    database = _orders_db([7, 7])
    plan = plan_sql(SQL, database)
    assert isinstance(plan, LogicalPlan)
    cache = PlanCache()
    for _ in range(2):
        physical, hit = cache.lookup(plan, database)
        assert hit is False
        assert physical.pipelines
    assert len(cache) == 0
    assert cache.stats().misses == 2


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


# ----------------------------------------------------------------------
# kernel cache
# ----------------------------------------------------------------------
def test_kernel_cache_hits_on_repeat_structures():
    database = _orders_db(np.arange(64))
    clear_kernel_cache()
    session = connect(database, plan_cache=PlanCache(), engine="pipelined")
    cold = session.execute(SQL)
    assert cold.serving.compile_misses > 0
    assert cold.serving.compile_hits == 0
    warm = session.execute(SQL)
    assert warm.serving.compile_misses == 0
    assert warm.serving.compile_hits > 0
    stats = kernel_cache_stats()
    assert stats.hits >= warm.serving.compile_hits
    assert stats.size > 0
    clear_kernel_cache()
    assert kernel_cache_stats().size == 0
